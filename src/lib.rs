//! # SimDC
//!
//! A high-fidelity device simulation platform for device-cloud
//! collaborative computing — a from-scratch Rust reproduction of the
//! ICDCS 2025 paper.
//!
//! SimDC simulates large fleets of heterogeneous edge devices
//! collaborating with cloud services (federated learning being the
//! flagship workload) over **hybrid heterogeneous resources**: a Ray-like
//! logical-simulation cluster for cheap scale, plus an emulated physical
//! phone cluster for realistic power/CPU/memory/network responses. A
//! programmable traffic controller (**DeviceFlow**) replays real-world
//! device behaviour — bursty uploads, time-zone waves, dropouts — between
//! the devices and the cloud.
//!
//! This crate is a façade re-exporting the workspace members:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`types`] | `simdc-types` | ids, virtual time, grades, resources, messages |
//! | [`simrt`] | `simdc-simrt` | deterministic discrete-event engine, RNG streams, probes |
//! | [`data`] | `simdc-data` | synthetic Avazu-like CTR data, partitioners |
//! | [`ml`] | `simdc-ml` | logistic regression, dual kernels, FedAvg, metrics |
//! | [`cluster`] | `simdc-cluster` | logical simulation (nodes, placement groups, actors) |
//! | [`phone`] | `simdc-phone` | PhoneMgr, ADB emulation, power/CPU/memory models |
//! | [`deviceflow`] | `simdc-deviceflow` | Sorter/Shelf/Dispatcher/Strategy traffic control |
//! | [`platform`] | `simdc-core` | task manager, scheduler, allocation optimizer, cloud |
//! | [`workload`] | `simdc-workload` | scenario engine: arrival processes, task templates, fleet dynamics |
//! | [`baselines`] | `simdc-baselines` | FedScale-like / FederatedScope-like comparators |
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use simdc::prelude::*;
//!
//! // 1. Generate a synthetic CTR dataset (stand-in for Avazu).
//! let data = Arc::new(CtrDataset::generate(&GeneratorConfig {
//!     n_devices: 30,
//!     n_test_devices: 5,
//!     feature_dim: 1 << 12,
//!     ..GeneratorConfig::default()
//! }));
//!
//! // 2. Build the paper's default platform: a 200-core logical cluster
//! //    and 30 emulated phones (4+6 local, 13+7 MSP).
//! let mut platform = Platform::paper_default();
//!
//! // 3. Describe a 2-round federated-learning task over hybrid resources.
//! let spec = TaskSpec::builder(TaskId(1))
//!     .rounds(2)
//!     .grade(GradeRequirement::sized(DeviceGrade::High, 16))
//!     .trigger(AggregationTrigger::DeviceThreshold { min_devices: 16 })
//!     .build()?;
//!
//! // 4. Run and inspect.
//! platform.submit(spec, data)?;
//! platform.run_until_idle();
//! let report = platform.report(TaskId(1)).expect("task completed");
//! println!(
//!     "finished in {} with test accuracy {:.3}",
//!     report.duration(),
//!     report.final_accuracy()
//! );
//! # Ok::<(), simdc::types::SimdcError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use simdc_baselines as baselines;
pub use simdc_cluster as cluster;
pub use simdc_core as platform;
pub use simdc_data as data;
pub use simdc_deviceflow as deviceflow;
pub use simdc_ml as ml;
pub use simdc_phone as phone;
pub use simdc_simrt as simrt;
pub use simdc_types as types;
pub use simdc_workload as workload;

/// The most commonly used items in one import.
pub mod prelude {
    pub use simdc_core::{
        AggregationTrigger, Allocation, AllocationPolicy, GradeRequirement, Operator, OperatorFlow,
        Platform, PlatformConfig, PlatformStatus, TaskReport, TaskSpec,
    };
    pub use simdc_data::{CtrDataset, Dataset, DeviceDataset, GeneratorConfig};
    pub use simdc_deviceflow::{DispatchStrategy, Domain, Dropout, TimeSpec, TrafficFunction};
    pub use simdc_ml::{EvalMetrics, KernelKind, LrModel, TrainConfig};
    pub use simdc_phone::{PhoneMgr, PhoneProfile, Stage};
    pub use simdc_types::{
        DeviceGrade, DeviceId, PhoneId, ResourceBundle, SimDuration, SimInstant, SimdcError, TaskId,
    };
    pub use simdc_workload::{
        ArrivalProcess, FleetDynamics, Scenario, ScenarioSummary, TaskTemplate,
    };
}
