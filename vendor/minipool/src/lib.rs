//! Vendored minimal fixed-size thread pool.
//!
//! The only primitive SimDC's sharded platform core needs from a thread
//! pool is an *order-preserving parallel map*: run a pure function over a
//! batch of items on up to `threads` OS threads and hand the results back
//! in submission order, regardless of which worker finished first. That is
//! exactly what [`FixedPool::run_batch`] provides — a pull-model work
//! queue (workers take the next `(index, item)` when they become idle, so
//! an unlucky long item does not stall the whole stripe) feeding a
//! slot-per-index result vector, all inside [`std::thread::scope`] so
//! borrowed inputs work without `'static` bounds.
//!
//! Determinism contract: the *values* returned are whatever `f` computes —
//! the pool adds no ordering of its own beyond restoring submission order.
//! If `f` is a pure function of its item, `run_batch` over N threads is
//! byte-identical to a sequential `items.into_iter().map(f).collect()`,
//! which is the property the SimDC dispatcher's `--threads N ==
//! --threads 1` guarantee is built on.
//!
//! With `threads <= 1` (or a batch of one) no thread is ever spawned and
//! the batch runs inline on the caller's stack, so a single-threaded
//! configuration exercises exactly the sequential code path.

// Reviewed interior-mutability exception (clippy mirror of simlint P2):
// the Mutex *is* the pool boundary — the one place cross-thread state is
// allowed, policed by the order-restoring contract above. Sim code never
// sees it.
#![allow(clippy::disallowed_types)]

use std::collections::VecDeque;
use std::sync::Mutex;

/// A fixed-width scoped thread pool.
///
/// "Fixed" refers to the configured width: every [`run_batch`] call uses
/// scoped threads sized to `min(threads, items)`, so the pool itself holds
/// no long-lived workers, channels or shared state — construction is free
/// and the type is trivially `Send + Sync`.
///
/// [`run_batch`]: FixedPool::run_batch
#[derive(Debug, Clone, Copy)]
pub struct FixedPool {
    threads: usize,
}

impl FixedPool {
    /// Creates a pool that will use at most `threads` worker threads.
    ///
    /// `0` is normalised to `1`; both mean "run inline, never spawn".
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The configured maximum number of worker threads (always ≥ 1).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` on up to `self.threads()` threads, returning
    /// the results in submission order.
    ///
    /// Workers pull `(index, item)` pairs from a shared queue as they go
    /// idle and write each result into its index's slot, so result order
    /// is independent of scheduling. With one thread or at most one item
    /// the batch runs inline without spawning.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` (the scope joins all workers first).
    pub fn run_batch<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        if self.threads <= 1 || items.len() <= 1 {
            return items.into_iter().map(f).collect();
        }
        let n = items.len();
        let workers = self.threads.min(n);
        let injector: Mutex<VecDeque<(usize, T)>> =
            Mutex::new(items.into_iter().enumerate().collect());
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let slots_mutex = Mutex::new(&mut slots);
        let f = &f;
        let injector = &injector;
        let slots_ref = &slots_mutex;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(move || loop {
                    let next = injector
                        .lock()
                        .expect("minipool injector poisoned")
                        .pop_front();
                    let Some((index, item)) = next else {
                        break;
                    };
                    let result = f(item);
                    slots_ref.lock().expect("minipool slots poisoned")[index] = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("minipool: every slot filled after join"))
            .collect()
    }
}

impl Default for FixedPool {
    fn default() -> Self {
        Self::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_path_preserves_order() {
        let pool = FixedPool::new(1);
        let out = pool.run_batch(vec![1u32, 2, 3], |x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn zero_threads_normalises_to_one() {
        let pool = FixedPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.run_batch(vec![5u8], |x| x + 1), vec![6]);
    }

    #[test]
    fn threaded_batch_matches_sequential_order() {
        let pool = FixedPool::new(4);
        let items: Vec<u64> = (0..100).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        let out = pool.run_batch(items, |x| x * x);
        assert_eq!(out, expected);
    }

    #[test]
    fn borrowed_environment_is_usable() {
        let base = [100u64, 200, 300];
        let pool = FixedPool::new(2);
        let out = pool.run_batch(vec![0usize, 1, 2], |i| base[i] + 1);
        assert_eq!(out, vec![101, 201, 301]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let pool = FixedPool::new(8);
        let out = pool.run_batch(vec![1u8, 2], |x| x);
        assert_eq!(out, vec![1, 2]);
    }
}
