//! Vendored minimal stand-in for the `criterion` crate.
//!
//! Exposes the API surface SimDC's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box` and the `criterion_group!`/`criterion_main!` macros — with a
//! simple time-boxed wall-clock measurement instead of criterion's full
//! statistical pipeline. Good enough to keep benches compiling and to give
//! rough per-iteration numbers offline; swap in the real crate for serious
//! measurement.

// Wall-clock measurement is this crate's entire purpose; the workspace
// `Instant::now` ban (clippy.toml / simlint D2) targets simulation code.
#![allow(clippy::disallowed_methods)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmark's result.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver.
pub struct Criterion {
    /// Target measurement budget per benchmark.
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(500),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.measurement_time = time;
        self
    }

    /// Sets the nominal sample count.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &id.to_string(),
            self.measurement_time,
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.criterion.measurement_time,
            self.criterion.sample_size,
            &mut f,
        );
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.criterion.measurement_time,
            self.criterion.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Finishes the group (a no-op in the stub; kept for API parity).
    pub fn finish(self) {}
}

/// Identifies a benchmark within a group.
pub struct BenchmarkId {
    name: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    #[must_use]
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: Some(name.into()),
            parameter: parameter.to_string(),
        }
    }

    /// An id distinguished only by its parameter.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: None,
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.name {
            Some(name) => write!(f, "{}/{}", name, self.parameter),
            None => write!(f, "{}", self.parameter),
        }
    }
}

/// Passed to benchmark closures; `iter` runs the measured routine.
pub struct Bencher {
    budget: Duration,
    sample_size: usize,
    /// Mean wall-clock time per iteration of the last `iter` call.
    mean: Option<Duration>,
    iterations: u64,
}

impl Bencher {
    /// Measures `routine` repeatedly within the time budget.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up / calibration iteration.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed();

        // The warm-up draw is excluded from the mean (cold caches, lazy
        // init); at least one measured iteration always runs, even when the
        // warm-up alone exhausted the budget.
        let budget = self.budget.saturating_sub(first);
        let mut iterations: u64 = 0;
        let mut total = Duration::ZERO;
        let run_start = Instant::now();
        while iterations == 0
            || (iterations < self.sample_size as u64 && run_start.elapsed() < budget)
        {
            let t = Instant::now();
            black_box(routine());
            total += t.elapsed();
            iterations += 1;
        }
        self.mean = Some(total / u32::try_from(iterations).unwrap_or(u32::MAX));
        self.iterations = iterations;
    }
}

fn run_one<F>(name: &str, budget: Duration, sample_size: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        budget,
        sample_size,
        mean: None,
        iterations: 0,
    };
    f(&mut bencher);
    match bencher.mean {
        Some(mean) => println!(
            "bench {name:<50} {:>12.3?} /iter ({} iters)",
            mean, bencher.iterations
        ),
        None => println!("bench {name:<50} (no measurement taken)"),
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
///
/// Supports both the simple form `criterion_group!(name, target, ...)` and
/// the configured form
/// `criterion_group!(name = n; config = expr; targets = t1, t2)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
