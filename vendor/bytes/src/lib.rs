//! Vendored minimal stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`]/[`BufMut`] trait subset
//! that SimDC's model/payload codecs use. [`Bytes`] is a cheaply cloneable
//! shared buffer with a read cursor: `len()` always reports the *remaining*
//! bytes, matching the real crate's consuming-reader semantics.

use std::sync::Arc;

/// Read-side trait: a cursor over a contiguous byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_array())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }

    /// Copies `len` bytes out into an owned [`Bytes`], advancing past them.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }

    /// Reads a fixed-size little-endian array, advancing past it.
    ///
    /// Helper for the `get_*` methods (not part of the real `bytes` API).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `N` bytes remain.
    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        out.copy_from_slice(&self.chunk()[..N]);
        self.advance(N);
        out
    }
}

/// Write-side trait: append-only byte sink.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_i8(&mut self, v: i8) {
        self.put_slice(&[v as u8]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A cheaply cloneable, shared, immutable byte buffer with a read cursor.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            start: 0,
        }
    }

    /// Creates a buffer from a static slice.
    ///
    /// The stub copies the bytes (the real crate borrows them); semantics
    /// are otherwise identical.
    #[must_use]
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Creates a buffer by copying a slice.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
            start: 0,
        }
    }

    /// Remaining (unread) length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Whether no unread bytes remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the unread bytes as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }

    /// Returns a new `Bytes` over the given sub-range of the unread bytes.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        assert!(range.end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
        }
        .limited(range.end - range.start)
    }

    fn limited(self, len: usize) -> Self {
        // Arc<[u8]> cannot be truncated in place; copy when shortening.
        if len == self.len() {
            self
        } else {
            Bytes::copy_from_slice(&self.as_slice()[..len])
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(data.into_boxed_slice()),
            start: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl From<BytesMut> for Bytes {
    fn from(buf: BytesMut) -> Self {
        buf.freeze()
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with a pre-allocated capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Current length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32_le(7);
        buf.put_f32_le(1.5);
        buf.put_u64_le(u64::MAX);
        buf.put_f64_le(-2.25);
        buf.put_u8(9);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.len(), 4 + 4 + 8 + 8 + 1);
        assert_eq!(bytes.get_u32_le(), 7);
        assert_eq!(bytes.get_f32_le(), 1.5);
        assert_eq!(bytes.get_u64_le(), u64::MAX);
        assert_eq!(bytes.get_f64_le(), -2.25);
        assert_eq!(bytes.get_u8(), 9);
        assert!(bytes.is_empty());
    }

    #[test]
    fn len_tracks_cursor() {
        let mut b = Bytes::from_static(b"abcdef");
        assert_eq!(b.len(), 6);
        b.advance(2);
        assert_eq!(b.len(), 4);
        assert_eq!(&b[..], b"cdef");
        let rest = b.copy_to_bytes(3);
        assert_eq!(&rest[..], b"cde");
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn slice_shares_content() {
        let b = Bytes::from_static(b"hello world");
        let s = b.slice(6..11);
        assert_eq!(&s[..], b"world");
        assert_eq!(b.len(), 11);
    }
}
