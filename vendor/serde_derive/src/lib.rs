//! Vendored minimal stand-in for `serde_derive`.
//!
//! The build environment cannot fetch crates.io, so this proc-macro crate
//! re-implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against
//! the stub `serde` crate's `Value` data model, using only the compiler's
//! built-in `proc_macro` API (no `syn`/`quote`).
//!
//! Supported shapes — everything the SimDC workspace derives:
//! - unit / tuple / named-field structs (newtype structs are transparent),
//! - enums with unit, tuple and struct variants (externally tagged),
//! - generic type parameters (each gets a `Serialize`/`Deserialize` bound).
//!
//! `#[serde(...)]` attributes are accepted and ignored; the only one the
//! workspace uses is `transparent` on newtypes, whose behaviour matches the
//! default here anyway.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    expand_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    expand_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// A tiny token-level model of a struct/enum definition
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    /// Type parameter identifiers in declaration order (lifetimes excluded).
    type_params: Vec<String>,
    kind: Kind,
}

enum Kind {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let tok = self.tokens.get(self.pos).cloned();
        if tok.is_some() {
            self.pos += 1;
        }
        tok
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skips `#[...]` (incl. doc comments) and `pub` / `pub(...)` prefixes.
    fn skip_attrs_and_vis(&mut self) {
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.next();
                    // The bracketed attribute body.
                    if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                    {
                        self.next();
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    self.next();
                    if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        self.next();
                    }
                }
                _ => break,
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive stub: expected identifier, got {other:?}"),
        }
    }

    /// Consumes a `<...>` generics block if present, returning the type
    /// parameter names (lifetimes and const generics are not supported by
    /// the stub; the workspace does not use them on serialized types).
    fn parse_generics(&mut self) -> Vec<String> {
        if !matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
            return Vec::new();
        }
        self.next(); // '<'
        let mut params = Vec::new();
        let mut depth = 1usize;
        let mut expecting_param = true;
        let mut prev_was_dash = false;
        while depth > 0 {
            let tok = self
                .next()
                .expect("serde_derive stub: unterminated generics block");
            match &tok {
                TokenTree::Punct(p) => {
                    let ch = p.as_char();
                    if ch == '<' {
                        depth += 1;
                    } else if ch == '>' && !prev_was_dash {
                        depth -= 1;
                    } else if ch == ',' && depth == 1 {
                        expecting_param = true;
                    } else if ch == ':' && depth == 1 {
                        expecting_param = false;
                    } else if ch == '\'' {
                        // Lifetime: swallow its identifier, stay in state.
                        self.next();
                        expecting_param = false;
                    }
                    prev_was_dash = ch == '-';
                }
                TokenTree::Ident(id) => {
                    prev_was_dash = false;
                    if expecting_param && depth == 1 {
                        params.push(id.to_string());
                        expecting_param = false;
                    }
                }
                _ => prev_was_dash = false,
            }
        }
        params
    }

    /// Skips a type expression up to a top-level `,` (consumed) or the end.
    fn skip_type(&mut self) {
        let mut angle_depth = 0usize;
        let mut prev_was_dash = false;
        while let Some(tok) = self.peek() {
            match tok {
                TokenTree::Punct(p) => {
                    let ch = p.as_char();
                    if ch == ',' && angle_depth == 0 {
                        self.next();
                        return;
                    }
                    if ch == '<' {
                        angle_depth += 1;
                    } else if ch == '>' && !prev_was_dash && angle_depth > 0 {
                        angle_depth -= 1;
                    }
                    prev_was_dash = ch == '-';
                }
                _ => prev_was_dash = false,
            }
            self.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    cur.skip_attrs_and_vis();
    let keyword = cur.expect_ident();
    let name = cur.expect_ident();
    let type_params = cur.parse_generics();
    // An optional where-clause may precede the body; skip to the body.
    loop {
        match cur.peek() {
            Some(TokenTree::Group(g))
                if matches!(g.delimiter(), Delimiter::Brace | Delimiter::Parenthesis) =>
            {
                break
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => break,
            Some(_) => {
                cur.next();
            }
            None => break,
        }
    }
    let kind = match keyword.as_str() {
        "struct" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Kind::UnitStruct,
        },
        "enum" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive stub: expected enum body, got {other:?}"),
        },
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    };
    Item {
        name,
        type_params,
        kind,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        cur.skip_attrs_and_vis();
        if cur.at_end() {
            break;
        }
        fields.push(cur.expect_ident());
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive stub: expected `:` after field name, got {other:?}"),
        }
        cur.skip_type();
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    let mut count = 0usize;
    loop {
        cur.skip_attrs_and_vis();
        if cur.at_end() {
            break;
        }
        count += 1;
        cur.skip_type();
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        cur.skip_attrs_and_vis();
        if cur.at_end() {
            break;
        }
        let name = cur.expect_ident();
        let kind = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                cur.next();
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(g.stream());
                cur.next();
                VariantKind::Tuple(count)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        let mut angle_depth = 0usize;
        while let Some(tok) = cur.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    cur.next();
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    angle_depth += 1;
                    cur.next();
                }
                TokenTree::Punct(p) if p.as_char() == '>' && angle_depth > 0 => {
                    angle_depth -= 1;
                    cur.next();
                }
                _ => {
                    cur.next();
                }
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation (as strings, parsed back into a TokenStream)
// ---------------------------------------------------------------------------

fn impl_header(item: &Item, trait_name: &str) -> String {
    if item.type_params.is_empty() {
        format!("impl ::serde::{trait_name} for {}", item.name)
    } else {
        let bounded: Vec<String> = item
            .type_params
            .iter()
            .map(|p| format!("{p}: ::serde::{trait_name}"))
            .collect();
        let bare = item.type_params.join(", ");
        format!(
            "impl<{}> ::serde::{trait_name} for {}<{bare}>",
            bounded.join(", "),
            item.name
        )
    }
}

fn expand_serialize(item: &Item) -> String {
    let body = match &item.kind {
        Kind::UnitStruct => "::serde::Value::Null".to_owned(),
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Kind::NamedStruct(fields) => object_literal(fields.iter().map(|f| {
            (
                f.clone(),
                format!("::serde::Serialize::to_value(&self.{f})"),
            )
        })),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(serialize_variant_arm).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] {} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        impl_header(item, "Serialize")
    )
}

fn object_literal(fields: impl Iterator<Item = (String, String)>) -> String {
    let pairs: Vec<String> = fields
        .map(|(name, expr)| format!("(\"{name}\".to_owned(), {expr})"))
        .collect();
    format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
}

fn serialize_variant_arm(variant: &Variant) -> String {
    let vname = &variant.name;
    match &variant.kind {
        VariantKind::Unit => {
            format!("Self::{vname} => ::serde::Value::String(\"{vname}\".to_owned()),")
        }
        VariantKind::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let payload = if *n == 1 {
                "::serde::Serialize::to_value(__f0)".to_owned()
            } else {
                let elems: Vec<String> = binders
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", elems.join(", "))
            };
            format!(
                "Self::{vname}({}) => ::serde::Value::Object(vec![(\"{vname}\".to_owned(), {payload})]),",
                binders.join(", ")
            )
        }
        VariantKind::Named(fields) => {
            let payload = object_literal(
                fields
                    .iter()
                    .map(|f| (f.clone(), format!("::serde::Serialize::to_value({f})"))),
            );
            format!(
                "Self::{vname} {{ {} }} => ::serde::Value::Object(vec![(\"{vname}\".to_owned(), {payload})]),",
                fields.join(", ")
            )
        }
    }
}

fn expand_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => format!(
            "match __value {{ ::serde::Value::Null => Ok({name}), _ => Err(::serde::Error::custom(\"expected null for unit struct {name}\")) }}"
        ),
        Kind::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::de_element(__items, {i})?"))
                .collect();
            format!(
                "match __value {{ ::serde::Value::Array(__items) => Ok({name}({})), _ => Err(::serde::Error::custom(\"expected array for tuple struct {name}\")) }}",
                elems.join(", ")
            )
        }
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(__fields, \"{f}\")?"))
                .collect();
            format!(
                "match __value {{ ::serde::Value::Object(__fields) => Ok({name} {{ {} }}), _ => Err(::serde::Error::custom(\"expected object for struct {name}\")) }}",
                inits.join(", ")
            )
        }
        Kind::Enum(variants) => expand_enum_deserialize(name, variants),
    };
    format!(
        "#[automatically_derived] {} {{ fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}",
        impl_header(item, "Deserialize")
    )
}

fn expand_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| format!("\"{0}\" => Ok(Self::{0}),", v.name))
        .collect();
    let payload_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.kind {
                VariantKind::Unit => None,
                VariantKind::Tuple(1) => Some(format!(
                    "\"{vname}\" => Ok(Self::{vname}(::serde::Deserialize::from_value(__payload)?)),"
                )),
                VariantKind::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::de_element(__items, {i})?"))
                        .collect();
                    Some(format!(
                        "\"{vname}\" => match __payload {{ ::serde::Value::Array(__items) => Ok(Self::{vname}({})), _ => Err(::serde::Error::custom(\"expected array payload for variant {vname}\")) }},",
                        elems.join(", ")
                    ))
                }
                VariantKind::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::de_field(__fields, \"{f}\")?"))
                        .collect();
                    Some(format!(
                        "\"{vname}\" => match __payload {{ ::serde::Value::Object(__fields) => Ok(Self::{vname} {{ {} }}), _ => Err(::serde::Error::custom(\"expected object payload for variant {vname}\")) }},",
                        inits.join(", ")
                    ))
                }
            }
        })
        .collect();
    format!(
        "match __value {{ \
            ::serde::Value::String(__s) => match __s.as_str() {{ {} _ => Err(::serde::Error::custom(format!(\"unknown variant `{{__s}}` of enum {name}\"))) }}, \
            ::serde::Value::Object(__tagged) if __tagged.len() == 1 => {{ \
                let (__tag, __payload) = &__tagged[0]; \
                match __tag.as_str() {{ {} _ => Err(::serde::Error::custom(format!(\"unknown variant `{{__tag}}` of enum {name}\"))) }} \
            }}, \
            _ => Err(::serde::Error::custom(\"expected string or single-key object for enum {name}\")) \
        }}",
        unit_arms.join(" "),
        payload_arms.join(" ")
    )
}
