//! Vendored minimal stand-in for the `proptest` crate.
//!
//! Supports the subset SimDC's property tests use: the [`Strategy`] trait
//! with `prop_map`/`prop_filter`, strategies for numeric ranges and tuples,
//! `collection::vec` with fixed or ranged lengths, `prop_oneof!`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros. Cases are
//! generated from a fixed-seed SplitMix64 stream (deterministic across
//! runs); there is no shrinking — a failing case panics with its values via
//! the assertion message.

use std::ops::Range;

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest, Strategy};
}

/// Number of accepted cases each property runs.
pub const DEFAULT_CASES: usize = 256;

/// Deterministic SplitMix64 stream driving case generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the fixed-seed generator used by `proptest!`.
    #[must_use]
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x5EED_CAFE_F00D_BEEF,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform double in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    type Value;

    /// Generates a value, or `None` if a filter rejected the draw.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing `predicate` (the runner redraws).
    fn prop_filter<F>(self, _reason: impl Into<String>, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            predicate,
        }
    }

    /// Boxes the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.predicate)(v))
    }
}

/// Uniform choice among same-valued strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        let idx = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                Some((self.start as i128 + offset) as $t)
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(self.start < self.end, "empty strategy range");
        Some(self.start + (self.end - self.start) * rng.unit_f64())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> Option<f32> {
        assert!(self.start < self.end, "empty strategy range");
        Some(self.start + (self.end - self.start) * rng.unit_f64() as f32)
    }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

pub mod collection {
    //! `Vec` strategies with fixed or ranged lengths.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Something `collection::vec` accepts as a length specification.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    /// Generates `Vec`s of values from `element`, sized by `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Declares property tests. Each accepted case re-runs the body with fresh
/// values; draws rejected by `prop_filter` are retried (with a cap so a
/// too-strict filter fails loudly instead of looping forever).
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::deterministic();
                let mut __accepted: usize = 0;
                let mut __attempts: usize = 0;
                while __accepted < $crate::DEFAULT_CASES {
                    __attempts += 1;
                    assert!(
                        __attempts <= $crate::DEFAULT_CASES * 200,
                        "proptest stub: filter rejected too many draws in {}",
                        stringify!($name),
                    );
                    let __vals = ($(
                        match $crate::Strategy::generate(&($strat), &mut __rng) {
                            Some(v) => v,
                            None => continue,
                        },
                    )+);
                    let ($($pat,)+) = __vals;
                    { $body }
                    __accepted += 1;
                }
            }
        )*
    };
}

/// Asserts a condition inside `proptest!` (plain `assert!` in the stub).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside `proptest!` (plain `assert_eq!` in the stub).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniformly picks one of several same-valued strategies per draw.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($arm) as $crate::BoxedStrategy<_>,)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn oneof_strategy() -> impl Strategy<Value = i64> {
        prop_oneof![
            (0u64..5).prop_map(|v| v as i64),
            (10u64..15).prop_map(|v| v as i64),
        ]
    }

    proptest! {
        #[test]
        fn ranges_and_tuples(
            (a, b) in (0u64..10, -1.0f64..1.0),
            v in crate::collection::vec(0u32..5, 1..4),
            x in (0u64..100).prop_filter("even", |x| x % 2 == 0),
        ) {
            prop_assert!(a < 10);
            prop_assert!((-1.0..1.0).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_and_map(y in oneof_strategy()) {
            prop_assert!((0..5).contains(&y) || (10..15).contains(&y));
        }
    }
}
