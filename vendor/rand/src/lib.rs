//! Vendored minimal stand-in for the `rand` crate (0.8-compatible subset).
//!
//! SimDC implements its own PRNG (`SplitMix64` in `simdc-simrt`) and only
//! needs the *trait* vocabulary — [`RngCore`], [`SeedableRng`], [`Rng`] —
//! so that its generators compose with rand-style call sites. This stub
//! provides exactly that subset with 0.8-era signatures (`try_fill_bytes`
//! returning `Result<(), rand::Error>`).

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type mirroring `rand::Error` from the 0.8 series.
#[derive(Debug)]
pub struct Error {
    message: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    #[must_use]
    pub fn new(message: &'static str) -> Self {
        Error { message }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 expansion of the u64 into however many seed bytes the
        // generator wants, matching rand 0.8's default.
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Extension methods over [`RngCore`] (the `gen_*` family subset).
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// 53-bit uniform double in `[0, 1)`.
fn unit_f64(raw: u64) -> f64 {
    (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that a uniform value can be sampled from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i = rng.gen_range(3..9u32);
            assert!((3..9).contains(&i));
            let j = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&j));
        }
    }

    #[test]
    fn seed_from_u64_fills_seed() {
        struct S([u8; 8]);
        impl SeedableRng for S {
            type Seed = [u8; 8];
            fn from_seed(seed: [u8; 8]) -> Self {
                S(seed)
            }
        }
        let a = S::seed_from_u64(1).0;
        let b = S::seed_from_u64(2).0;
        assert_ne!(a, b);
        assert_ne!(a, [0; 8]);
    }
}
