//! Vendored minimal stand-in for the `serde_json` crate.
//!
//! Bridges the stub `serde` crate's [`Value`] data model to JSON text:
//! [`to_string`], [`to_string_pretty`] and [`from_str`]. Semantics follow
//! real serde_json where the workspace depends on them (newtype structs
//! serialize transparently, unit enum variants as strings, data-carrying
//! variants externally tagged); maps serialize as arrays of `[key, value]`
//! pairs so non-string keys round-trip.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

// The real serde_json defines its own `Value`; the stub shares the model
// with the stub serde crate and re-exports it under the familiar path so
// downstream code can spell it `serde_json::Value` portably.
pub use serde::Value;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error {
            message: e.to_string(),
        }
    }
}

fn err(message: impl Into<String>) -> Error {
    Error {
        message: message.into(),
    }
}

/// Result alias matching the real crate's signature shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(err(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => {
            if v.is_finite() {
                let _ = write!(out, "{v}");
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(err(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(err(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(err(format!("expected `,` or `]`, got {other:?}"))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => return Err(err(format!("expected `,` or `}}`, got {other:?}"))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(err(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| err("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| err(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| err(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| err(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&12u64).unwrap(), "12");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<u64>("12").unwrap(), 12);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn round_trips_containers() {
        let v = vec![1u32, 2, 3];
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<u32>>(&text).unwrap(), v);
        let pairs: Vec<(String, f64)> = vec![("x".into(), 1.5)];
        let text = to_string_pretty(&pairs).unwrap();
        assert_eq!(from_str::<Vec<(String, f64)>>(&text).unwrap(), pairs);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("12 junk").is_err());
    }
}
