//! Vendored minimal stand-in for the `serde` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the *small* subset of serde that SimDC actually uses:
//! `Serialize`/`Deserialize` traits, their derive macros, and enough
//! primitive/container impls for the platform's config, message and report
//! types. Instead of serde's zero-copy visitor architecture, values pass
//! through a JSON-like [`Value`] tree — entirely sufficient for SimDC's
//! test round-trips and experiment-result dumps, and drop-in replaceable
//! by the real serde once the build environment can fetch it.

// Vendored API surface: the real serde implements Serialize/Deserialize
// for hash collections, so the stand-in must too. The workspace-wide
// hash-collection ban (clippy.toml / simlint D1) covers simulation code,
// not this compatibility shim.
#![allow(clippy::disallowed_types)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like data model that serialization passes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered map (field order is preserved).
    Object(Vec<(String, Value)>),
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: fmt::Display>(message: T) -> Self {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can convert itself into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Looks up a struct field by name and deserializes it.
///
/// Missing fields deserialize from [`Value::Null`], which makes `Option`
/// fields tolerant of omission while other types produce a clear error.
/// Used by the generated code in `serde_derive`; not part of the real
/// serde API.
pub fn de_field<T: Deserialize>(fields: &[(String, Value)], name: &str) -> Result<T, Error> {
    match fields.iter().find(|(key, _)| key == name) {
        Some((_, value)) => {
            T::from_value(value).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
        }
        None => T::from_value(&Value::Null)
            .map_err(|_| Error::custom(format!("missing field `{name}`"))),
    }
}

/// Fetches element `index` of a tuple-struct/tuple-variant encoding.
///
/// Used by the generated code in `serde_derive`; not part of the real
/// serde API.
pub fn de_element<T: Deserialize>(items: &[Value], index: usize) -> Result<T, Error> {
    match items.get(index) {
        Some(value) => T::from_value(value),
        None => Err(Error::custom(format!("missing tuple element {index}"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide: i64 = match value {
                    Value::I64(v) => *v,
                    Value::U64(v) => i64::try_from(*v)
                        .map_err(|_| Error::custom("unsigned value out of i64 range"))?,
                    other => return Err(Error::custom(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(wide).map_err(|_| {
                    Error::custom(format!("integer {wide} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide: u64 = match value {
                    Value::U64(v) => *v,
                    Value::I64(v) => u64::try_from(*v)
                        .map_err(|_| Error::custom("negative value for unsigned integer"))?,
                    other => return Err(Error::custom(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(wide).map_err(|_| {
                    Error::custom(format!("integer {wide} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::F64(v) => Ok(*v as $t),
                    Value::I64(v) => Ok(*v as $t),
                    Value::U64(v) => Ok(*v as $t),
                    other => Err(Error::custom(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::String(self.display().to_string())
    }
}

impl Deserialize for std::path::PathBuf {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(std::path::PathBuf::from(String::from_value(value)?))
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_owned(), Value::U64(self.as_secs())),
            (
                "nanos".to_owned(),
                Value::U64(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(fields) => {
                let secs: u64 = de_field(fields, "secs")?;
                let nanos: u64 = de_field(fields, "nanos")?;
                Ok(std::time::Duration::new(secs, nanos as u32))
            }
            other => Err(Error::custom(format!(
                "expected duration object, got {other:?}"
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        <[T; N]>::try_from(items)
            .map_err(|v| Error::custom(format!("expected {N} elements, got {}", v.len())))
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::from_value(value)?.into())
    }
}

// Maps are encoded as arrays of [key, value] pairs so that non-string keys
// (DeviceId, DeviceGrade, ...) round-trip losslessly.
impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(map_pairs(value)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(map_pairs(value)?.into_iter().collect())
    }
}

fn map_pairs<K: Deserialize, V: Deserialize>(value: &Value) -> Result<Vec<(K, V)>, Error> {
    match value {
        Value::Array(items) => items
            .iter()
            .map(|pair| match pair {
                Value::Array(kv) if kv.len() == 2 => {
                    Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                }
                other => Err(Error::custom(format!(
                    "expected [key, value] pair, got {other:?}"
                ))),
            })
            .collect(),
        other => Err(Error::custom(format!(
            "expected map as pair array, got {other:?}"
        ))),
    }
}

impl<T: Serialize + Eq + Hash, S> Serialize for std::collections::HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T, S> Deserialize for std::collections::HashSet<T, S>
where
    T: Deserialize + Eq + Hash,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) => Ok(($(de_element::<$name>(items, $idx)?,)+)),
                    other => Err(Error::custom(format!("expected tuple array, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// ---------------------------------------------------------------------------
// Smart pointers / references
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(value)?))
    }
}

impl<T: Deserialize> Deserialize for Box<[T]> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::from_value(value)?.into_boxed_slice())
    }
}

impl Deserialize for Box<str> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(String::from_value(value)?.into_boxed_str())
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Arc::new(T::from_value(value)?))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
