//! The categorical feature schema of the synthetic Avazu-like dataset.

use serde::{Deserialize, Serialize};

/// One categorical field: a name and its cardinality.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FieldSpec {
    /// Field name (used in feature hashing, so renames change the hash
    /// space).
    pub name: String,
    /// Number of distinct categorical values.
    pub cardinality: u32,
}

impl FieldSpec {
    /// Creates a field spec.
    ///
    /// # Panics
    ///
    /// Panics if `cardinality` is zero.
    #[must_use]
    pub fn new(name: impl Into<String>, cardinality: u32) -> Self {
        let name = name.into();
        assert!(cardinality > 0, "field '{name}' must have cardinality > 0");
        FieldSpec { name, cardinality }
    }
}

/// An ordered set of categorical fields.
///
/// The default schema mirrors the Avazu CTR layout: ad placement, site/app
/// categories, device attributes and the anonymized `C14…C21` variables.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<FieldSpec>,
}

impl Schema {
    /// Builds a schema from explicit fields.
    ///
    /// # Panics
    ///
    /// Panics if `fields` is empty or contains duplicate names.
    #[must_use]
    pub fn new(fields: Vec<FieldSpec>) -> Self {
        assert!(!fields.is_empty(), "schema needs at least one field");
        for (i, f) in fields.iter().enumerate() {
            assert!(
                !fields[..i].iter().any(|g| g.name == f.name),
                "duplicate field name '{}'",
                f.name
            );
        }
        Schema { fields }
    }

    /// The Avazu-like default: 10 categorical fields covering placement,
    /// content category, device attributes and anonymized counters.
    #[must_use]
    pub fn avazu_like() -> Self {
        Schema::new(vec![
            FieldSpec::new("hour_of_day", 24),
            FieldSpec::new("banner_pos", 7),
            FieldSpec::new("site_category", 24),
            FieldSpec::new("app_category", 32),
            FieldSpec::new("device_model", 200),
            FieldSpec::new("device_conn_type", 4),
            FieldSpec::new("c14", 500),
            FieldSpec::new("c17", 300),
            FieldSpec::new("c20", 100),
            FieldSpec::new("c21", 60),
        ])
    }

    /// The fields in order.
    #[must_use]
    pub fn fields(&self) -> &[FieldSpec] {
        &self.fields
    }

    /// Number of fields.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no fields (never true for constructed
    /// schemas).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Total number of `(field, value)` pairs across all fields.
    #[must_use]
    pub fn total_categories(&self) -> u64 {
        self.fields.iter().map(|f| u64::from(f.cardinality)).sum()
    }
}

impl Default for Schema {
    fn default() -> Self {
        Schema::avazu_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avazu_like_has_ten_fields() {
        let s = Schema::avazu_like();
        assert_eq!(s.len(), 10);
        assert!(s.total_categories() > 1_000);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate field name")]
    fn duplicate_names_rejected() {
        let _ = Schema::new(vec![FieldSpec::new("a", 2), FieldSpec::new("a", 3)]);
    }

    #[test]
    #[should_panic(expected = "cardinality > 0")]
    fn zero_cardinality_rejected() {
        let _ = FieldSpec::new("empty", 0);
    }

    #[test]
    #[should_panic(expected = "at least one field")]
    fn empty_schema_rejected() {
        let _ = Schema::new(Vec::new());
    }
}
