//! Synthetic Avazu-like click-through-rate data for SimDC experiments.
//!
//! The paper evaluates SimDC on the public Avazu CTR dataset (~2M records
//! over 100k devices). That dataset is not redistributable here, so this
//! crate generates a synthetic equivalent with the same *shape*: categorical
//! ad-impression features, a per-device click-through rate drawn from a Beta
//! prior (making the natural per-device partition non-IID), and labels from
//! a logistic ground-truth model — so that logistic regression actually has
//! signal to learn, and distributional knobs (label skew, CTR-correlated
//! upload latency) can be dialed per experiment.
//!
//! # Examples
//!
//! ```
//! use simdc_data::{CtrDataset, GeneratorConfig};
//!
//! let data = CtrDataset::generate(&GeneratorConfig {
//!     n_devices: 50,
//!     n_test_devices: 5,
//!     mean_records_per_device: 20.0,
//!     ..GeneratorConfig::default()
//! });
//! assert_eq!(data.devices.len(), 50);
//! assert!(!data.test.is_empty());
//! let rate = data.positive_rate();
//! assert!(rate > 0.03 && rate < 0.7, "plausible CTR, got {rate}");
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod dataset;
pub mod features;
pub mod generator;
pub mod partition;
pub mod schema;

pub use dataset::{Dataset, DeviceDataset, Example};
pub use features::{FeatureHasher, FeatureVec};
pub use generator::{CtrDataset, GeneratorConfig};
pub use partition::{ctr_correlated_delays, iid_partition, label_skew_partition, LabelSkewConfig};
pub use schema::{FieldSpec, Schema};
