//! Example and dataset containers.

use serde::{Deserialize, Serialize};
use simdc_types::DeviceId;

use crate::features::FeatureVec;

/// One labelled CTR example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Example {
    /// Hashed sparse features.
    pub features: FeatureVec,
    /// Click label.
    pub label: bool,
}

impl Example {
    /// Creates an example.
    #[must_use]
    pub fn new(features: FeatureVec, label: bool) -> Self {
        Example { features, label }
    }
}

/// An ordered collection of examples.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dataset {
    examples: Vec<Example>,
}

impl Dataset {
    /// Creates an empty dataset.
    #[must_use]
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Creates a dataset from examples.
    #[must_use]
    pub fn from_examples(examples: Vec<Example>) -> Self {
        Dataset { examples }
    }

    /// Number of examples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Whether the dataset has no examples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// The examples in order.
    #[must_use]
    pub fn examples(&self) -> &[Example] {
        &self.examples
    }

    /// Appends an example.
    pub fn push(&mut self, example: Example) {
        self.examples.push(example);
    }

    /// Iterates over examples.
    pub fn iter(&self) -> impl Iterator<Item = &Example> {
        self.examples.iter()
    }

    /// Fraction of positive labels (0 for an empty dataset).
    #[must_use]
    pub fn positive_rate(&self) -> f64 {
        if self.examples.is_empty() {
            return 0.0;
        }
        self.examples.iter().filter(|e| e.label).count() as f64 / self.examples.len() as f64
    }
}

impl FromIterator<Example> for Dataset {
    fn from_iter<I: IntoIterator<Item = Example>>(iter: I) -> Self {
        Dataset {
            examples: iter.into_iter().collect(),
        }
    }
}

impl Extend<Example> for Dataset {
    fn extend<I: IntoIterator<Item = Example>>(&mut self, iter: I) {
        self.examples.extend(iter);
    }
}

impl IntoIterator for Dataset {
    type Item = Example;
    type IntoIter = std::vec::IntoIter<Example>;
    fn into_iter(self) -> Self::IntoIter {
        self.examples.into_iter()
    }
}

/// A device's local shard plus device-level metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceDataset {
    /// The owning device.
    pub device: DeviceId,
    /// Ground-truth click-through rate of this device (drives non-IID-ness
    /// and, in Fig 9 scenarios, upload latency).
    pub ctr: f64,
    /// The local training shard.
    pub data: Dataset,
}

impl DeviceDataset {
    /// Creates a device dataset.
    #[must_use]
    pub fn new(device: DeviceId, ctr: f64, data: Dataset) -> Self {
        DeviceDataset { device, ctr, data }
    }

    /// Number of local examples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the local shard is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureVec;

    fn ex(label: bool) -> Example {
        Example::new(FeatureVec::from_indices(vec![1, 2]), label)
    }

    #[test]
    fn positive_rate_counts_labels() {
        let ds: Dataset = vec![ex(true), ex(false), ex(true), ex(true)]
            .into_iter()
            .collect();
        assert_eq!(ds.positive_rate(), 0.75);
        assert_eq!(ds.len(), 4);
    }

    #[test]
    fn empty_dataset_rate_is_zero() {
        assert_eq!(Dataset::new().positive_rate(), 0.0);
        assert!(Dataset::new().is_empty());
    }

    #[test]
    fn extend_and_collect() {
        let mut ds = Dataset::new();
        ds.extend(vec![ex(true); 3]);
        ds.push(ex(false));
        assert_eq!(ds.len(), 4);
        let back: Dataset = ds.clone().into_iter().collect();
        assert_eq!(back, ds);
    }

    #[test]
    fn device_dataset_len_delegates() {
        let dd = DeviceDataset::new(
            DeviceId(3),
            0.2,
            vec![ex(true), ex(false)].into_iter().collect(),
        );
        assert_eq!(dd.len(), 2);
        assert!(!dd.is_empty());
    }
}
