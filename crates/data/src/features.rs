//! Feature hashing for categorical fields.
//!
//! Categorical `(field, value)` pairs are hashed into a fixed-dimension
//! sparse binary vector (the standard "hashing trick" used for CTR models).
//! Values are implicitly `1.0`, so a feature vector is just a sorted list of
//! active indices.

use serde::{Deserialize, Serialize};

/// A sparse binary feature vector: sorted, deduplicated active indices.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FeatureVec {
    indices: Box<[u32]>,
}

impl FeatureVec {
    /// Creates a feature vector from raw indices (sorted and deduplicated).
    #[must_use]
    pub fn from_indices(mut indices: Vec<u32>) -> Self {
        indices.sort_unstable();
        indices.dedup();
        FeatureVec {
            indices: indices.into_boxed_slice(),
        }
    }

    /// The active indices, ascending.
    #[must_use]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Number of active features.
    #[must_use]
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether no feature is active.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

/// Hashes `(field, value)` pairs into `[0, dim)`.
///
/// ```
/// use simdc_data::FeatureHasher;
/// let hasher = FeatureHasher::new(1 << 12);
/// let a = hasher.index("banner_pos", 3);
/// assert!(a < (1 << 12));
/// assert_eq!(a, hasher.index("banner_pos", 3));
/// assert_ne!(a, hasher.index("banner_pos", 4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureHasher {
    dim: u32,
}

impl FeatureHasher {
    /// Creates a hasher with output dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    #[must_use]
    pub fn new(dim: u32) -> Self {
        assert!(dim > 0, "feature dimension must be positive");
        FeatureHasher { dim }
    }

    /// The output dimension.
    #[must_use]
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Hashes one `(field, value)` pair to an index in `[0, dim)`.
    #[must_use]
    pub fn index(&self, field: &str, value: u32) -> u32 {
        // FNV-1a over the field name, then the value bytes, finished with a
        // splitmix-style avalanche so low-cardinality fields spread out.
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x100_0000_01b3;
        let mut h = FNV_OFFSET;
        for b in field.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        for b in value.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        let mut z = h;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % u64::from(self.dim)) as u32
    }

    /// Hashes a full record (one value per schema field) into a
    /// [`FeatureVec`].
    #[must_use]
    pub fn hash_record<'a>(&self, fields: impl IntoIterator<Item = (&'a str, u32)>) -> FeatureVec {
        let indices: Vec<u32> = fields
            .into_iter()
            .map(|(name, value)| self.index(name, value))
            .collect();
        FeatureVec::from_indices(indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_sorted_and_deduped() {
        let v = FeatureVec::from_indices(vec![9, 3, 3, 1]);
        assert_eq!(v.indices(), &[1, 3, 9]);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
    }

    #[test]
    fn hashing_is_deterministic_and_in_range() {
        let h = FeatureHasher::new(4096);
        for value in 0..200 {
            let idx = h.index("device_model", value);
            assert!(idx < 4096);
            assert_eq!(idx, h.index("device_model", value));
        }
    }

    #[test]
    fn different_fields_rarely_collide() {
        let h = FeatureHasher::new(1 << 16);
        let collisions = (0..500u32)
            .filter(|&v| h.index("c14", v) == h.index("c17", v))
            .count();
        assert!(
            collisions < 5,
            "too many cross-field collisions: {collisions}"
        );
    }

    #[test]
    fn hash_record_produces_one_index_per_field() {
        let h = FeatureHasher::new(1 << 16);
        let v = h.hash_record([("a", 1), ("b", 2), ("c", 3)]);
        // Collisions are possible but vanishingly unlikely at this dim.
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn values_spread_across_dimension() {
        let h = FeatureHasher::new(1 << 14);
        let mut seen = std::collections::BTreeSet::new();
        for v in 0..1_000u32 {
            seen.insert(h.index("c14", v));
        }
        assert!(seen.len() > 950, "hash should be near-injective here");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        let _ = FeatureHasher::new(0);
    }
}
