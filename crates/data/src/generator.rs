//! Synthetic CTR data generation.
//!
//! Generation recipe (per device):
//!
//! 1. Draw the device's ground-truth CTR from `Beta(ctr_alpha, ctr_beta)`
//!    (defaults give a mean CTR ≈ 0.17, close to Avazu's ~0.17 click rate).
//! 2. Draw its record count from `Poisson(mean_records_per_device)`
//!    (minimum 1).
//! 3. For every record, sample one value per schema field. A device keeps a
//!    fixed `device_model`, and its `hour_of_day` concentrates around a
//!    per-device timezone peak — the behavioural diversity §V motivates.
//! 4. The click label is Bernoulli with
//!    `p = sigmoid(logit(ctr_dev) + τ · z)`, where `z` is a zero-mean score
//!    from a hidden logistic ground-truth model over the hashed features.
//!    Feature signal `τ` makes the task learnable; the device offset makes
//!    the natural partition non-IID.

use serde::{Deserialize, Serialize};
use simdc_simrt::RngStream;
use simdc_types::DeviceId;

use crate::dataset::{Dataset, DeviceDataset, Example};
use crate::features::{FeatureHasher, FeatureVec};
use crate::schema::Schema;

/// Configuration of the synthetic generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of training devices.
    pub n_devices: usize,
    /// Number of additional held-out devices whose records form the test
    /// set (the paper holds out 1,000 of 100,000 devices).
    pub n_test_devices: usize,
    /// Mean records per device (Poisson).
    pub mean_records_per_device: f64,
    /// Feature-hash dimension.
    pub feature_dim: u32,
    /// Beta prior parameters of per-device CTR.
    pub ctr_alpha: f64,
    /// See [`GeneratorConfig::ctr_alpha`].
    pub ctr_beta: f64,
    /// Strength of the feature signal (τ above); 0 makes labels depend on
    /// device CTR only.
    pub feature_signal: f64,
    /// Categorical schema.
    pub schema: Schema,
    /// Root RNG seed.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            n_devices: 1_000,
            n_test_devices: 100,
            mean_records_per_device: 20.0,
            feature_dim: 1 << 16,
            ctr_alpha: 2.0,
            ctr_beta: 10.0,
            feature_signal: 1.0,
            schema: Schema::avazu_like(),
            seed: 0x51AD_C0DE,
        }
    }
}

impl GeneratorConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`simdc_types::SimdcError::InvalidConfig`] when any field is
    /// out of range.
    pub fn validate(&self) -> simdc_types::Result<()> {
        use simdc_types::SimdcError::InvalidConfig;
        if self.n_devices == 0 {
            return Err(InvalidConfig("n_devices must be > 0".into()));
        }
        if self.mean_records_per_device <= 0.0 {
            return Err(InvalidConfig("mean_records_per_device must be > 0".into()));
        }
        if self.feature_dim == 0 {
            return Err(InvalidConfig("feature_dim must be > 0".into()));
        }
        if self.ctr_alpha <= 0.0 || self.ctr_beta <= 0.0 {
            return Err(InvalidConfig(
                "ctr beta-prior parameters must be > 0".into(),
            ));
        }
        if !self.feature_signal.is_finite() || self.feature_signal < 0.0 {
            return Err(InvalidConfig(
                "feature_signal must be finite and >= 0".into(),
            ));
        }
        Ok(())
    }
}

/// A fully generated CTR dataset: per-device shards plus a held-out test
/// set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CtrDataset {
    /// Per-device training shards, ordered by device id.
    pub devices: Vec<DeviceDataset>,
    /// Held-out test examples pooled across test devices.
    pub test: Dataset,
    /// Feature-hash dimension used (models must match it).
    pub feature_dim: u32,
}

impl CtrDataset {
    /// Generates a dataset from `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`GeneratorConfig::validate`]; call it first
    /// for a recoverable error.
    #[must_use]
    pub fn generate(config: &GeneratorConfig) -> Self {
        config.validate().expect("invalid generator configuration");
        let truth = GroundTruth::new(config);
        let mut devices = Vec::with_capacity(config.n_devices);
        for i in 0..config.n_devices {
            let id = DeviceId(i as u64);
            devices.push(truth.generate_device(id, None));
        }
        let mut test = Dataset::new();
        for i in 0..config.n_test_devices {
            let id = DeviceId((config.n_devices + i) as u64);
            test.extend(truth.generate_device(id, None).data);
        }
        CtrDataset {
            devices,
            test,
            feature_dim: config.feature_dim,
        }
    }

    /// Generates a dataset whose device CTR marginals are *overridden* so
    /// that a fraction of devices is positive-heavy and the rest
    /// negative-heavy, keeping the feature↔label relationship intact.
    /// Used by the Fig 11(b) "differentially distributed" scenario
    /// (70% positive-heavy / 30% negative-heavy in the paper).
    #[must_use]
    pub fn generate_label_skewed(
        config: &GeneratorConfig,
        positive_fraction: f64,
        positive_rate: f64,
        negative_rate: f64,
    ) -> Self {
        config.validate().expect("invalid generator configuration");
        assert!(
            (0.0..=1.0).contains(&positive_fraction),
            "positive_fraction must be in [0, 1]"
        );
        let truth = GroundTruth::new(config);
        let mut devices = Vec::with_capacity(config.n_devices);
        for i in 0..config.n_devices {
            let id = DeviceId(i as u64);
            let heavy = (i as f64 + 0.5) / config.n_devices as f64 <= positive_fraction;
            let rate = if heavy { positive_rate } else { negative_rate };
            devices.push(truth.generate_device(id, Some(rate)));
        }
        let mut test = Dataset::new();
        for i in 0..config.n_test_devices {
            let id = DeviceId((config.n_devices + i) as u64);
            test.extend(truth.generate_device(id, None).data);
        }
        CtrDataset {
            devices,
            test,
            feature_dim: config.feature_dim,
        }
    }

    /// Overall positive rate across all device shards.
    #[must_use]
    pub fn positive_rate(&self) -> f64 {
        let (pos, total) = self.devices.iter().fold((0usize, 0usize), |(p, t), d| {
            (
                p + d.data.iter().filter(|e| e.label).count(),
                t + d.data.len(),
            )
        });
        if total == 0 {
            0.0
        } else {
            pos as f64 / total as f64
        }
    }

    /// Total number of training examples.
    #[must_use]
    pub fn total_examples(&self) -> usize {
        self.devices.iter().map(DeviceDataset::len).sum()
    }

    /// Devices sorted by descending CTR (used by CTR-correlated latency
    /// assignment).
    #[must_use]
    pub fn devices_by_ctr_desc(&self) -> Vec<&DeviceDataset> {
        let mut refs: Vec<&DeviceDataset> = self.devices.iter().collect();
        refs.sort_by(|a, b| b.ctr.partial_cmp(&a.ctr).expect("ctr is finite"));
        refs
    }
}

/// The hidden ground-truth model shared by all devices.
struct GroundTruth<'a> {
    config: &'a GeneratorConfig,
    hasher: FeatureHasher,
    /// Weight per hashed feature index, lazily derived from the seed so we
    /// never materialize `feature_dim` floats.
    weight_seed: u64,
}

impl<'a> GroundTruth<'a> {
    fn new(config: &'a GeneratorConfig) -> Self {
        GroundTruth {
            config,
            hasher: FeatureHasher::new(config.feature_dim),
            weight_seed: simdc_simrt::derive_seed(config.seed, "ground-truth/weights"),
        }
    }

    /// Deterministic pseudo-weight for a hashed feature index, ~N(0, 0.35).
    fn weight(&self, index: u32) -> f64 {
        // SplitMix64 is designed to decorrelate sequential seeds, so mixing
        // the index straight into the seed is sound and avoids per-lookup
        // string formatting on the hot path.
        let seed = self
            .weight_seed
            .wrapping_add(u64::from(index).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = RngStream::from_seed(seed);
        rng.normal(0.0, 0.35)
    }

    fn score(&self, features: &FeatureVec) -> f64 {
        features.indices().iter().map(|&i| self.weight(i)).sum()
    }

    fn generate_device(&self, id: DeviceId, ctr_override: Option<f64>) -> DeviceDataset {
        let cfg = self.config;
        let mut rng = RngStream::named(cfg.seed, &format!("device/{}", id.as_u64()));
        let ctr = ctr_override
            .unwrap_or_else(|| rng.beta(cfg.ctr_alpha, cfg.ctr_beta))
            .clamp(0.005, 0.995);
        let n_records = rng.poisson(cfg.mean_records_per_device).max(1) as usize;
        let device_model = rng.index(200) as u32;
        let tz_peak = rng.index(24) as u32;
        let offset = logit(ctr);

        let mut data = Dataset::new();
        for _ in 0..n_records {
            let features = self.sample_features(&mut rng, device_model, tz_peak);
            let z = self.score(&features);
            let p = sigmoid(offset + cfg.feature_signal * z);
            let label = rng.chance(p);
            data.push(Example::new(features, label));
        }
        DeviceDataset::new(id, ctr, data)
    }

    fn sample_features(&self, rng: &mut RngStream, device_model: u32, tz_peak: u32) -> FeatureVec {
        let mut indices = Vec::with_capacity(self.config.schema.len());
        for field in self.config.schema.fields() {
            let value = match field.name.as_str() {
                "device_model" => device_model % field.cardinality,
                "hour_of_day" => {
                    // Hours concentrate around the device's timezone peak.
                    let jitter = rng.normal(0.0, 3.0).round() as i64;
                    (i64::from(tz_peak) + jitter).rem_euclid(i64::from(field.cardinality)) as u32
                }
                _ => {
                    // Zipf-ish skew: square a uniform to favour small ids,
                    // matching the heavy-tailed category popularity of ad
                    // logs.
                    let u = rng.uniform();
                    ((u * u) * f64::from(field.cardinality)) as u32 % field.cardinality
                }
            };
            indices.push(self.hasher.index(&field.name, value));
        }
        FeatureVec::from_indices(indices)
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

fn logit(p: f64) -> f64 {
    (p / (1.0 - p)).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> GeneratorConfig {
        GeneratorConfig {
            n_devices: 120,
            n_test_devices: 12,
            mean_records_per_device: 25.0,
            feature_dim: 1 << 12,
            seed: 7,
            ..GeneratorConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CtrDataset::generate(&small_config());
        let b = CtrDataset::generate(&small_config());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = CtrDataset::generate(&small_config());
        let b = CtrDataset::generate(&GeneratorConfig {
            seed: 8,
            ..small_config()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn every_device_has_records() {
        let data = CtrDataset::generate(&small_config());
        assert_eq!(data.devices.len(), 120);
        assert!(data.devices.iter().all(|d| !d.is_empty()));
        assert!(!data.test.is_empty());
    }

    #[test]
    fn overall_ctr_matches_beta_prior_mean() {
        let data = CtrDataset::generate(&GeneratorConfig {
            n_devices: 400,
            mean_records_per_device: 40.0,
            ..small_config()
        });
        // Beta(2, 10) mean ≈ 0.167; feature noise keeps it in a band.
        let rate = data.positive_rate();
        assert!((0.1..0.3).contains(&rate), "rate {rate}");
    }

    #[test]
    fn device_ctrs_are_heterogeneous() {
        let data = CtrDataset::generate(&small_config());
        let ctrs: Vec<f64> = data.devices.iter().map(|d| d.ctr).collect();
        let min = ctrs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ctrs.iter().cloned().fold(0.0, f64::max);
        assert!(
            max - min > 0.1,
            "expected non-IID spread, got [{min}, {max}]"
        );
    }

    #[test]
    fn label_skew_splits_marginals() {
        let data = CtrDataset::generate_label_skewed(&small_config(), 0.7, 0.7, 0.1);
        let heavy = data
            .devices
            .iter()
            .filter(|d| d.data.positive_rate() > 0.4)
            .count();
        let frac = heavy as f64 / data.devices.len() as f64;
        assert!(
            (0.55..0.85).contains(&frac),
            "~70% of devices should be positive-heavy, got {frac}"
        );
    }

    #[test]
    fn devices_by_ctr_desc_is_sorted() {
        let data = CtrDataset::generate(&small_config());
        let sorted = data.devices_by_ctr_desc();
        for pair in sorted.windows(2) {
            assert!(pair[0].ctr >= pair[1].ctr);
        }
    }

    #[test]
    fn validate_rejects_bad_configs() {
        for cfg in [
            GeneratorConfig {
                n_devices: 0,
                ..small_config()
            },
            GeneratorConfig {
                mean_records_per_device: 0.0,
                ..small_config()
            },
            GeneratorConfig {
                feature_dim: 0,
                ..small_config()
            },
            GeneratorConfig {
                ctr_alpha: 0.0,
                ..small_config()
            },
            GeneratorConfig {
                feature_signal: -1.0,
                ..small_config()
            },
        ] {
            assert!(cfg.validate().is_err());
        }
        assert!(small_config().validate().is_ok());
    }
}
