//! Re-partitioning generated data across devices.
//!
//! The generator's *natural* partition (one shard per device, heterogeneous
//! CTR) is already non-IID. The functions here construct the other
//! distributions the paper's experiments need:
//!
//! * [`iid_partition`] — pool every example and deal them out uniformly
//!   (Fig 11(a), "identically distributed").
//! * [`label_skew_partition`] — a fraction of devices gets mostly positive
//!   examples and the rest mostly negative (Fig 11(b), "differentially
//!   distributed": 70% / 30% in the paper).
//! * [`ctr_correlated_delays`] — per-device upload delays where higher-CTR
//!   devices respond faster, shaped as a right-tailed normal `|N(0, σ)|`
//!   (the Fig 9 scenario).

use serde::{Deserialize, Serialize};
use simdc_simrt::RngStream;
use simdc_types::{DeviceId, SimDuration};

use crate::dataset::{Dataset, DeviceDataset, Example};

/// Pools all examples and deals them uniformly onto `n_shards` devices.
///
/// Every input example lands on exactly one shard; shard sizes differ by at
/// most one.
///
/// # Panics
///
/// Panics if `n_shards` is zero.
#[must_use]
pub fn iid_partition(
    devices: &[DeviceDataset],
    n_shards: usize,
    rng: &mut RngStream,
) -> Vec<DeviceDataset> {
    assert!(n_shards > 0, "need at least one shard");
    let mut pool: Vec<Example> = devices
        .iter()
        .flat_map(|d| d.data.iter().cloned())
        .collect();
    rng.shuffle(&mut pool);
    let global_rate = {
        let pos = pool.iter().filter(|e| e.label).count();
        if pool.is_empty() {
            0.0
        } else {
            pos as f64 / pool.len() as f64
        }
    };
    let mut shards: Vec<Dataset> = vec![Dataset::new(); n_shards];
    for (i, example) in pool.into_iter().enumerate() {
        shards[i % n_shards].push(example);
    }
    shards
        .into_iter()
        .enumerate()
        .map(|(i, data)| DeviceDataset::new(DeviceId(i as u64), global_rate, data))
        .collect()
}

/// Configuration for [`label_skew_partition`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LabelSkewConfig {
    /// Fraction of shards that are positive-heavy (paper: 0.7).
    pub positive_heavy_fraction: f64,
    /// Target positive rate on positive-heavy shards (e.g. 0.7).
    pub heavy_positive_rate: f64,
    /// Target positive rate on negative-heavy shards (e.g. 0.1).
    pub light_positive_rate: f64,
}

impl Default for LabelSkewConfig {
    fn default() -> Self {
        LabelSkewConfig {
            positive_heavy_fraction: 0.7,
            heavy_positive_rate: 0.7,
            light_positive_rate: 0.1,
        }
    }
}

impl LabelSkewConfig {
    /// Validates all rates are probabilities.
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` if any field is outside `[0, 1]`.
    pub fn validate(&self) -> simdc_types::Result<()> {
        for (name, v) in [
            ("positive_heavy_fraction", self.positive_heavy_fraction),
            ("heavy_positive_rate", self.heavy_positive_rate),
            ("light_positive_rate", self.light_positive_rate),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(simdc_types::SimdcError::InvalidConfig(format!(
                    "{name} must be in [0, 1], got {v}"
                )));
            }
        }
        Ok(())
    }
}

/// Redistributes examples so shard label marginals follow `config`.
///
/// Examples are split into positive and negative pools; each shard draws
/// from the pools at its target ratio until the pools run dry (trailing
/// shards absorb whatever remains, so **every example is preserved**).
///
/// # Panics
///
/// Panics if `n_shards` is zero or `config` is invalid.
#[must_use]
pub fn label_skew_partition(
    devices: &[DeviceDataset],
    n_shards: usize,
    config: &LabelSkewConfig,
    rng: &mut RngStream,
) -> Vec<DeviceDataset> {
    assert!(n_shards > 0, "need at least one shard");
    config.validate().expect("invalid label-skew configuration");

    let mut positives = Vec::new();
    let mut negatives = Vec::new();
    for d in devices {
        for e in d.data.iter() {
            if e.label {
                positives.push(e.clone());
            } else {
                negatives.push(e.clone());
            }
        }
    }
    rng.shuffle(&mut positives);
    rng.shuffle(&mut negatives);
    let total = positives.len() + negatives.len();
    let per_shard_base = total / n_shards;
    let remainder = total % n_shards;

    let n_heavy = ((n_shards as f64) * config.positive_heavy_fraction).round() as usize;
    let mut shards = Vec::with_capacity(n_shards);
    for i in 0..n_shards {
        let shard_size = per_shard_base + usize::from(i < remainder);
        let target_rate = if i < n_heavy {
            config.heavy_positive_rate
        } else {
            config.light_positive_rate
        };
        let mut data = Dataset::new();
        for _ in 0..shard_size {
            let want_positive = rng.chance(target_rate);
            let example = if want_positive {
                positives.pop().or_else(|| negatives.pop())
            } else {
                negatives.pop().or_else(|| positives.pop())
            };
            match example {
                Some(e) => data.push(e),
                None => break,
            }
        }
        let rate = data.positive_rate();
        shards.push(DeviceDataset::new(DeviceId(i as u64), rate, data));
    }
    // Pools can be non-empty only if rounding starved the last shards; give
    // leftovers to the final shard so no example is dropped.
    if let Some(last) = shards.last_mut() {
        last.data.extend(positives);
        last.data.extend(negatives);
    }
    shards
}

/// Assigns per-device upload delays such that **higher-CTR devices respond
/// faster**, with the delay population shaped as the right tail of
/// `N(0, σ)` scaled by `scale` (Fig 9's "clients with higher CTR transmit
/// data faster" scenario).
///
/// Returns `(device, delay)` pairs in the input order of `devices`.
///
/// # Panics
///
/// Panics if `sigma` is not positive.
#[must_use]
pub fn ctr_correlated_delays(
    devices: &[DeviceDataset],
    sigma: f64,
    scale: SimDuration,
    rng: &mut RngStream,
) -> Vec<(DeviceId, SimDuration)> {
    assert!(sigma > 0.0, "sigma must be positive");
    // Sample |N(0, σ)| delays, sort ascending, and hand the shortest delays
    // to the highest-CTR devices.
    let mut delays: Vec<f64> = (0..devices.len())
        .map(|_| rng.normal(0.0, sigma).abs())
        .collect();
    delays.sort_by(|a, b| a.partial_cmp(b).expect("normal draws are finite"));

    let mut order: Vec<usize> = (0..devices.len()).collect();
    order.sort_by(|&a, &b| {
        devices[b]
            .ctr
            .partial_cmp(&devices[a].ctr)
            .expect("ctr is finite")
    });

    let mut result = vec![(DeviceId(0), SimDuration::ZERO); devices.len()];
    for (rank, &dev_idx) in order.iter().enumerate() {
        result[dev_idx] = (devices[dev_idx].device, scale.mul_f64(delays[rank]));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CtrDataset, GeneratorConfig};

    fn data() -> CtrDataset {
        CtrDataset::generate(&GeneratorConfig {
            n_devices: 60,
            n_test_devices: 5,
            mean_records_per_device: 30.0,
            feature_dim: 1 << 12,
            seed: 21,
            ..GeneratorConfig::default()
        })
    }

    #[test]
    fn iid_preserves_every_example() {
        let d = data();
        let total: usize = d.devices.iter().map(|x| x.len()).sum();
        let mut rng = RngStream::from_seed(1);
        let shards = iid_partition(&d.devices, 7, &mut rng);
        assert_eq!(shards.len(), 7);
        assert_eq!(shards.iter().map(|s| s.len()).sum::<usize>(), total);
        let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
        assert!(max - min <= 1, "shard sizes should be balanced: {sizes:?}");
    }

    #[test]
    fn iid_shards_have_similar_rates() {
        let d = data();
        let mut rng = RngStream::from_seed(2);
        let shards = iid_partition(&d.devices, 4, &mut rng);
        let global = d.positive_rate();
        for s in &shards {
            assert!(
                (s.data.positive_rate() - global).abs() < 0.08,
                "shard rate {} vs global {global}",
                s.data.positive_rate()
            );
        }
    }

    #[test]
    fn label_skew_preserves_examples_and_skews_rates() {
        let d = data();
        let total: usize = d.devices.iter().map(|x| x.len()).sum();
        let mut rng = RngStream::from_seed(3);
        let cfg = LabelSkewConfig::default();
        let shards = label_skew_partition(&d.devices, 10, &cfg, &mut rng);
        assert_eq!(shards.iter().map(|s| s.len()).sum::<usize>(), total);
        // The first 7 shards should be markedly more positive than the last 3
        // (pools may run out of positives, so compare relatively).
        let heavy_mean: f64 = shards[..7]
            .iter()
            .map(|s| s.data.positive_rate())
            .sum::<f64>()
            / 7.0;
        let light_mean: f64 = shards[7..]
            .iter()
            .map(|s| s.data.positive_rate())
            .sum::<f64>()
            / 3.0;
        assert!(
            heavy_mean > light_mean + 0.1,
            "heavy {heavy_mean} vs light {light_mean}"
        );
    }

    #[test]
    fn label_skew_validation() {
        let bad = LabelSkewConfig {
            heavy_positive_rate: 1.5,
            ..LabelSkewConfig::default()
        };
        assert!(bad.validate().is_err());
        assert!(LabelSkewConfig::default().validate().is_ok());
    }

    #[test]
    fn ctr_delays_are_anticorrelated_with_ctr() {
        let d = data();
        let mut rng = RngStream::from_seed(4);
        let delays = ctr_correlated_delays(&d.devices, 1.0, SimDuration::from_secs(60), &mut rng);
        assert_eq!(delays.len(), d.devices.len());
        // Highest-CTR device must have the minimum delay.
        let best = d
            .devices
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.ctr.partial_cmp(&b.1.ctr).unwrap())
            .unwrap()
            .0;
        let min_delay = delays.iter().map(|&(_, d)| d).min().unwrap();
        assert_eq!(delays[best].1, min_delay);
        // And order agrees: delay ranks reverse CTR ranks.
        for i in 0..d.devices.len() {
            for j in 0..d.devices.len() {
                if d.devices[i].ctr > d.devices[j].ctr {
                    assert!(delays[i].1 <= delays[j].1);
                }
            }
        }
    }

    #[test]
    fn larger_sigma_spreads_delays() {
        let d = data();
        let mut rng1 = RngStream::from_seed(5);
        let mut rng2 = RngStream::from_seed(5);
        let tight = ctr_correlated_delays(&d.devices, 1.0, SimDuration::from_secs(60), &mut rng1);
        let wide = ctr_correlated_delays(&d.devices, 3.0, SimDuration::from_secs(60), &mut rng2);
        let mean = |v: &[(DeviceId, SimDuration)]| {
            v.iter().map(|&(_, d)| d.as_secs_f64()).sum::<f64>() / v.len() as f64
        };
        assert!(mean(&wide) > mean(&tight) * 2.0);
    }
}
