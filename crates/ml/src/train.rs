//! Local (on-device) training.

use serde::{Deserialize, Serialize};

use simdc_data::Dataset;

use crate::kernel::KernelKind;
use crate::model::LrModel;

/// Hyper-parameters of local training.
///
/// Paper defaults (§VI-A): learning rate `1e-3`, 10 local epochs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Number of local epochs per round.
    pub epochs: u32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            learning_rate: 1e-3,
            epochs: 10,
        }
    }
}

impl TrainConfig {
    /// Validates the hyper-parameters.
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` if the learning rate is not positive/finite
    /// or `epochs` is zero.
    pub fn validate(&self) -> simdc_types::Result<()> {
        use simdc_types::SimdcError::InvalidConfig;
        if !self.learning_rate.is_finite() || self.learning_rate <= 0.0 {
            return Err(InvalidConfig(format!(
                "learning_rate must be positive, got {}",
                self.learning_rate
            )));
        }
        if self.epochs == 0 {
            return Err(InvalidConfig("epochs must be > 0".into()));
        }
        Ok(())
    }
}

/// The result a device sends back after local training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalUpdate {
    /// The locally trained model.
    pub model: LrModel,
    /// Number of local examples (FedAvg weight).
    pub n_samples: u64,
    /// Mean training loss of the final epoch.
    pub final_loss: f64,
}

/// Runs local training rounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalTrainer {
    config: TrainConfig,
}

impl LocalTrainer {
    /// Creates a trainer with the given hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`TrainConfig::validate`] first for a recoverable error.
    #[must_use]
    pub fn new(config: TrainConfig) -> Self {
        config.validate().expect("invalid training configuration");
        LocalTrainer { config }
    }

    /// The hyper-parameters in use.
    #[must_use]
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains a copy of `global` on `data` with the chosen kernel and
    /// returns the device's update.
    #[must_use]
    pub fn train(&self, global: &LrModel, data: &Dataset, kernel: KernelKind) -> LocalUpdate {
        let mut model = global.clone();
        let mut final_loss = 0.0;
        let k = kernel.kernel();
        for _ in 0..self.config.epochs {
            final_loss = k.sgd_epoch(&mut model, data.examples(), self.config.learning_rate);
        }
        LocalUpdate {
            model,
            n_samples: data.len() as u64,
            final_loss,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdc_data::{Example, FeatureVec};

    fn dataset() -> Dataset {
        (0..40)
            .map(|i| {
                Example::new(
                    FeatureVec::from_indices(vec![if i % 2 == 0 { 0 } else { 1 }]),
                    i % 2 == 0,
                )
            })
            .collect()
    }

    #[test]
    fn train_does_not_mutate_global() {
        let global = LrModel::zeros(4);
        let trainer = LocalTrainer::new(TrainConfig {
            learning_rate: 0.5,
            epochs: 3,
        });
        let update = trainer.train(&global, &dataset(), KernelKind::Server);
        assert_eq!(global, LrModel::zeros(4));
        assert_ne!(update.model, global);
        assert_eq!(update.n_samples, 40);
    }

    #[test]
    fn more_epochs_lower_loss() {
        let global = LrModel::zeros(4);
        let short = LocalTrainer::new(TrainConfig {
            learning_rate: 0.2,
            epochs: 1,
        })
        .train(&global, &dataset(), KernelKind::Server);
        let long = LocalTrainer::new(TrainConfig {
            learning_rate: 0.2,
            epochs: 15,
        })
        .train(&global, &dataset(), KernelKind::Server);
        assert!(long.final_loss < short.final_loss);
    }

    #[test]
    fn config_validation() {
        assert!(TrainConfig::default().validate().is_ok());
        assert!(TrainConfig {
            learning_rate: 0.0,
            epochs: 1
        }
        .validate()
        .is_err());
        assert!(TrainConfig {
            learning_rate: f32::NAN,
            epochs: 1
        }
        .validate()
        .is_err());
        assert!(TrainConfig {
            learning_rate: 0.1,
            epochs: 0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let global = LrModel::zeros(4);
        let trainer = LocalTrainer::new(TrainConfig::default());
        let a = trainer.train(&global, &dataset(), KernelKind::Mobile);
        let b = trainer.train(&global, &dataset(), KernelKind::Mobile);
        assert_eq!(a, b);
    }
}
