//! Training kernels: two floating-point implementations of the same SGD
//! update.
//!
//! The paper's logical simulation uses PyMNN operators while phones run the
//! C++ MNN operators shipped in business SDKs (§VI-B.2): functionally
//! identical, numerically different. [`ServerKernel`] and [`MobileKernel`]
//! reproduce that split — both perform per-example SGD on the logistic loss,
//! but the server kernel accumulates in `f64` while the mobile kernel stays
//! in `f32` with a fused multiply order, so long training runs drift apart
//! by a fraction of a percent, exactly the effect Fig 6 quantifies.

use serde::{Deserialize, Serialize};

use simdc_data::Example;

use crate::model::LrModel;

/// Which operator implementation a simulated device runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelKind {
    /// PyMNN-analog: `f64` accumulation (logical simulation).
    Server,
    /// MNN-C++-analog: `f32` fused updates (device simulation).
    Mobile,
}

impl KernelKind {
    /// Returns the kernel implementation for this kind.
    #[must_use]
    pub fn kernel(self) -> &'static dyn TrainKernel {
        match self {
            KernelKind::Server => &ServerKernel,
            KernelKind::Mobile => &MobileKernel,
        }
    }
}

/// One pass of per-example SGD over a dataset.
///
/// Implementations must visit examples in order (determinism) and update
/// the model in place. The trait is object-safe so heterogeneous clusters
/// can mix kernels at runtime.
pub trait TrainKernel: Sync {
    /// Runs one epoch of SGD at learning rate `lr`, returning the mean
    /// training loss *before* each example's update (the usual online
    /// estimate).
    fn sgd_epoch(&self, model: &mut LrModel, data: &[Example], lr: f32) -> f64;

    /// Human-readable kernel name.
    fn name(&self) -> &'static str;
}

/// `f64`-accumulating kernel (the PyMNN/server analog).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerKernel;

impl TrainKernel for ServerKernel {
    fn sgd_epoch(&self, model: &mut LrModel, data: &[Example], lr: f32) -> f64 {
        let mut loss_sum = 0.0f64;
        let lr = f64::from(lr);
        for example in data {
            // Margin in f64.
            let mut margin = f64::from(model.bias());
            for &idx in example.features.indices() {
                margin += f64::from(model.weights()[idx as usize]);
            }
            let p = 1.0 / (1.0 + (-margin).exp());
            let y = f64::from(u8::from(example.label));
            loss_sum += logistic_loss(p, example.label);
            let grad = p - y;
            let step = (lr * grad) as f32;
            for &idx in example.features.indices() {
                model.weights_mut()[idx as usize] -= step;
            }
            model.set_bias(model.bias() - step);
        }
        mean_loss(loss_sum, data.len())
    }

    fn name(&self) -> &'static str {
        "server-f64"
    }
}

/// `f32` fused kernel (the MNN-C++/mobile analog).
///
/// Differences from [`ServerKernel`]: the margin accumulates in `f32`, the
/// activation uses the fast Padé-approximant sigmoid common in mobile
/// inference kernels (max error ≈ 5e-4 on the probability), the gradient
/// step is computed and applied in `f32`, and the bias is updated *before*
/// the weights. All changes are functionally neutral implementations of
/// the same operator — numerically they drift by a fraction of a percent,
/// which is exactly the Fig 6 effect.
#[derive(Debug, Clone, Copy, Default)]
pub struct MobileKernel;

/// Fast sigmoid via the Padé(3,2) tanh approximant
/// `tanh(y) ≈ y·(27 + y²) / (27 + 9y²)`, clamped to the saturation region.
#[must_use]
pub fn fast_sigmoid(x: f32) -> f32 {
    if x >= 8.0 {
        return 1.0;
    }
    if x <= -8.0 {
        return 0.0;
    }
    let y = x * 0.5;
    let y2 = y * y;
    let tanh = y * (27.0 + y2) / (27.0 + 9.0 * y2);
    0.5 * (1.0 + tanh.clamp(-1.0, 1.0))
}

impl TrainKernel for MobileKernel {
    fn sgd_epoch(&self, model: &mut LrModel, data: &[Example], lr: f32) -> f64 {
        let mut loss_sum = 0.0f64;
        for example in data {
            let margin = model.margin(&example.features); // f32 path
            let p = fast_sigmoid(margin);
            let y = u8::from(example.label) as f32;
            loss_sum += logistic_loss(f64::from(p), example.label);
            let step = lr * (p - y);
            model.set_bias(model.bias() - step);
            for &idx in example.features.indices() {
                model.weights_mut()[idx as usize] -= step;
            }
        }
        mean_loss(loss_sum, data.len())
    }

    fn name(&self) -> &'static str {
        "mobile-f32"
    }
}

/// Clamped cross-entropy of a single prediction.
fn logistic_loss(p: f64, label: bool) -> f64 {
    let p = p.clamp(1e-12, 1.0 - 1e-12);
    if label {
        -p.ln()
    } else {
        -(1.0 - p).ln()
    }
}

fn mean_loss(sum: f64, n: usize) -> f64 {
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdc_data::FeatureVec;

    fn toy_data() -> Vec<Example> {
        // Feature 0 active → positive, feature 1 active → negative.
        let mut data = Vec::new();
        for i in 0..50 {
            data.push(Example::new(
                FeatureVec::from_indices(vec![0, 2 + (i % 3)]),
                true,
            ));
            data.push(Example::new(
                FeatureVec::from_indices(vec![1, 2 + (i % 3)]),
                false,
            ));
        }
        data
    }

    #[test]
    fn both_kernels_learn_the_separator() {
        for kind in [KernelKind::Server, KernelKind::Mobile] {
            let mut model = LrModel::zeros(8);
            let data = toy_data();
            let mut last = f64::INFINITY;
            for _ in 0..20 {
                last = kind.kernel().sgd_epoch(&mut model, &data, 0.5);
            }
            assert!(last < 0.1, "{}: loss {last}", kind.kernel().name());
            assert!(model.weights()[0] > 0.5);
            assert!(model.weights()[1] < -0.5);
        }
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let mut model = LrModel::zeros(8);
        let data = toy_data();
        let l1 = ServerKernel.sgd_epoch(&mut model, &data, 0.1);
        let l5 = (0..4)
            .map(|_| ServerKernel.sgd_epoch(&mut model, &data, 0.1))
            .last()
            .unwrap();
        assert!(l5 < l1);
    }

    #[test]
    fn kernels_agree_approximately_but_not_exactly() {
        let data = toy_data();
        let mut server = LrModel::zeros(8);
        let mut mobile = LrModel::zeros(8);
        for _ in 0..10 {
            ServerKernel.sgd_epoch(&mut server, &data, 0.3);
            MobileKernel.sgd_epoch(&mut mobile, &data, 0.3);
        }
        // Same direction, same approximate magnitude. The tolerance is
        // loose in the saturated regime: the fast sigmoid's gradient
        // reaches exactly zero at |margin| ≥ 6, so the mobile kernel stops
        // growing weights slightly earlier than the server kernel.
        for i in 0..8 {
            let (s, m) = (server.weights()[i], mobile.weights()[i]);
            assert!(
                (s - m).abs() < 0.05f32.max(0.2 * s.abs()),
                "weight {i} diverged: {s} vs {m}"
            );
            assert_eq!(s.signum(), m.signum(), "weight {i} flipped sign");
        }
        // ...but not identical (that's the point of the dual kernels).
        assert_ne!(server.weights(), mobile.weights());
    }

    #[test]
    fn empty_dataset_is_a_noop() {
        let mut model = LrModel::zeros(4);
        let loss = ServerKernel.sgd_epoch(&mut model, &[], 0.1);
        assert_eq!(loss, 0.0);
        assert_eq!(model, LrModel::zeros(4));
    }

    #[test]
    fn kernel_kind_dispatch() {
        assert_eq!(KernelKind::Server.kernel().name(), "server-f64");
        assert_eq!(KernelKind::Mobile.kernel().name(), "mobile-f32");
    }
}
