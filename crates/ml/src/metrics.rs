//! Evaluation metrics: accuracy, log-loss, AUC and Pearson correlation.

use serde::{Deserialize, Serialize};

use simdc_data::Dataset;

use crate::model::LrModel;

/// Metrics of a model on a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EvalMetrics {
    /// Fraction of examples classified correctly at threshold 0.5.
    pub accuracy: f64,
    /// Mean cross-entropy.
    pub log_loss: f64,
    /// Area under the ROC curve (0.5 for a random / constant scorer).
    pub auc: f64,
    /// Number of evaluated examples.
    pub n_examples: usize,
}

/// Evaluates `model` on `data`.
///
/// Returns default (all-zero) metrics for an empty dataset.
#[must_use]
pub fn evaluate(model: &LrModel, data: &Dataset) -> EvalMetrics {
    if data.is_empty() {
        return EvalMetrics::default();
    }
    let mut correct = 0usize;
    let mut loss_sum = 0.0f64;
    let mut scored: Vec<(f64, bool)> = Vec::with_capacity(data.len());
    for example in data.iter() {
        let p = f64::from(model.predict(&example.features));
        let predicted = p >= 0.5;
        if predicted == example.label {
            correct += 1;
        }
        let pc = p.clamp(1e-12, 1.0 - 1e-12);
        loss_sum += if example.label {
            -pc.ln()
        } else {
            -(1.0 - pc).ln()
        };
        scored.push((p, example.label));
    }
    EvalMetrics {
        accuracy: correct as f64 / data.len() as f64,
        log_loss: loss_sum / data.len() as f64,
        auc: auc(&mut scored),
        n_examples: data.len(),
    }
}

/// Rank-based AUC with midrank tie handling.
///
/// Returns 0.5 when either class is absent (an undefined AUC, reported as
/// chance level).
fn auc(scored: &mut [(f64, bool)]) -> f64 {
    let n_pos = scored.iter().filter(|(_, y)| *y).count();
    let n_neg = scored.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("scores are finite"));
    // Assign midranks to tied scores.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0usize;
    while i < scored.len() {
        let mut j = i;
        while j + 1 < scored.len() && scored[j + 1].0 == scored[i].0 {
            j += 1;
        }
        // ranks i+1 ..= j+1 share the midrank
        let midrank = (i + 1 + j + 1) as f64 / 2.0;
        for item in scored.iter().take(j + 1).skip(i) {
            if item.1 {
                rank_sum_pos += midrank;
            }
        }
        i = j + 1;
    }
    let n_pos_f = n_pos as f64;
    let n_neg_f = n_neg as f64;
    (rank_sum_pos - n_pos_f * (n_pos_f + 1.0) / 2.0) / (n_pos_f * n_neg_f)
}

/// Pearson correlation coefficient between two equal-length series.
///
/// This is the similarity measure Table II reports between user-defined
/// traffic curves and DeviceFlow's actual dispatch amounts. Re-exported
/// from [`simdc_simrt`] so non-ML crates share one implementation.
pub use simdc_simrt::pearson_correlation;

#[cfg(test)]
mod tests {
    use super::*;
    use simdc_data::{Example, FeatureVec};

    fn dataset() -> Dataset {
        (0..100)
            .map(|i| {
                Example::new(
                    FeatureVec::from_indices(vec![if i % 2 == 0 { 0 } else { 1 }]),
                    i % 2 == 0,
                )
            })
            .collect()
    }

    fn good_model() -> LrModel {
        let mut m = LrModel::zeros(2);
        m.weights_mut()[0] = 4.0;
        m.weights_mut()[1] = -4.0;
        m
    }

    #[test]
    fn perfect_model_scores_perfectly() {
        let m = evaluate(&good_model(), &dataset());
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.auc, 1.0);
        assert!(m.log_loss < 0.05);
        assert_eq!(m.n_examples, 100);
    }

    #[test]
    fn zero_model_is_chance_level() {
        let m = evaluate(&LrModel::zeros(2), &dataset());
        assert_eq!(m.auc, 0.5);
        assert!((m.log_loss - (2.0f64).ln().abs()).abs() < 1e-9);
        // p = 0.5 → predicted positive for all; accuracy = positive rate.
        assert_eq!(m.accuracy, 0.5);
    }

    #[test]
    fn inverted_model_has_auc_zero() {
        let mut m = LrModel::zeros(2);
        m.weights_mut()[0] = -4.0;
        m.weights_mut()[1] = 4.0;
        let metrics = evaluate(&m, &dataset());
        assert_eq!(metrics.auc, 0.0);
        assert_eq!(metrics.accuracy, 0.0);
    }

    #[test]
    fn empty_dataset_gives_default_metrics() {
        let m = evaluate(&LrModel::zeros(2), &Dataset::new());
        assert_eq!(m, EvalMetrics::default());
    }

    #[test]
    fn auc_single_class_is_half() {
        let ds: Dataset = (0..5)
            .map(|_| Example::new(FeatureVec::from_indices(vec![0]), true))
            .collect();
        assert_eq!(evaluate(&LrModel::zeros(1), &ds).auc, 0.5);
    }

    #[test]
    fn pearson_of_identical_series_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((pearson_correlation(&xs, &xs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_negated_series_is_minus_one() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [-1.0, -2.0, -3.0];
        assert!((pearson_correlation(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_is_scale_invariant() {
        let xs = [0.0, 1.0, 4.0, 9.0];
        let ys: Vec<f64> = xs.iter().map(|x| 100.0 + 7.0 * x).collect();
        assert!((pearson_correlation(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson_correlation(&[], &[]), 0.0);
        assert_eq!(pearson_correlation(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn pearson_length_mismatch_panics() {
        let _ = pearson_correlation(&[1.0], &[1.0, 2.0]);
    }
}
