//! Logistic regression, federated averaging and evaluation metrics.
//!
//! This crate is the "edge algorithm" substrate of SimDC: the CTR model the
//! paper trains (logistic regression — "particularly suitable for
//! large-scale data and real-time prediction" per §VI-A), local SGD
//! training, FedAvg aggregation, and the metrics the experiments report
//! (accuracy, log-loss, AUC, Pearson correlation).
//!
//! ## Dual kernels
//!
//! The paper's logical simulation trains with PyMNN operators while physical
//! phones run the C++ MNN operators of real business SDKs; Fig 6 shows the
//! resulting accuracy divergence stays below 0.5%. We reproduce that
//! implementation split with two numeric kernels that compute the *same*
//! mathematical update through different floating-point paths:
//! [`kernel::ServerKernel`] accumulates gradients in `f64`, while
//! [`kernel::MobileKernel`] works in `f32` with a fused update order.
//!
//! # Examples
//!
//! ```
//! use simdc_data::{CtrDataset, GeneratorConfig};
//! use simdc_ml::{evaluate, FedAvg, KernelKind, LocalTrainer, LrModel, TrainConfig};
//!
//! let data = CtrDataset::generate(&GeneratorConfig {
//!     n_devices: 20,
//!     n_test_devices: 4,
//!     feature_dim: 1 << 12,
//!     ..GeneratorConfig::default()
//! });
//! let mut global = LrModel::zeros(data.feature_dim);
//! let trainer = LocalTrainer::new(TrainConfig::default());
//!
//! for _round in 0..3 {
//!     let updates: Vec<_> = data
//!         .devices
//!         .iter()
//!         .map(|d| trainer.train(&global, &d.data, KernelKind::Server))
//!         .collect();
//!     global = FedAvg::aggregate(&updates).expect("non-empty update set");
//! }
//! let m = evaluate(&global, &data.test);
//! assert!(m.accuracy > 0.5);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod fedavg;
pub mod kernel;
pub mod metrics;
pub mod model;
pub mod train;

pub use fedavg::FedAvg;
pub use kernel::{KernelKind, MobileKernel, ServerKernel, TrainKernel};
pub use metrics::{evaluate, pearson_correlation, EvalMetrics};
pub use model::LrModel;
pub use train::{LocalTrainer, LocalUpdate, TrainConfig};
