//! FedAvg aggregation.
//!
//! The paper aggregates with FedAvg (§VI-A): the global model is the
//! sample-count-weighted mean of client models,
//! `w = Σ_k p_k w_k` with `p_k = n_k / Σ n`.

use simdc_types::{Result, SimdcError};

use crate::model::LrModel;
use crate::train::LocalUpdate;

/// The FedAvg aggregator.
#[derive(Debug, Clone, Copy, Default)]
pub struct FedAvg;

impl FedAvg {
    /// Aggregates client updates into a new global model.
    ///
    /// Updates with zero samples contribute nothing (but are tolerated);
    /// if *all* updates have zero samples, clients are weighted equally.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::InvalidConfig`] when `updates` is empty or the
    /// models disagree on dimension.
    pub fn aggregate(updates: &[LocalUpdate]) -> Result<LrModel> {
        let first = updates.first().ok_or_else(|| {
            SimdcError::InvalidConfig("cannot aggregate an empty update set".into())
        })?;
        let dim = first.model.dim();
        for u in updates {
            if u.model.dim() != dim {
                return Err(SimdcError::InvalidConfig(format!(
                    "model dimension mismatch: {} vs {dim}",
                    u.model.dim()
                )));
            }
        }

        let total: u64 = updates.iter().map(|u| u.n_samples).sum();
        let weights: Vec<f64> = if total == 0 {
            vec![1.0 / updates.len() as f64; updates.len()]
        } else {
            updates
                .iter()
                .map(|u| u.n_samples as f64 / total as f64)
                .collect()
        };

        let mut acc = vec![0.0f64; dim as usize];
        let mut bias_acc = 0.0f64;
        for (update, &p) in updates.iter().zip(&weights) {
            for (a, &w) in acc.iter_mut().zip(update.model.weights()) {
                *a += p * f64::from(w);
            }
            bias_acc += p * f64::from(update.model.bias());
        }

        let mut model = LrModel::zeros(dim);
        for (dst, &src) in model.weights_mut().iter_mut().zip(&acc) {
            *dst = src as f32;
        }
        model.set_bias(bias_acc as f32);
        Ok(model)
    }

    /// Sample-weighted mean of the clients' reported final losses — the
    /// "training loss" series Fig 9(a) plots per aggregation round.
    #[must_use]
    pub fn weighted_loss(updates: &[LocalUpdate]) -> f64 {
        let total: u64 = updates.iter().map(|u| u.n_samples).sum();
        if total == 0 {
            return updates.iter().map(|u| u.final_loss).sum::<f64>() / updates.len().max(1) as f64;
        }
        updates
            .iter()
            .map(|u| u.final_loss * (u.n_samples as f64 / total as f64))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update(weights: Vec<f32>, bias: f32, n: u64, loss: f64) -> LocalUpdate {
        LocalUpdate {
            model: LrModel::from_parts(weights, bias),
            n_samples: n,
            final_loss: loss,
        }
    }

    #[test]
    fn equal_weights_average() {
        let updates = vec![
            update(vec![1.0, 0.0], 1.0, 10, 0.5),
            update(vec![0.0, 1.0], 3.0, 10, 0.7),
        ];
        let global = FedAvg::aggregate(&updates).unwrap();
        assert_eq!(global.weights(), &[0.5, 0.5]);
        assert_eq!(global.bias(), 2.0);
        assert!((FedAvg::weighted_loss(&updates) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn weighting_follows_sample_counts() {
        let updates = vec![
            update(vec![1.0], 0.0, 30, 1.0),
            update(vec![0.0], 0.0, 10, 0.0),
        ];
        let global = FedAvg::aggregate(&updates).unwrap();
        assert!((global.weights()[0] - 0.75).abs() < 1e-6);
        assert!((FedAvg::weighted_loss(&updates) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn single_update_is_identity() {
        let u = update(vec![0.25, -0.5, 3.0], 0.125, 7, 0.3);
        let global = FedAvg::aggregate(std::slice::from_ref(&u)).unwrap();
        assert_eq!(global, u.model);
    }

    #[test]
    fn empty_set_is_an_error() {
        assert!(FedAvg::aggregate(&[]).is_err());
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let updates = vec![
            update(vec![1.0], 0.0, 1, 0.0),
            update(vec![1.0, 2.0], 0.0, 1, 0.0),
        ];
        assert!(FedAvg::aggregate(&updates).is_err());
    }

    #[test]
    fn all_zero_samples_fall_back_to_uniform() {
        let updates = vec![
            update(vec![2.0], 0.0, 0, 0.4),
            update(vec![4.0], 0.0, 0, 0.8),
        ];
        let global = FedAvg::aggregate(&updates).unwrap();
        assert_eq!(global.weights(), &[3.0]);
        assert!((FedAvg::weighted_loss(&updates) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn zero_sample_update_contributes_nothing() {
        let updates = vec![
            update(vec![1.0], 0.0, 10, 0.0),
            update(vec![100.0], 50.0, 0, 0.0),
        ];
        let global = FedAvg::aggregate(&updates).unwrap();
        assert_eq!(global.weights(), &[1.0]);
        assert_eq!(global.bias(), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The aggregate of arbitrary updates stays inside the per-weight
        /// min/max envelope (a weighted mean can never extrapolate).
        #[test]
        fn aggregate_is_a_convex_combination(
            weights in proptest::collection::vec(
                proptest::collection::vec(-10.0f32..10.0, 4),
                1..8
            ),
            samples in proptest::collection::vec(0u64..1_000, 8),
        ) {
            let updates: Vec<LocalUpdate> = weights
                .iter()
                .zip(&samples)
                .map(|(w, &n)| LocalUpdate {
                    model: LrModel::from_parts(w.clone(), 0.0),
                    n_samples: n,
                    final_loss: 0.0,
                })
                .collect();
            let global = FedAvg::aggregate(&updates).unwrap();
            for i in 0..4 {
                let lo = updates
                    .iter()
                    .map(|u| u.model.weights()[i])
                    .fold(f32::INFINITY, f32::min);
                let hi = updates
                    .iter()
                    .map(|u| u.model.weights()[i])
                    .fold(f32::NEG_INFINITY, f32::max);
                let g = global.weights()[i];
                prop_assert!(
                    g >= lo - 1e-4 && g <= hi + 1e-4,
                    "weight {i}: {g} outside [{lo}, {hi}]"
                );
            }
        }

        /// Aggregation is invariant to uniformly scaling sample counts.
        #[test]
        fn weights_are_scale_invariant(
            w1 in -5.0f32..5.0,
            w2 in -5.0f32..5.0,
            n1 in 1u64..500,
            n2 in 1u64..500,
            factor in 2u64..10,
        ) {
            let mk = |w: f32, n: u64| LocalUpdate {
                model: LrModel::from_parts(vec![w], 0.0),
                n_samples: n,
                final_loss: 0.0,
            };
            let a = FedAvg::aggregate(&[mk(w1, n1), mk(w2, n2)]).unwrap();
            let b = FedAvg::aggregate(&[mk(w1, n1 * factor), mk(w2, n2 * factor)]).unwrap();
            prop_assert!((a.weights()[0] - b.weights()[0]).abs() < 1e-5);
        }
    }
}
