//! The logistic-regression model.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use simdc_types::{Result, SimdcError};

use simdc_data::FeatureVec;

/// A sparse-input logistic-regression model: one weight per hashed feature
/// index plus a bias.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LrModel {
    weights: Vec<f32>,
    bias: f32,
}

impl LrModel {
    /// Creates a zero-initialized model of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    #[must_use]
    pub fn zeros(dim: u32) -> Self {
        assert!(dim > 0, "model dimension must be positive");
        LrModel {
            weights: vec![0.0; dim as usize],
            bias: 0.0,
        }
    }

    /// Creates a model from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty.
    #[must_use]
    pub fn from_parts(weights: Vec<f32>, bias: f32) -> Self {
        assert!(!weights.is_empty(), "model dimension must be positive");
        LrModel { weights, bias }
    }

    /// Feature dimension.
    #[must_use]
    pub fn dim(&self) -> u32 {
        self.weights.len() as u32
    }

    /// The weight vector.
    #[must_use]
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Mutable weight vector (used by training kernels).
    #[must_use]
    pub fn weights_mut(&mut self) -> &mut [f32] {
        &mut self.weights
    }

    /// The bias term.
    #[must_use]
    pub fn bias(&self) -> f32 {
        self.bias
    }

    /// Sets the bias term.
    pub fn set_bias(&mut self, bias: f32) {
        self.bias = bias;
    }

    /// Raw margin `w·x + b` for a sparse binary feature vector.
    #[must_use]
    pub fn margin(&self, features: &FeatureVec) -> f32 {
        let mut sum = self.bias;
        for &idx in features.indices() {
            sum += self.weights[idx as usize];
        }
        sum
    }

    /// Predicted click probability.
    #[must_use]
    pub fn predict(&self, features: &FeatureVec) -> f32 {
        sigmoid(self.margin(features))
    }

    /// L2 norm of the parameter vector (weights + bias), for diagnostics.
    #[must_use]
    pub fn l2_norm(&self) -> f64 {
        let sum: f64 = self
            .weights
            .iter()
            .map(|&w| f64::from(w) * f64::from(w))
            .sum::<f64>()
            + f64::from(self.bias) * f64::from(self.bias);
        sum.sqrt()
    }

    /// Serializes the model to a compact binary payload (little-endian
    /// `dim`, bias, then weights). This is what devices upload to shared
    /// storage.
    #[must_use]
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 + self.weights.len() * 4);
        buf.put_u32_le(self.dim());
        buf.put_f32_le(self.bias);
        for &w in &self.weights {
            buf.put_f32_le(w);
        }
        buf.freeze()
    }

    /// Deserializes a model produced by [`LrModel::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::Serialization`] if the payload is truncated or
    /// the declared dimension does not match the payload length.
    pub fn from_bytes(mut payload: Bytes) -> Result<Self> {
        if payload.len() < 8 {
            return Err(SimdcError::Serialization(format!(
                "model payload too short: {} bytes",
                payload.len()
            )));
        }
        let dim = payload.get_u32_le() as usize;
        let bias = payload.get_f32_le();
        if dim == 0 {
            return Err(SimdcError::Serialization("model dimension is zero".into()));
        }
        if payload.remaining() != dim * 4 {
            return Err(SimdcError::Serialization(format!(
                "model payload length mismatch: expected {} weight bytes, got {}",
                dim * 4,
                payload.remaining()
            )));
        }
        let mut weights = Vec::with_capacity(dim);
        for _ in 0..dim {
            weights.push(payload.get_f32_le());
        }
        Ok(LrModel { weights, bias })
    }

    /// Size in bytes of the serialized model (for bandwidth accounting).
    #[must_use]
    pub fn serialized_size(&self) -> u64 {
        8 + self.weights.len() as u64 * 4
    }
}

/// Numerically stable logistic function in `f32`.
#[must_use]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_predicts_half() {
        let m = LrModel::zeros(16);
        let x = FeatureVec::from_indices(vec![1, 5]);
        assert_eq!(m.predict(&x), 0.5);
        assert_eq!(m.dim(), 16);
    }

    #[test]
    fn margin_sums_active_weights() {
        let mut m = LrModel::zeros(8);
        m.weights_mut()[2] = 0.5;
        m.weights_mut()[3] = -0.25;
        m.set_bias(0.1);
        let x = FeatureVec::from_indices(vec![2, 3]);
        assert!((m.margin(&x) - 0.35).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(sigmoid(100.0), 1.0);
        assert!(sigmoid(-100.0) >= 0.0 && sigmoid(-100.0) < 1e-30);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-9);
        // Symmetry.
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bytes_round_trip() {
        let mut m = LrModel::zeros(5);
        m.weights_mut().copy_from_slice(&[0.1, -0.2, 0.3, 0.0, 9.5]);
        m.set_bias(-1.25);
        let bytes = m.to_bytes();
        assert_eq!(bytes.len() as u64, m.serialized_size());
        let back = LrModel::from_bytes(bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(LrModel::from_bytes(Bytes::from_static(&[1, 2, 3])).is_err());
        // Declared dim 10 but no weights.
        let mut buf = BytesMut::new();
        buf.put_u32_le(10);
        buf.put_f32_le(0.0);
        assert!(LrModel::from_bytes(buf.freeze()).is_err());
        // Zero dim.
        let mut buf = BytesMut::new();
        buf.put_u32_le(0);
        buf.put_f32_le(0.0);
        assert!(LrModel::from_bytes(buf.freeze()).is_err());
    }

    #[test]
    fn l2_norm_matches_hand_computation() {
        let m = LrModel::from_parts(vec![3.0, 4.0], 0.0);
        assert!((m.l2_norm() - 5.0).abs() < 1e-9);
    }
}
