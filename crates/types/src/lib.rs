//! Shared vocabulary types for the SimDC device simulation platform.
//!
//! Every other SimDC crate speaks in terms of the identifiers, virtual time,
//! resource descriptions, device grades and messages defined here. The crate
//! is deliberately dependency-light so that substrates (cluster, phone,
//! deviceflow) can interoperate without pulling each other in.
//!
//! # Examples
//!
//! ```
//! use simdc_types::{DeviceGrade, ResourceBundle, SimDuration};
//!
//! let bundle = ResourceBundle::new(1_000, 1_024, 0); // 1 core, 1 GiB
//! assert!(ResourceBundle::new(4_000, 12_288, 0).contains(&bundle));
//! assert_eq!(SimDuration::from_secs(90).as_millis(), 90_000);
//! assert!(DeviceGrade::High < DeviceGrade::Low);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod grade;
pub mod ids;
pub mod message;
pub mod resources;
pub mod time;

pub use error::{Result, SimdcError};
pub use grade::{DeviceGrade, PerGrade};
pub use ids::{ActorId, DeviceId, MessageId, NodeId, PhoneId, RoundId, StorageKey, TaskId};
pub use message::{Message, MessageKind};
pub use resources::ResourceBundle;
pub use time::{SimDuration, SimInstant};
