//! Device grades.
//!
//! SimDC categorizes simulated and physical devices into performance grades
//! (the paper's experiments use two: *High* and *Low*, e.g. smartphones with
//! ≥8 GB vs <8 GB memory). Most of the platform is generic over an arbitrary
//! number of grades — the allocation optimizer works on per-grade parameter
//! slices — but the canonical two-grade setup gets first-class support via
//! [`DeviceGrade`] and the [`PerGrade`] container.

use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

/// Performance grade of a device.
///
/// Ordered from most to least capable so that `High < Low` mirrors "grade 1
/// before grade 2" orderings in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DeviceGrade {
    /// High-end device (paper default: 4 CPU cores / 12 GB memory in logical
    /// simulation; ≥8 GB memory phones in device simulation).
    High,
    /// Low-end device (paper default: 1 CPU core / 6 GB memory in logical
    /// simulation; <8 GB memory phones in device simulation).
    Low,
}

impl DeviceGrade {
    /// All grades, in canonical order.
    pub const ALL: [DeviceGrade; 2] = [DeviceGrade::High, DeviceGrade::Low];

    /// Number of grades.
    pub const COUNT: usize = 2;

    /// Stable index of this grade (0 = High, 1 = Low).
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            DeviceGrade::High => 0,
            DeviceGrade::Low => 1,
        }
    }

    /// Inverse of [`DeviceGrade::index`].
    ///
    /// Returns `None` if `idx` is out of range.
    #[must_use]
    pub const fn from_index(idx: usize) -> Option<DeviceGrade> {
        match idx {
            0 => Some(DeviceGrade::High),
            1 => Some(DeviceGrade::Low),
            _ => None,
        }
    }

    /// Short lowercase name, e.g. for file names and CSV columns.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            DeviceGrade::High => "high",
            DeviceGrade::Low => "low",
        }
    }
}

impl fmt::Display for DeviceGrade {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceGrade::High => f.write_str("High"),
            DeviceGrade::Low => f.write_str("Low"),
        }
    }
}

/// A value per device grade.
///
/// A tiny fixed-size map keyed by [`DeviceGrade`], used for per-grade counts,
/// durations and profiles.
///
/// ```
/// use simdc_types::{DeviceGrade, PerGrade};
/// let mut counts = PerGrade::new(0u32);
/// counts[DeviceGrade::High] = 500;
/// counts[DeviceGrade::Low] = 500;
/// assert_eq!(counts.iter().map(|(_, c)| *c).sum::<u32>(), 1_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct PerGrade<T> {
    /// Value for [`DeviceGrade::High`].
    pub high: T,
    /// Value for [`DeviceGrade::Low`].
    pub low: T,
}

impl<T> PerGrade<T> {
    /// Creates a map with the same value for every grade.
    pub fn new(value: T) -> Self
    where
        T: Clone,
    {
        PerGrade {
            high: value.clone(),
            low: value,
        }
    }

    /// Creates a map from explicit per-grade values.
    pub const fn from_parts(high: T, low: T) -> Self {
        PerGrade { high, low }
    }

    /// Builds a map by evaluating `f` for every grade.
    pub fn from_fn(mut f: impl FnMut(DeviceGrade) -> T) -> Self {
        PerGrade {
            high: f(DeviceGrade::High),
            low: f(DeviceGrade::Low),
        }
    }

    /// Returns a reference to the value for `grade`.
    pub fn get(&self, grade: DeviceGrade) -> &T {
        match grade {
            DeviceGrade::High => &self.high,
            DeviceGrade::Low => &self.low,
        }
    }

    /// Returns a mutable reference to the value for `grade`.
    pub fn get_mut(&mut self, grade: DeviceGrade) -> &mut T {
        match grade {
            DeviceGrade::High => &mut self.high,
            DeviceGrade::Low => &mut self.low,
        }
    }

    /// Iterates over `(grade, &value)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (DeviceGrade, &T)> {
        [
            (DeviceGrade::High, &self.high),
            (DeviceGrade::Low, &self.low),
        ]
        .into_iter()
    }

    /// Maps every value to a new [`PerGrade`].
    pub fn map<U>(&self, mut f: impl FnMut(DeviceGrade, &T) -> U) -> PerGrade<U> {
        PerGrade {
            high: f(DeviceGrade::High, &self.high),
            low: f(DeviceGrade::Low, &self.low),
        }
    }
}

impl<T> Index<DeviceGrade> for PerGrade<T> {
    type Output = T;
    fn index(&self, grade: DeviceGrade) -> &T {
        self.get(grade)
    }
}

impl<T> IndexMut<DeviceGrade> for PerGrade<T> {
    fn index_mut(&mut self, grade: DeviceGrade) -> &mut T {
        self.get_mut(grade)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for grade in DeviceGrade::ALL {
            assert_eq!(DeviceGrade::from_index(grade.index()), Some(grade));
        }
        assert_eq!(DeviceGrade::from_index(2), None);
    }

    #[test]
    fn display_and_str() {
        assert_eq!(DeviceGrade::High.to_string(), "High");
        assert_eq!(DeviceGrade::Low.as_str(), "low");
    }

    #[test]
    fn high_sorts_before_low() {
        let mut grades = vec![DeviceGrade::Low, DeviceGrade::High];
        grades.sort();
        assert_eq!(grades, vec![DeviceGrade::High, DeviceGrade::Low]);
    }

    #[test]
    fn per_grade_accessors() {
        let mut pg = PerGrade::from_parts(4u32, 20u32);
        assert_eq!(pg[DeviceGrade::High], 4);
        pg[DeviceGrade::Low] += 1;
        assert_eq!(pg.low, 21);
        let doubled = pg.map(|_, v| v * 2);
        assert_eq!(doubled, PerGrade::from_parts(8, 42));
    }

    #[test]
    fn per_grade_from_fn_order() {
        let pg = PerGrade::from_fn(|g| g.index());
        assert_eq!(pg.high, 0);
        assert_eq!(pg.low, 1);
        let collected: Vec<_> = pg.iter().map(|(g, _)| g).collect();
        assert_eq!(collected, vec![DeviceGrade::High, DeviceGrade::Low]);
    }
}
