//! Strongly typed identifiers.
//!
//! Each identifier is a newtype over an integer (or string for
//! [`StorageKey`]) so that a task id can never be confused with a device id
//! at a call site. All ids implement the common traits eagerly
//! (`C-COMMON-TRAITS`) and serialize transparently.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! int_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal, $inner:ty) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw integer value of this identifier.
            #[must_use]
            pub const fn as_u64(self) -> u64 {
                self.0 as u64
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "-{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }
    };
}

int_id!(
    /// Unique identifier of a submitted task (the paper's `task_id`).
    TaskId, "task", u64
);
int_id!(
    /// Identifier of one simulated edge device within a task.
    DeviceId, "dev", u64
);
int_id!(
    /// Identifier of a physical phone in the device-simulation cluster.
    PhoneId, "phone", u32
);
int_id!(
    /// Identifier of a logical-simulation actor (one per resource bundle).
    ActorId, "actor", u64
);
int_id!(
    /// Identifier of a worker node in the logical-simulation cluster.
    NodeId, "node", u32
);
int_id!(
    /// Identifier of a device→cloud message handled by DeviceFlow.
    MessageId, "msg", u64
);
int_id!(
    /// Zero-based index of a device-cloud collaboration round.
    RoundId, "round", u32
);

impl RoundId {
    /// The first round of a task.
    pub const FIRST: RoundId = RoundId(0);

    /// Returns the round that follows this one.
    #[must_use]
    pub const fn next(self) -> RoundId {
        RoundId(self.0 + 1)
    }
}

/// Key under which a device's computation result is stored in shared
/// storage.
///
/// Devices upload payloads to storage and send a [`crate::Message`] carrying
/// the key; cloud services later fetch the payload by key (§III-B of the
/// paper).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct StorageKey(pub String);

impl StorageKey {
    /// Builds the canonical key for a device's result in a given round.
    ///
    /// ```
    /// use simdc_types::{DeviceId, RoundId, StorageKey, TaskId};
    /// let key = StorageKey::for_update(TaskId(7), RoundId(2), DeviceId(19));
    /// assert_eq!(key.as_str(), "task-7/round-2/dev-19");
    /// ```
    #[must_use]
    pub fn for_update(task: TaskId, round: RoundId, device: DeviceId) -> Self {
        StorageKey(format!("{task}/{round}/{device}"))
    }

    /// Builds the canonical key for the global model published in a round.
    #[must_use]
    pub fn for_global_model(task: TaskId, round: RoundId) -> Self {
        StorageKey(format!("{task}/{round}/global"))
    }

    /// Returns the key as a string slice.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for StorageKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for StorageKey {
    fn from(s: &str) -> Self {
        StorageKey(s.to_owned())
    }
}

impl From<String> for StorageKey {
    fn from(s: String) -> Self {
        StorageKey(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_prefix() {
        assert_eq!(TaskId(3).to_string(), "task-3");
        assert_eq!(DeviceId(11).to_string(), "dev-11");
        assert_eq!(PhoneId(2).to_string(), "phone-2");
        assert_eq!(ActorId(0).to_string(), "actor-0");
        assert_eq!(NodeId(9).to_string(), "node-9");
        assert_eq!(MessageId(1).to_string(), "msg-1");
        assert_eq!(RoundId(5).to_string(), "round-5");
    }

    #[test]
    fn round_next_increments() {
        assert_eq!(RoundId::FIRST.next(), RoundId(1));
        assert_eq!(RoundId(41).next(), RoundId(42));
    }

    #[test]
    fn ids_order_by_value() {
        assert!(TaskId(1) < TaskId(2));
        assert!(DeviceId(100) > DeviceId(99));
    }

    #[test]
    fn storage_key_round_trips_serde() {
        let key = StorageKey::for_update(TaskId(1), RoundId(0), DeviceId(4));
        let json = serde_json::to_string(&key).unwrap();
        assert_eq!(json, "\"task-1/round-0/dev-4\"");
        let back: StorageKey = serde_json::from_str(&json).unwrap();
        assert_eq!(back, key);
    }

    #[test]
    fn id_serde_is_transparent() {
        assert_eq!(serde_json::to_string(&TaskId(9)).unwrap(), "9");
        let id: DeviceId = serde_json::from_str("77").unwrap();
        assert_eq!(id, DeviceId(77));
    }
}
