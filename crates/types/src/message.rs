//! Device→cloud messages.
//!
//! When a device finishes a round of its operator flow it uploads the
//! computation result to shared storage and emits a [`Message`] toward the
//! cloud service. DeviceFlow intercepts these messages and forwards them
//! according to the task's dispatch strategy (§V of the paper); the cloud
//! service then fetches the payload from storage using
//! [`Message::storage_key`].

use serde::{Deserialize, Serialize};

use crate::ids::{DeviceId, MessageId, RoundId, StorageKey, TaskId};
use crate::time::SimInstant;

/// What a message announces to the cloud.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessageKind {
    /// A local model update is available in storage.
    ModelUpdate,
    /// The device started its round (used for liveness/telemetry).
    RoundStarted,
    /// The device gave up on the round (crash, user interruption).
    Aborted,
    /// A performance-measurement sample from a benchmarking phone.
    Telemetry,
}

/// A message from a (simulated or physical) device to a cloud service.
///
/// Messages are intentionally small: bulky payloads (model weights, metric
/// batches) live in shared storage and are referenced by key, mirroring the
/// paper's storage/notification split.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// Unique id assigned at emission.
    pub id: MessageId,
    /// Task this message belongs to; DeviceFlow's sorter routes on this.
    pub task: TaskId,
    /// Originating device.
    pub device: DeviceId,
    /// Round of the task's operator flow.
    pub round: RoundId,
    /// What the message announces.
    pub kind: MessageKind,
    /// Number of training samples behind this result (drives
    /// sample-threshold aggregation and FedAvg weighting).
    pub sample_count: u64,
    /// Where the payload was uploaded, if any.
    pub storage_key: Option<StorageKey>,
    /// Virtual time at which the device emitted the message.
    pub emitted_at: SimInstant,
}

impl Message {
    /// Creates a model-update message for a completed local round.
    #[must_use]
    pub fn model_update(
        id: MessageId,
        task: TaskId,
        device: DeviceId,
        round: RoundId,
        sample_count: u64,
        storage_key: StorageKey,
        emitted_at: SimInstant,
    ) -> Self {
        Message {
            id,
            task,
            device,
            round,
            kind: MessageKind::ModelUpdate,
            sample_count,
            storage_key: Some(storage_key),
            emitted_at,
        }
    }

    /// Approximate wire size of the message itself in bytes (excluding the
    /// payload, which lives in storage). Used by bandwidth accounting.
    #[must_use]
    pub fn wire_size_bytes(&self) -> u64 {
        // Fixed header + key string; matches the "small control message"
        // regime the paper assumes for DeviceFlow (≤ ~1 KB each).
        96 + self
            .storage_key
            .as_ref()
            .map_or(0, |k| k.as_str().len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_message() -> Message {
        Message::model_update(
            MessageId(1),
            TaskId(7),
            DeviceId(3),
            RoundId(0),
            2_000,
            StorageKey::for_update(TaskId(7), RoundId(0), DeviceId(3)),
            SimInstant::EPOCH,
        )
    }

    #[test]
    fn model_update_sets_kind_and_key() {
        let msg = sample_message();
        assert_eq!(msg.kind, MessageKind::ModelUpdate);
        assert_eq!(
            msg.storage_key.as_ref().unwrap().as_str(),
            "task-7/round-0/dev-3"
        );
    }

    #[test]
    fn wire_size_includes_key() {
        let msg = sample_message();
        let bare = Message {
            storage_key: None,
            ..msg.clone()
        };
        assert!(msg.wire_size_bytes() > bare.wire_size_bytes());
        assert_eq!(bare.wire_size_bytes(), 96);
    }

    #[test]
    fn serde_round_trip() {
        let msg = sample_message();
        let json = serde_json::to_string(&msg).unwrap();
        let back: Message = serde_json::from_str(&json).unwrap();
        assert_eq!(back, msg);
    }
}
