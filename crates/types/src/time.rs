//! Virtual time for the discrete-event simulation.
//!
//! SimDC runs entirely on a virtual clock so that simulating 100,000 devices
//! takes milliseconds of wall time and is exactly reproducible. Time is kept
//! in integer microseconds; [`SimInstant`] is a point on the virtual
//! timeline, [`SimDuration`] a span between points.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of microseconds per second.
const MICROS_PER_SEC: u64 = 1_000_000;
/// Number of microseconds per millisecond.
const MICROS_PER_MILLI: u64 = 1_000;

/// A span of virtual time, stored as integer microseconds.
///
/// ```
/// use simdc_types::SimDuration;
/// let d = SimDuration::from_millis(1_500);
/// assert_eq!(d.as_secs_f64(), 1.5);
/// assert_eq!(d * 4, SimDuration::from_secs(6));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimDuration {
    /// A duration of length zero.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from whole microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from whole milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * MICROS_PER_MILLI)
    }

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    /// Creates a duration from whole minutes.
    #[must_use]
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60 * MICROS_PER_SEC)
    }

    /// Creates a duration from fractional seconds, saturating on overflow.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        let micros = secs * MICROS_PER_SEC as f64;
        if micros >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(micros.round() as u64)
        }
    }

    /// Returns the duration in whole microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration in whole milliseconds (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / MICROS_PER_MILLI
    }

    /// Returns the duration in whole seconds (truncating).
    #[must_use]
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Returns the duration in fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Returns the duration in fractional minutes.
    #[must_use]
    pub fn as_mins_f64(self) -> f64 {
        self.as_secs_f64() / 60.0
    }

    /// Whether the duration is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Adds two durations, saturating at [`SimDuration::MAX`].
    #[must_use]
    pub const fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Subtracts `rhs`, saturating at zero.
    #[must_use]
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the duration by a non-negative float, rounding to the
    /// nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration factor must be finite and non-negative, got {factor}"
        );
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.as_secs_f64();
        if secs >= 60.0 {
            write!(f, "{:.2}min", secs / 60.0)
        } else if secs >= 1.0 {
            write!(f, "{secs:.3}s")
        } else {
            write!(f, "{:.3}ms", self.0 as f64 / MICROS_PER_MILLI as f64)
        }
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |acc, d| acc.saturating_add(d))
    }
}

/// A point on the virtual timeline (microseconds since simulation start).
///
/// ```
/// use simdc_types::{SimDuration, SimInstant};
/// let t0 = SimInstant::EPOCH;
/// let t1 = t0 + SimDuration::from_secs(3);
/// assert_eq!(t1.duration_since(t0), SimDuration::from_secs(3));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimInstant(u64);

impl SimInstant {
    /// The start of simulated time.
    pub const EPOCH: SimInstant = SimInstant(0);

    /// Creates an instant from microseconds since the epoch.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimInstant(micros)
    }

    /// Microseconds since the epoch.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the epoch.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Returns the span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[must_use]
    pub fn duration_since(self, earlier: SimInstant) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since called with a later instant ({} > {})",
            earlier.0,
            self.0
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Returns the span from `earlier` to `self`, or zero if `earlier` is
    /// later.
    #[must_use]
    pub const fn saturating_duration_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimInstant {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn sub(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 - rhs.0)
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_consistent() {
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_millis(2_000).as_secs(), 2);
        assert_eq!(SimDuration::from_mins(3).as_secs(), 180);
        assert_eq!(SimDuration::from_micros(1_500_000).as_secs_f64(), 1.5);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(SimDuration::from_secs_f64(1.0).as_secs(), 1);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn saturating_arithmetic() {
        assert_eq!(
            SimDuration::MAX.saturating_add(SimDuration::from_secs(1)),
            SimDuration::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn instant_arithmetic() {
        let t = SimInstant::EPOCH + SimDuration::from_secs(10);
        assert_eq!(t.as_secs_f64(), 10.0);
        assert_eq!(
            t.duration_since(SimInstant::EPOCH),
            SimDuration::from_secs(10)
        );
        assert_eq!(
            SimInstant::EPOCH.saturating_duration_since(t),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "later instant")]
    fn duration_since_panics_on_reversed_order() {
        let t = SimInstant::EPOCH + SimDuration::from_secs(1);
        let _ = SimInstant::EPOCH.duration_since(t);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_millis(250).to_string(), "250.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
        assert_eq!(SimDuration::from_mins(2).to_string(), "2.00min");
        assert_eq!(
            (SimInstant::EPOCH + SimDuration::from_secs(1)).to_string(),
            "t+1.000s"
        );
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn mul_div_scalars() {
        assert_eq!(SimDuration::from_secs(3) * 2, SimDuration::from_secs(6));
        assert_eq!(SimDuration::from_secs(6) / 2, SimDuration::from_secs(3));
        assert_eq!(
            SimDuration::from_secs(10).mul_f64(0.5),
            SimDuration::from_secs(5)
        );
    }
}
