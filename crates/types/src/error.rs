//! Platform-wide error type.

use std::error::Error as StdError;
use std::fmt;

use crate::ids::{PhoneId, TaskId};

/// Convenience alias used across all SimDC crates.
pub type Result<T, E = SimdcError> = std::result::Result<T, E>;

/// Errors produced by the SimDC platform and its substrates.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimdcError {
    /// A user-supplied configuration was rejected; the message explains the
    /// offending field and constraint.
    InvalidConfig(String),
    /// A resource request could not be satisfied by the current pools.
    ResourceExhausted {
        /// What was requested (human-readable).
        requested: String,
        /// What remained available (human-readable).
        available: String,
    },
    /// The referenced task is unknown to the task manager.
    TaskNotFound(TaskId),
    /// The referenced phone is not registered or not in a usable state.
    PhoneUnavailable(PhoneId),
    /// An ADB command failed or was malformed.
    AdbCommand(String),
    /// A storage key was not found when a cloud service tried to fetch a
    /// device result.
    StorageMiss(String),
    /// A DeviceFlow strategy was rejected (e.g. a traffic function violating
    /// the single-valued/bounded/non-negative contract).
    InvalidStrategy(String),
    /// The allocation optimizer found the instance infeasible (e.g. more
    /// benchmarking phones requested than devices of that grade).
    InfeasibleAllocation(String),
    /// (De)serialization of a payload failed.
    Serialization(String),
}

impl fmt::Display for SimdcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimdcError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimdcError::ResourceExhausted {
                requested,
                available,
            } => write!(
                f,
                "resource request exceeds availability (requested {requested}, available {available})"
            ),
            SimdcError::TaskNotFound(id) => write!(f, "unknown task {id}"),
            SimdcError::PhoneUnavailable(id) => write!(f, "phone {id} is unavailable"),
            SimdcError::AdbCommand(msg) => write!(f, "adb command failed: {msg}"),
            SimdcError::StorageMiss(key) => write!(f, "storage key not found: {key}"),
            SimdcError::InvalidStrategy(msg) => write!(f, "invalid dispatch strategy: {msg}"),
            SimdcError::InfeasibleAllocation(msg) => {
                write!(f, "infeasible allocation: {msg}")
            }
            SimdcError::Serialization(msg) => write!(f, "serialization error: {msg}"),
        }
    }
}

impl StdError for SimdcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_concise() {
        let cases: Vec<SimdcError> = vec![
            SimdcError::InvalidConfig("rounds must be > 0".into()),
            SimdcError::ResourceExhausted {
                requested: "80 bundles".into(),
                available: "50 bundles".into(),
            },
            SimdcError::TaskNotFound(TaskId(3)),
            SimdcError::PhoneUnavailable(PhoneId(1)),
            SimdcError::AdbCommand("pgrep: no such process".into()),
            SimdcError::StorageMiss("task-1/round-0/dev-2".into()),
            SimdcError::InvalidStrategy("negative rate".into()),
            SimdcError::InfeasibleAllocation("q exceeds N".into()),
            SimdcError::Serialization("truncated payload".into()),
        ];
        for err in cases {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "error message should start lowercase: {msg}"
            );
            assert!(!msg.ends_with('.'), "no trailing punctuation: {msg}");
        }
    }

    #[test]
    fn is_std_error_send_sync() {
        fn assert_traits<T: StdError + Send + Sync + 'static>() {}
        assert_traits::<SimdcError>();
    }
}
