//! Resource bundles.
//!
//! The logical-simulation cluster emulates devices with *unit resource
//! bundles* — e.g. `{CPU: 1 core, memory: 1 GB}` — and a grade-`g` device
//! needs `k_g` such units (§IV-B). [`ResourceBundle`] is the quantity being
//! requested, frozen and released by the resource manager.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An amount of compute resources: CPU, memory and (optionally) GPU.
///
/// CPU is measured in millicores (1 core = 1000) and GPU in milli-GPUs so
/// that fractional allocations stay in integer arithmetic; memory is in MiB.
///
/// ```
/// use simdc_types::ResourceBundle;
/// let unit = ResourceBundle::new(1_000, 1_024, 0);
/// let node = ResourceBundle::new(8_000, 32_768, 0);
/// assert!(node.contains(&unit));
/// assert_eq!(node.max_bundles(&unit), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ResourceBundle {
    /// CPU in millicores (1 physical core = 1000).
    pub cpu_millicores: u64,
    /// Memory in MiB.
    pub memory_mib: u64,
    /// GPU in milli-GPUs (1 full accelerator = 1000).
    pub gpu_millis: u64,
}

impl ResourceBundle {
    /// The empty bundle.
    pub const ZERO: ResourceBundle = ResourceBundle {
        cpu_millicores: 0,
        memory_mib: 0,
        gpu_millis: 0,
    };

    /// Creates a bundle from explicit quantities.
    #[must_use]
    pub const fn new(cpu_millicores: u64, memory_mib: u64, gpu_millis: u64) -> Self {
        ResourceBundle {
            cpu_millicores,
            memory_mib,
            gpu_millis,
        }
    }

    /// Convenience constructor for CPU-only bundles, in whole cores and GiB.
    ///
    /// The paper's unit bundle `{CPU: 1 core, memory: 1 GB}` is
    /// `ResourceBundle::cores_gib(1, 1)`.
    #[must_use]
    pub const fn cores_gib(cores: u64, gib: u64) -> Self {
        ResourceBundle {
            cpu_millicores: cores * 1_000,
            memory_mib: gib * 1_024,
            gpu_millis: 0,
        }
    }

    /// Whether every component of `other` fits inside `self`.
    #[must_use]
    pub const fn contains(&self, other: &ResourceBundle) -> bool {
        self.cpu_millicores >= other.cpu_millicores
            && self.memory_mib >= other.memory_mib
            && self.gpu_millis >= other.gpu_millis
    }

    /// Whether the bundle is all zeros.
    #[must_use]
    pub const fn is_zero(&self) -> bool {
        self.cpu_millicores == 0 && self.memory_mib == 0 && self.gpu_millis == 0
    }

    /// How many copies of `unit` fit in `self` simultaneously.
    ///
    /// Returns `u64::MAX` only when `unit` is the zero bundle and `self`
    /// is non-empty in every dimension requested (a zero unit fits
    /// unboundedly); callers should validate units beforehand.
    #[must_use]
    pub fn max_bundles(&self, unit: &ResourceBundle) -> u64 {
        fn ratio(avail: u64, unit: u64) -> u64 {
            avail.checked_div(unit).unwrap_or(u64::MAX)
        }
        ratio(self.cpu_millicores, unit.cpu_millicores)
            .min(ratio(self.memory_mib, unit.memory_mib))
            .min(ratio(self.gpu_millis, unit.gpu_millis))
    }

    /// Component-wise saturating subtraction.
    #[must_use]
    pub const fn saturating_sub(&self, rhs: &ResourceBundle) -> ResourceBundle {
        ResourceBundle {
            cpu_millicores: self.cpu_millicores.saturating_sub(rhs.cpu_millicores),
            memory_mib: self.memory_mib.saturating_sub(rhs.memory_mib),
            gpu_millis: self.gpu_millis.saturating_sub(rhs.gpu_millis),
        }
    }

    /// Multiplies every component by `n`.
    #[must_use]
    pub const fn scaled(&self, n: u64) -> ResourceBundle {
        ResourceBundle {
            cpu_millicores: self.cpu_millicores * n,
            memory_mib: self.memory_mib * n,
            gpu_millis: self.gpu_millis * n,
        }
    }
}

impl Add for ResourceBundle {
    type Output = ResourceBundle;
    fn add(self, rhs: ResourceBundle) -> ResourceBundle {
        ResourceBundle {
            cpu_millicores: self.cpu_millicores + rhs.cpu_millicores,
            memory_mib: self.memory_mib + rhs.memory_mib,
            gpu_millis: self.gpu_millis + rhs.gpu_millis,
        }
    }
}

impl AddAssign for ResourceBundle {
    fn add_assign(&mut self, rhs: ResourceBundle) {
        *self = *self + rhs;
    }
}

impl Sub for ResourceBundle {
    type Output = ResourceBundle;
    /// Component-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds, via integer underflow) if any component of
    /// `rhs` exceeds `self`; use [`ResourceBundle::saturating_sub`] when the
    /// relationship is not known.
    fn sub(self, rhs: ResourceBundle) -> ResourceBundle {
        ResourceBundle {
            cpu_millicores: self.cpu_millicores - rhs.cpu_millicores,
            memory_mib: self.memory_mib - rhs.memory_mib,
            gpu_millis: self.gpu_millis - rhs.gpu_millis,
        }
    }
}

impl SubAssign for ResourceBundle {
    fn sub_assign(&mut self, rhs: ResourceBundle) {
        *self = *self - rhs;
    }
}

impl std::iter::Sum for ResourceBundle {
    fn sum<I: Iterator<Item = ResourceBundle>>(iter: I) -> Self {
        iter.fold(ResourceBundle::ZERO, |acc, b| acc + b)
    }
}

impl fmt::Display for ResourceBundle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{cpu: {:.1} cores, mem: {} MiB",
            self.cpu_millicores as f64 / 1_000.0,
            self.memory_mib
        )?;
        if self.gpu_millis > 0 {
            write!(f, ", gpu: {:.1}", self.gpu_millis as f64 / 1_000.0)?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cores_gib_matches_paper_unit() {
        let unit = ResourceBundle::cores_gib(1, 1);
        assert_eq!(unit.cpu_millicores, 1_000);
        assert_eq!(unit.memory_mib, 1_024);
    }

    #[test]
    fn contains_is_component_wise() {
        let big = ResourceBundle::new(4_000, 12_288, 0);
        assert!(big.contains(&ResourceBundle::new(4_000, 12_288, 0)));
        assert!(!big.contains(&ResourceBundle::new(4_001, 1, 0)));
        assert!(!big.contains(&ResourceBundle::new(1, 1, 1)));
    }

    #[test]
    fn max_bundles_limited_by_scarcest_dimension() {
        let node = ResourceBundle::new(200_000, 300 * 1_024, 0);
        let high = ResourceBundle::cores_gib(4, 12);
        // 200 cores / 4 = 50 actors by CPU; 300 GiB / 12 GiB = 25 by memory.
        assert_eq!(node.max_bundles(&high), 25);
    }

    #[test]
    fn arithmetic_round_trips() {
        let a = ResourceBundle::new(3_000, 2_048, 500);
        let b = ResourceBundle::new(1_000, 1_024, 250);
        assert_eq!(a + b - b, a);
        assert_eq!(b.scaled(3), ResourceBundle::new(3_000, 3_072, 750));
        assert_eq!(b.saturating_sub(&a), ResourceBundle::ZERO);
    }

    #[test]
    fn sum_accumulates() {
        let total: ResourceBundle = (0..4).map(|_| ResourceBundle::cores_gib(1, 1)).sum();
        assert_eq!(total, ResourceBundle::cores_gib(4, 4));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(
            ResourceBundle::cores_gib(1, 1).to_string(),
            "{cpu: 1.0 cores, mem: 1024 MiB}"
        );
        assert!(!format!("{}", ResourceBundle::ZERO).is_empty());
    }
}
