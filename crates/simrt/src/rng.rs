//! Deterministic, named random-number streams.
//!
//! Every stochastic decision in SimDC draws from a stream derived from a
//! single experiment seed and a textual label (`derive_seed(seed,
//! "phone/3/battery")`). Independent subsystems therefore never perturb each
//! other's randomness: adding a draw in one module cannot change another
//! module's sequence, which keeps experiments comparable across code
//! changes.
//!
//! The crate also carries the handful of distribution samplers the platform
//! needs (normal, gamma, beta, poisson) so that no external distribution
//! crate is required.

use rand::{Rng, RngCore, SeedableRng};

/// SplitMix64: a tiny, high-quality 64-bit PRNG used both as a mixing
/// function for seed derivation and as a cheap [`RngCore`].
///
/// Reference: Steele, Lea, Flood — "Fast Splittable Pseudorandom Number
/// Generators" (the same generator used to seed xoshiro family PRNGs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_value(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_value() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.next_value()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_value().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_value().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Derives a child seed from a root seed and a stream label.
///
/// The label is absorbed with FNV-1a, then the combination is finalized with
/// two SplitMix64 rounds so that labels differing in one character yield
/// unrelated seeds.
///
/// ```
/// use simdc_simrt::derive_seed;
/// assert_ne!(derive_seed(42, "a"), derive_seed(42, "b"));
/// assert_ne!(derive_seed(1, "a"), derive_seed(2, "a"));
/// assert_eq!(derive_seed(7, "x/y"), derive_seed(7, "x/y"));
/// ```
#[must_use]
pub fn derive_seed(root: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for byte in label.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    let mut mixer = SplitMix64::new(root ^ hash);
    mixer.next_value();
    mixer.next_value()
}

/// A named random stream.
///
/// Thin wrapper over SplitMix64 with the distribution samplers SimDC needs.
/// Implements [`RngCore`] so it composes with `rand` adapters too.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RngStream {
    inner: SplitMix64,
}

impl RngStream {
    /// Creates the stream identified by `label` under `root_seed`.
    #[must_use]
    pub fn named(root_seed: u64, label: &str) -> Self {
        RngStream {
            inner: SplitMix64::new(derive_seed(root_seed, label)),
        }
    }

    /// Creates a stream directly from a seed (mostly for tests).
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        RngStream {
            inner: SplitMix64::new(seed),
        }
    }

    /// Splits off an independent child stream.
    #[must_use]
    pub fn fork(&mut self, label: &str) -> RngStream {
        let salt = self.inner.next_value();
        RngStream {
            // simlint::allow(T4/seed-provenance): the salt draw *is* the
            // fork mechanism — it advances the parent deterministically, so
            // the child's seed still traces to the experiment seed through
            // the parent's own provenance. Callers see fork results as
            // streams, never as draws.
            inner: SplitMix64::new(derive_seed(salt, label)),
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits → uniform double in [0, 1).
        (self.inner.next_value() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        (self.inner.next_value() % n as u64) as usize
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Exponential draw with the given mean — the inter-arrival sampler
    /// for Poisson processes (the zero-guard keeps `ln` finite).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive, got {mean}"
        );
        -self.uniform().max(f64::MIN_POSITIVE).ln() * mean
    }

    /// Standard normal draw (Box–Muller).
    pub fn std_normal(&mut self) -> f64 {
        // Resample u1 to avoid ln(0).
        let mut u1 = self.uniform();
        while u1 <= f64::MIN_POSITIVE {
            u1 = self.uniform();
        }
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.std_normal()
    }

    /// Gamma draw with shape `k > 0` and scale `theta > 0`
    /// (Marsaglia–Tsang squeeze method).
    ///
    /// # Panics
    ///
    /// Panics if `shape` or `scale` is not positive.
    pub fn gamma(&mut self, shape: f64, scale: f64) -> f64 {
        assert!(
            shape > 0.0 && scale > 0.0,
            "gamma parameters must be positive"
        );
        if shape < 1.0 {
            // Boost: Gamma(k) = Gamma(k+1) * U^(1/k).
            let u = self.uniform().max(f64::MIN_POSITIVE);
            return self.gamma(shape + 1.0, scale) * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.std_normal();
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = self.uniform().max(f64::MIN_POSITIVE);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v * scale;
            }
        }
    }

    /// Beta draw via the two-gamma construction.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not positive.
    pub fn beta(&mut self, alpha: f64, beta: f64) -> f64 {
        let x = self.gamma(alpha, 1.0);
        let y = self.gamma(beta, 1.0);
        x / (x + y)
    }

    /// Poisson draw (Knuth's method for small λ, normal approximation for
    /// λ > 64).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or not finite.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "lambda must be non-negative"
        );
        if lambda == 0.0 {
            return 0;
        }
        if lambda > 64.0 {
            let x = self.normal(lambda, lambda.sqrt());
            return x.max(0.0).round() as u64;
        }
        let limit = (-lambda).exp();
        let mut product = self.uniform();
        let mut count = 0u64;
        while product > limit {
            count += 1;
            product *= self.uniform();
        }
        count
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

impl RngCore for RngStream {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

impl SeedableRng for RngStream {
    type Seed = [u8; 8];
    fn from_seed(seed: Self::Seed) -> Self {
        RngStream::from_seed(u64::from_le_bytes(seed))
    }
    fn seed_from_u64(state: u64) -> Self {
        RngStream::from_seed(state)
    }
}

#[allow(dead_code)]
fn _assert_rng_usable(mut s: RngStream) -> f64 {
    // Compile-time check that rand::Rng methods are available.
    Rng::gen_range(&mut s, 0.0..1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = RngStream::named(42, "test");
        let mut b = RngStream::named(42, "test");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = RngStream::named(42, "alpha");
        let mut b = RngStream::named(42, "beta");
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut root = RngStream::named(1, "root");
        let mut c1 = root.fork("child");
        let mut c2 = root.fork("child"); // second fork advances salt
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = RngStream::from_seed(9);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = RngStream::from_seed(10);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = RngStream::from_seed(11);
        let n = 100_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exp_mean_matches_parameter() {
        let mut rng = RngStream::from_seed(19);
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.exp(2.5)).collect();
        assert!(draws.iter().all(|&x| x >= 0.0 && x.is_finite()));
        let mean = draws.iter().sum::<f64>() / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn gamma_mean_matches_shape_times_scale() {
        let mut rng = RngStream::from_seed(12);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gamma(2.5, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn gamma_small_shape_supported() {
        let mut rng = RngStream::from_seed(13);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gamma(0.5, 1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn beta_stays_in_unit_interval_with_right_mean() {
        let mut rng = RngStream::from_seed(14);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.beta(2.0, 6.0);
            assert!((0.0..=1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}"); // a/(a+b) = 0.25
    }

    #[test]
    fn poisson_mean_matches_lambda() {
        let mut rng = RngStream::from_seed(15);
        for &lambda in &[0.5, 4.0, 30.0, 200.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| rng.poisson(lambda) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.05,
                "lambda {lambda}, mean {mean}"
            );
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = RngStream::from_seed(16);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = RngStream::from_seed(17);
        let mut items: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            items, sorted,
            "shuffle left items in order (astronomically unlikely)"
        );
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = RngStream::from_seed(18);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
