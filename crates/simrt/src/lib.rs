//! Deterministic discrete-event simulation runtime.
//!
//! All SimDC subsystems (logical cluster, phone cluster, DeviceFlow, cloud
//! services) execute on one virtual timeline driven by [`Engine`]. A
//! subsystem defines an event type, the composition root defines a
//! [`World`] whose event enum wraps every subsystem's events, and the engine
//! pops events in `(time, insertion order)` order — which makes every run
//! with the same seed byte-for-byte reproducible.
//!
//! # Examples
//!
//! ```
//! use simdc_simrt::{Engine, EngineCtx, World};
//! use simdc_types::SimDuration;
//!
//! struct Counter { fired: u32 }
//! enum Tick { Once, Chain(u32) }
//!
//! impl World for Counter {
//!     type Event = Tick;
//!     fn handle(&mut self, ctx: &mut EngineCtx<'_, Tick>, event: Tick) {
//!         self.fired += 1;
//!         if let Tick::Chain(n) = event {
//!             if n > 0 {
//!                 ctx.schedule_in(SimDuration::from_secs(1), Tick::Chain(n - 1));
//!             }
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Counter { fired: 0 });
//! engine.schedule_in(SimDuration::ZERO, Tick::Chain(3));
//! engine.schedule_in(SimDuration::from_secs(10), Tick::Once);
//! engine.run();
//! assert_eq!(engine.world().fired, 5);
//! assert_eq!(engine.now().as_secs_f64(), 10.0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod rng;
pub mod series;

pub use engine::{Engine, EngineCtx, EventQueue, World};
pub use rng::{derive_seed, RngStream, SplitMix64};
pub use series::{pearson_correlation, Counter, Histogram, SeriesStats, TimeSeries};
