//! Measurement probes: time series, counters and histograms.
//!
//! Substrates record performance traces (CPU %, memory, dispatch amounts,
//! cumulative message counts) into these containers; experiment harnesses
//! read them back to print the paper's figures.

use serde::{Deserialize, Serialize};
use simdc_types::{SimDuration, SimInstant};

/// An append-only series of `(instant, value)` samples.
///
/// Samples must be appended in non-decreasing time order, which every
/// engine-driven recorder naturally satisfies.
///
/// ```
/// use simdc_simrt::TimeSeries;
/// use simdc_types::SimInstant;
///
/// let mut cpu = TimeSeries::new("cpu_pct");
/// cpu.record(SimInstant::from_micros(0), 4.0);
/// cpu.record(SimInstant::from_micros(1_000_000), 12.5);
/// assert_eq!(cpu.len(), 2);
/// assert_eq!(cpu.stats().max, 12.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    points: Vec<(SimInstant, f64)>,
}

impl TimeSeries {
    /// Creates an empty series with a diagnostic name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the previous sample.
    pub fn record(&mut self, at: SimInstant, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(
                at >= last,
                "time series '{}' must be appended in order ({at} < {last})",
                self.name
            );
        }
        self.points.push((at, value));
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates over `(instant, value)` samples.
    pub fn iter(&self) -> impl Iterator<Item = (SimInstant, f64)> + '_ {
        self.points.iter().copied()
    }

    /// The raw values, time-ordered.
    #[must_use]
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, v)| v).collect()
    }

    /// The most recent sample.
    #[must_use]
    pub fn last(&self) -> Option<(SimInstant, f64)> {
        self.points.last().copied()
    }

    /// Samples within `[from, to)`.
    pub fn window(
        &self,
        from: SimInstant,
        to: SimInstant,
    ) -> impl Iterator<Item = (SimInstant, f64)> + '_ {
        self.points
            .iter()
            .copied()
            .skip_while(move |&(t, _)| t < from)
            .take_while(move |&(t, _)| t < to)
    }

    /// Summary statistics over all samples.
    ///
    /// Returns default (all-zero) stats for an empty series.
    #[must_use]
    pub fn stats(&self) -> SeriesStats {
        SeriesStats::from_values(self.points.iter().map(|&(_, v)| v))
    }

    /// Trapezoidal integral of the series over its time span, in
    /// value·seconds. Used e.g. to turn a current (µA) trace into charge.
    #[must_use]
    pub fn integral(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| {
                let (t0, v0) = w[0];
                let (t1, v1) = w[1];
                let dt = t1.duration_since(t0).as_secs_f64();
                0.5 * (v0 + v1) * dt
            })
            .sum()
    }
}

/// Summary statistics of a collection of samples.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SeriesStats {
    /// Number of samples.
    pub count: usize,
    /// Smallest value (0 if empty).
    pub min: f64,
    /// Largest value (0 if empty).
    pub max: f64,
    /// Arithmetic mean (0 if empty).
    pub mean: f64,
    /// Population standard deviation (0 if empty).
    pub std_dev: f64,
}

impl SeriesStats {
    /// Computes stats from an iterator of values.
    pub fn from_values(values: impl IntoIterator<Item = f64>) -> Self {
        let mut count = 0usize;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for v in values {
            count += 1;
            sum += v;
            sum_sq += v * v;
            min = min.min(v);
            max = max.max(v);
        }
        if count == 0 {
            return SeriesStats::default();
        }
        let mean = sum / count as f64;
        let var = (sum_sq / count as f64 - mean * mean).max(0.0);
        SeriesStats {
            count,
            min,
            max,
            mean,
            std_dev: var.sqrt(),
        }
    }
}

/// Pearson correlation coefficient between two equal-length series.
///
/// Returns 0 when either series is constant (undefined correlation) or the
/// series are empty.
///
/// # Panics
///
/// Panics if the series lengths differ.
#[must_use]
pub fn pearson_correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(
        xs.len(),
        ys.len(),
        "correlation requires equal-length series"
    );
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    let mean_x = xs.iter().sum::<f64>() / nf;
    let mean_y = ys.iter().sum::<f64>() / nf;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x == 0.0 || var_y == 0.0 {
        return 0.0;
    }
    cov / (var_x.sqrt() * var_y.sqrt())
}

/// A monotonically increasing event counter with a time-stamped history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Counter {
    name: String,
    total: u64,
    history: Vec<(SimInstant, u64)>,
}

impl Counter {
    /// Creates a zeroed counter.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Counter {
            name: name.into(),
            total: 0,
            history: Vec::new(),
        }
    }

    /// The counter name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds `n` occurrences at virtual time `at`.
    pub fn add(&mut self, at: SimInstant, n: u64) {
        self.total += n;
        self.history.push((at, self.total));
    }

    /// Increments by one.
    pub fn incr(&mut self, at: SimInstant) {
        self.add(at, 1);
    }

    /// Current total.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The cumulative history as `(instant, running total)` pairs.
    #[must_use]
    pub fn history(&self) -> &[(SimInstant, u64)] {
        &self.history
    }

    /// Total accumulated strictly before `t`.
    #[must_use]
    pub fn total_before(&self, t: SimInstant) -> u64 {
        match self.history.partition_point(|&(at, _)| at < t) {
            0 => 0,
            idx => self.history[idx - 1].1,
        }
    }
}

/// A fixed-width-bucket histogram of durations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    name: String,
    bucket_width: SimDuration,
    buckets: Vec<u64>,
    overflow: u64,
    samples: Vec<f64>,
}

impl Histogram {
    /// Creates a histogram with `bucket_count` buckets of `bucket_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero or `bucket_count` is zero.
    #[must_use]
    pub fn new(name: impl Into<String>, bucket_width: SimDuration, bucket_count: usize) -> Self {
        assert!(!bucket_width.is_zero(), "bucket width must be positive");
        assert!(bucket_count > 0, "need at least one bucket");
        Histogram {
            name: name.into(),
            bucket_width,
            buckets: vec![0; bucket_count],
            overflow: 0,
            samples: Vec::new(),
        }
    }

    /// Records a duration sample.
    pub fn record(&mut self, d: SimDuration) {
        let idx = (d.as_micros() / self.bucket_width.as_micros()) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.samples.push(d.as_secs_f64());
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.overflow
    }

    /// Samples that fell past the last bucket.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Bucket counts (index `i` covers `[i·w, (i+1)·w)`).
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// The `q`-quantile of recorded samples in seconds (nearest-rank).
    ///
    /// Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_secs(secs)
    }

    #[test]
    fn series_records_in_order() {
        let mut s = TimeSeries::new("x");
        s.record(t(1), 1.0);
        s.record(t(1), 2.0); // equal timestamps allowed
        s.record(t(2), 3.0);
        assert_eq!(s.values(), vec![1.0, 2.0, 3.0]);
        assert_eq!(s.last(), Some((t(2), 3.0)));
    }

    #[test]
    #[should_panic(expected = "appended in order")]
    fn series_rejects_out_of_order() {
        let mut s = TimeSeries::new("x");
        s.record(t(5), 1.0);
        s.record(t(4), 2.0);
    }

    #[test]
    fn series_window_is_half_open() {
        let mut s = TimeSeries::new("x");
        for i in 0..10 {
            s.record(t(i), i as f64);
        }
        let vals: Vec<f64> = s.window(t(2), t(5)).map(|(_, v)| v).collect();
        assert_eq!(vals, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn series_stats() {
        let mut s = TimeSeries::new("x");
        for (i, v) in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().enumerate() {
            s.record(t(i as u64), *v);
        }
        let st = s.stats();
        assert_eq!(st.count, 8);
        assert_eq!(st.mean, 5.0);
        assert_eq!(st.std_dev, 2.0);
        assert_eq!(st.min, 2.0);
        assert_eq!(st.max, 9.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let st = TimeSeries::new("x").stats();
        assert_eq!(st.count, 0);
        assert_eq!(st.mean, 0.0);
    }

    #[test]
    fn integral_is_trapezoidal() {
        let mut s = TimeSeries::new("current");
        s.record(t(0), 0.0);
        s.record(t(2), 2.0); // area 2
        s.record(t(4), 2.0); // area 4
        assert_eq!(s.integral(), 6.0);
    }

    #[test]
    fn counter_tracks_cumulative_history() {
        let mut c = Counter::new("msgs");
        c.add(t(1), 10);
        c.incr(t(2));
        c.add(t(3), 5);
        assert_eq!(c.total(), 16);
        assert_eq!(c.total_before(t(2)), 10);
        assert_eq!(c.total_before(t(100)), 16);
        assert_eq!(c.total_before(t(0)), 0);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new("lat", SimDuration::from_secs(1), 5);
        for secs in [0, 1, 1, 2, 9] {
            h.record(SimDuration::from_secs(secs));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.buckets(), &[1, 2, 1, 0, 0]);
        assert_eq!(h.quantile(0.5), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(9.0));
        assert_eq!(h.quantile(0.0), Some(0.0));
    }

    #[test]
    fn histogram_empty_quantile_is_none() {
        let h = Histogram::new("lat", SimDuration::from_secs(1), 2);
        assert_eq!(h.quantile(0.5), None);
    }
}
