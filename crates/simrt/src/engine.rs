//! The event loop: virtual clock + priority queue of pending events.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use simdc_types::{SimDuration, SimInstant};

/// A simulation world: the mutable state acted upon by events.
///
/// Composition roots typically define one enum wrapping every subsystem's
/// events and implement `World` by delegating to subsystem state machines.
pub trait World: Sized {
    /// The event alphabet of this world.
    type Event;

    /// Reacts to `event` occurring at `ctx.now()`, possibly scheduling
    /// follow-up events through `ctx`.
    fn handle(&mut self, ctx: &mut EngineCtx<'_, Self::Event>, event: Self::Event);
}

/// Handle given to [`World::handle`] for reading the clock and scheduling
/// follow-up events.
#[derive(Debug)]
pub struct EngineCtx<'a, E> {
    now: SimInstant,
    queue: &'a mut EventQueue<E>,
}

impl<E> EngineCtx<'_, E> {
    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedules `event` at an absolute instant.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — time travel would break determinism.
    pub fn schedule_at(&mut self, at: SimInstant, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past ({at} < {})",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Number of events currently pending.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// The discrete-event engine owning the clock, the queue and the world.
#[derive(Debug)]
pub struct Engine<W: World> {
    clock: SimInstant,
    queue: EventQueue<W::Event>,
    world: W,
    executed: u64,
}

impl<W: World> Engine<W> {
    /// Creates an engine at [`SimInstant::EPOCH`] with an empty queue.
    pub fn new(world: W) -> Self {
        Engine {
            clock: SimInstant::EPOCH,
            queue: EventQueue::new(),
            world,
            executed: 0,
        }
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimInstant {
        self.clock
    }

    /// Total number of events executed so far.
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Shared access to the world state.
    #[must_use]
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world state (between steps).
    #[must_use]
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the engine, returning the world.
    #[must_use]
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: W::Event) {
        self.queue.push(self.clock + delay, event);
    }

    /// Schedules an event at an absolute instant.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time.
    pub fn schedule_at(&mut self, at: SimInstant, event: W::Event) {
        assert!(
            at >= self.clock,
            "cannot schedule event in the past ({at} < {})",
            self.clock
        );
        self.queue.push(at, event);
    }

    /// Number of pending events.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Timestamp of the next pending event, if any.
    #[must_use]
    pub fn next_event_at(&self) -> Option<SimInstant> {
        self.queue.peek_time()
    }

    /// Executes the next event, advancing the clock to its timestamp.
    ///
    /// Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        let Some((at, event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.clock, "event queue returned a past event");
        self.clock = at;
        self.executed += 1;
        let mut ctx = EngineCtx {
            now: self.clock,
            queue: &mut self.queue,
        };
        self.world.handle(&mut ctx, event);
        true
    }

    /// Runs until the queue drains. Returns the number of events executed.
    pub fn run(&mut self) -> u64 {
        let start = self.executed;
        while self.step() {}
        self.executed - start
    }

    /// Runs every event scheduled at or before `deadline`, then advances the
    /// clock to `deadline`. Returns the number of events executed.
    ///
    /// Events scheduled after `deadline` stay queued.
    pub fn run_until(&mut self, deadline: SimInstant) -> u64 {
        let start = self.executed;
        while let Some(at) = self.queue.peek_time() {
            if at > deadline {
                break;
            }
            self.step();
        }
        if deadline > self.clock {
            self.clock = deadline;
        }
        self.executed - start
    }

    /// Runs at most `limit` events (a watchdog for tests guarding against
    /// runaway self-scheduling). Returns the number executed.
    pub fn run_steps(&mut self, limit: u64) -> u64 {
        let start = self.executed;
        while self.executed - start < limit && self.step() {}
        self.executed - start
    }
}

/// Priority queue ordered by `(time, insertion sequence)`.
///
/// The sequence number guarantees FIFO order among simultaneous events,
/// which is what makes runs deterministic. Public so that schedulers built
/// on top of the engine (and the property-test suite) can exercise the
/// ordering contract directly.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Enqueues `event` at instant `at`.
    pub fn push(&mut self, at: SimInstant, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Enqueues a batch of events in the given order: element `i` receives
    /// sequence number `seq + i`, exactly as if each had been pushed
    /// individually. The merge step of parallel planning uses this to
    /// commit worker results in admission order, so a threaded run
    /// assigns the same `(time, seq)` pairs a sequential run would.
    pub fn push_batch(&mut self, events: impl IntoIterator<Item = (SimInstant, E)>) {
        for (at, event) in events {
            self.push(at, event);
        }
    }

    /// Pops the earliest `(time, insertion order)` event.
    pub fn pop(&mut self) -> Option<(SimInstant, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Pops the earliest event only if it is due at or before `deadline`;
    /// later events stay queued. Drivers that interleave an internal event
    /// stream with an external one (e.g. task completions vs. workload
    /// arrivals) use this to drain everything due before the next external
    /// instant.
    pub fn pop_before(&mut self, deadline: SimInstant) -> Option<(SimInstant, E)> {
        if self.peek_time()? > deadline {
            return None;
        }
        self.pop()
    }

    /// Timestamp of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimInstant> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

struct Entry<E> {
    at: SimInstant,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> std::fmt::Debug for Entry<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Entry")
            .field("at", &self.at)
            .field("seq", &self.seq)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        log: Vec<(u64, &'static str)>,
    }

    enum Ev {
        Mark(&'static str),
        Fanout,
    }

    impl World for Recorder {
        type Event = Ev;
        fn handle(&mut self, ctx: &mut EngineCtx<'_, Ev>, event: Ev) {
            match event {
                Ev::Mark(name) => self.log.push((ctx.now().as_micros(), name)),
                Ev::Fanout => {
                    ctx.schedule_in(SimDuration::from_micros(5), Ev::Mark("late"));
                    ctx.schedule_in(SimDuration::ZERO, Ev::Mark("now"));
                }
            }
        }
    }

    fn engine() -> Engine<Recorder> {
        Engine::new(Recorder { log: Vec::new() })
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut eng = engine();
        eng.schedule_in(SimDuration::from_micros(30), Ev::Mark("c"));
        eng.schedule_in(SimDuration::from_micros(10), Ev::Mark("a"));
        eng.schedule_in(SimDuration::from_micros(20), Ev::Mark("b"));
        assert_eq!(eng.run(), 3);
        assert_eq!(eng.world().log, vec![(10, "a"), (20, "b"), (30, "c")]);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut eng = engine();
        eng.schedule_in(SimDuration::from_micros(7), Ev::Mark("first"));
        eng.schedule_in(SimDuration::from_micros(7), Ev::Mark("second"));
        eng.schedule_in(SimDuration::from_micros(7), Ev::Mark("third"));
        eng.run();
        let names: Vec<_> = eng.world().log.iter().map(|(_, n)| *n).collect();
        assert_eq!(names, vec!["first", "second", "third"]);
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut eng = engine();
        eng.schedule_in(SimDuration::from_micros(1), Ev::Fanout);
        eng.run();
        assert_eq!(eng.world().log, vec![(1, "now"), (6, "late")]);
    }

    #[test]
    fn run_until_leaves_future_events_queued() {
        let mut eng = engine();
        eng.schedule_in(SimDuration::from_micros(5), Ev::Mark("early"));
        eng.schedule_in(SimDuration::from_micros(50), Ev::Mark("late"));
        let n = eng.run_until(SimInstant::from_micros(10));
        assert_eq!(n, 1);
        assert_eq!(eng.now(), SimInstant::from_micros(10));
        assert_eq!(eng.pending(), 1);
        eng.run();
        assert_eq!(eng.world().log.len(), 2);
    }

    #[test]
    fn run_until_advances_clock_even_without_events() {
        let mut eng = engine();
        eng.run_until(SimInstant::from_micros(99));
        assert_eq!(eng.now(), SimInstant::from_micros(99));
    }

    #[test]
    fn run_steps_bounds_execution() {
        struct Loopy;
        impl World for Loopy {
            type Event = ();
            fn handle(&mut self, ctx: &mut EngineCtx<'_, ()>, (): ()) {
                ctx.schedule_in(SimDuration::from_micros(1), ());
            }
        }
        let mut eng = Engine::new(Loopy);
        eng.schedule_in(SimDuration::ZERO, ());
        assert_eq!(eng.run_steps(100), 100);
        assert_eq!(eng.pending(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut eng = engine();
        eng.schedule_in(SimDuration::from_micros(10), Ev::Mark("x"));
        eng.run();
        eng.schedule_at(SimInstant::from_micros(5), Ev::Mark("y"));
    }

    /// The boundary the platform's arrival sync leans on: an event due
    /// at *exactly* the deadline is admitted — `pop_before` is `<=`, not
    /// `<`. A task completing at the same instant a new task arrives must
    /// release its lease before the arrival's scheduling pass, or the
    /// freed capacity is invisible and the tie resolves wrongly.
    #[test]
    fn pop_before_admits_at_exactly_the_deadline() {
        let mut q: EventQueue<&'static str> = EventQueue::new();
        q.push(SimInstant::from_micros(10), "due");
        q.push(SimInstant::from_micros(11), "later");
        assert_eq!(
            q.pop_before(SimInstant::from_micros(10)),
            Some((SimInstant::from_micros(10), "due"))
        );
        assert_eq!(q.pop_before(SimInstant::from_micros(10)), None);
        assert_eq!(q.len(), 1, "the later event stays queued");
    }

    /// Batched pushes get consecutive sequence numbers in element order,
    /// so a batch of simultaneous events pops in exactly the order the
    /// batch listed them — interleaved FIFO with singly-pushed ties.
    #[test]
    fn push_batch_preserves_fifo_among_ties() {
        let t = SimInstant::from_micros(5);
        let mut q: EventQueue<&'static str> = EventQueue::new();
        q.push(t, "first");
        q.push_batch([
            (t, "batch-a"),
            (SimInstant::from_micros(3), "early"),
            (t, "batch-b"),
        ]);
        q.push(t, "last");
        let mut order = Vec::new();
        while let Some((_, e)) = q.pop() {
            order.push(e);
        }
        assert_eq!(order, vec!["early", "first", "batch-a", "batch-b", "last"]);
    }

    #[test]
    fn pop_before_respects_the_deadline() {
        let mut q: EventQueue<&'static str> = EventQueue::new();
        q.push(SimInstant::from_micros(5), "early");
        q.push(SimInstant::from_micros(5), "tie");
        q.push(SimInstant::from_micros(50), "late");
        assert_eq!(
            q.pop_before(SimInstant::from_micros(10)),
            Some((SimInstant::from_micros(5), "early"))
        );
        assert_eq!(
            q.pop_before(SimInstant::from_micros(10)),
            Some((SimInstant::from_micros(5), "tie"))
        );
        assert_eq!(q.pop_before(SimInstant::from_micros(10)), None);
        assert_eq!(q.len(), 1, "late event stays queued");
        assert_eq!(
            q.pop_before(SimInstant::from_micros(50)),
            Some((SimInstant::from_micros(50), "late"))
        );
        assert_eq!(q.pop_before(SimInstant::from_micros(99)), None);
    }

    #[test]
    fn step_returns_false_when_empty() {
        let mut eng = engine();
        assert!(!eng.step());
        assert_eq!(eng.executed(), 0);
    }
}
