//! Property tests for the deterministic event engine.
//!
//! These pin the three contracts every SimDC subsystem leans on:
//!
//! 1. [`EventQueue`] pops events in non-decreasing time order, whatever
//!    order they were pushed in;
//! 2. events scheduled at the same instant pop in FIFO (insertion) order;
//! 3. an [`Engine`] run seeded the same way twice produces byte-identical
//!    event traces, including follow-up events scheduled from handlers.

use proptest::prelude::*;
use simdc_simrt::{derive_seed, Engine, EngineCtx, EventQueue, RngStream, World};
use simdc_types::{SimDuration, SimInstant};

fn times() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..500, 1..64)
}

proptest! {
    #[test]
    fn queue_pops_in_nondecreasing_time_order(micros in times()) {
        let mut queue = EventQueue::new();
        for (i, &t) in micros.iter().enumerate() {
            queue.push(SimInstant::from_micros(t), i);
        }
        prop_assert_eq!(queue.len(), micros.len());
        let mut last = SimInstant::EPOCH;
        let mut popped = 0usize;
        while let Some((at, _)) = queue.pop() {
            prop_assert!(at >= last, "event at {} popped after {}", at, last);
            last = at;
            popped += 1;
        }
        prop_assert_eq!(popped, micros.len());
        prop_assert!(queue.is_empty());
    }

    #[test]
    fn queue_breaks_time_ties_fifo(micros in times()) {
        // Collapse every draw onto few distinct instants to force ties.
        let mut queue = EventQueue::new();
        for (i, &t) in micros.iter().enumerate() {
            queue.push(SimInstant::from_micros(t % 4), i);
        }
        let mut last: Option<(SimInstant, usize)> = None;
        while let Some((at, payload)) = queue.pop() {
            if let Some((prev_at, prev_payload)) = last {
                prop_assert!(at >= prev_at);
                if at == prev_at {
                    prop_assert!(
                        payload > prev_payload,
                        "tie at {} popped {} before {}",
                        at,
                        prev_payload,
                        payload
                    );
                }
            }
            last = Some((at, payload));
        }
    }

    #[test]
    fn queue_matches_stable_sort_reference(micros in times()) {
        // The queue's full output must equal a stable sort by time of the
        // insertion sequence — the strongest statement of both properties.
        let mut queue = EventQueue::new();
        let mut reference: Vec<(u64, usize)> = Vec::new();
        for (i, &t) in micros.iter().enumerate() {
            queue.push(SimInstant::from_micros(t), i);
            reference.push((t, i));
        }
        reference.sort_by_key(|&(t, _)| t); // sort_by_key is stable
        let mut popped = Vec::new();
        while let Some((at, payload)) = queue.pop() {
            popped.push((at.as_micros(), payload));
        }
        prop_assert_eq!(popped, reference);
    }

    #[test]
    fn same_seed_engine_runs_produce_identical_traces(
        seed in 0u64..1_000_000,
        initial in proptest::collection::vec((0u64..200, 0u32..8), 1..24),
    ) {
        let run = |seed: u64| -> Vec<(u64, u32)> {
            let mut engine = Engine::new(Chaotic::new(seed));
            for &(t, tag) in &initial {
                engine.schedule_in(SimDuration::from_micros(t), tag);
            }
            // Watchdog bound: each event spawns at most one follow-up with
            // decreasing fuel, so the run always terminates well below it.
            engine.run_steps(10_000);
            engine.into_world().trace
        };
        let a = run(seed);
        let b = run(seed);
        prop_assert_eq!(a, b);
    }
}

/// A world whose handlers draw from a named RNG stream and schedule
/// follow-up events — the same shape as a real scenario world, so the
/// determinism property covers handler-scheduled events too.
struct Chaotic {
    rng: RngStream,
    fuel: u32,
    trace: Vec<(u64, u32)>,
}

impl Chaotic {
    fn new(seed: u64) -> Self {
        Chaotic {
            rng: RngStream::from_seed(derive_seed(seed, "proptest/chaotic")),
            fuel: 64,
            trace: Vec::new(),
        }
    }
}

impl World for Chaotic {
    type Event = u32;
    fn handle(&mut self, ctx: &mut EngineCtx<'_, u32>, tag: u32) {
        self.trace.push((ctx.now().as_micros(), tag));
        if self.fuel > 0 && self.rng.chance(0.5) {
            self.fuel -= 1;
            let delay = SimDuration::from_micros(self.rng.index(50) as u64);
            ctx.schedule_in(delay, tag.wrapping_add(1));
        }
    }
}
