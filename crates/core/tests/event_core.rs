//! Integration tests for the event-driven platform core.
//!
//! The wave-based loop made a task arriving mid-run wait for the whole
//! admission wave to drain; the event core admits it at the first
//! completion instant that frees its claim. These tests pin that
//! behaviour down, and property-test the freeze/release pairing invariant
//! (free capacity equals total capacity whenever the platform is idle)
//! across random schedules.

// Reviewed interior-mutability exception (clippy mirror of simlint P2):
// test-only memoisation of a deterministic dataset — the cell's content
// is a pure function of its fixed seed, so init order cannot matter.
#[allow(clippy::disallowed_types)]
use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use simdc_core::{
    AggregationTrigger, GradeRequirement, Platform, PlatformConfig, SubmissionSource, TaskSpec,
    TaskState,
};
use simdc_data::{CtrDataset, GeneratorConfig};
use simdc_types::{DeviceGrade, PerGrade, SimDuration, SimInstant, TaskId};

#[allow(clippy::disallowed_types)] // reviewed: see the `OnceLock` import
fn dataset() -> Arc<CtrDataset> {
    static DATA: OnceLock<Arc<CtrDataset>> = OnceLock::new();
    DATA.get_or_init(|| {
        Arc::new(CtrDataset::generate(&GeneratorConfig {
            n_devices: 24,
            n_test_devices: 6,
            mean_records_per_device: 10.0,
            feature_dim: 1 << 10,
            seed: 4242,
            ..GeneratorConfig::default()
        }))
    })
    .clone()
}

/// A purely logical (no phones) spec: `bundles` gates concurrency,
/// `rounds` stretches the virtual run time.
fn logical_spec(id: u64, bundles: u64, rounds: u32, priority: u32) -> TaskSpec {
    TaskSpec::builder(TaskId(id))
        .priority(priority)
        .rounds(rounds)
        .grade(GradeRequirement {
            grade: DeviceGrade::High,
            total_devices: 8,
            benchmark_phones: 0,
            logical_unit_bundles: bundles,
            units_per_device: 8,
            phones: 0,
        })
        .trigger(AggregationTrigger::DeviceThreshold { min_devices: 8 })
        .seed(id)
        .build()
        .unwrap()
}

struct Timed {
    items: std::vec::IntoIter<(SimInstant, TaskSpec, Arc<CtrDataset>)>,
}

impl SubmissionSource for Timed {
    fn next_submission(&mut self) -> Option<(SimInstant, TaskSpec, Arc<CtrDataset>)> {
        self.items.next()
    }
}

fn completed_span(platform: &Platform, id: u64) -> (SimInstant, SimInstant) {
    match platform.task_state(TaskId(id)) {
        Some(TaskState::Completed {
            started_at,
            finished_at,
        }) => (*started_at, *finished_at),
        other => panic!("task {id} not completed: {other:?}"),
    }
}

/// The acceptance-criterion regression: a submission arriving while a
/// long task runs is admitted at the first completion that frees its
/// claim — strictly before the long task finishes — not at wave end.
#[test]
fn mid_run_arrival_starts_at_first_freeing_completion() {
    let data = dataset();
    let t = |secs: u64| SimInstant::EPOCH + SimDuration::from_secs(secs);
    // 200-bundle platform: long (120) and short (80) run concurrently
    // from t=0; the late task (80) arriving at t=1 fits only once the
    // short task's bundles come back.
    let long = logical_spec(1, 120, 5, 0);
    let short = logical_spec(2, 80, 1, 0);
    let late = logical_spec(3, 80, 1, 0);
    let mut source = Timed {
        items: vec![
            (t(0), long, data.clone()),
            (t(0), short, data.clone()),
            (t(1), late, data.clone()),
        ]
        .into_iter(),
    };
    let mut platform = Platform::new(PlatformConfig::default());
    let stats = platform.run_from_source(&mut source);
    assert_eq!(stats.submitted, 3);
    assert_eq!(stats.completed, 3);

    let (long_start, long_finish) = completed_span(&platform, 1);
    let (short_start, short_finish) = completed_span(&platform, 2);
    let (late_start, late_finish) = completed_span(&platform, 3);
    assert_eq!(long_start, t(0));
    assert_eq!(short_start, t(0));
    assert!(
        short_finish < long_finish,
        "1-round task must finish before the 5-round task"
    );
    // The heart of the matter: admission happens at the completion
    // instant that freed the claim, while the long task is still running.
    assert_eq!(
        late_start, short_finish,
        "late task must start the instant the short task's lease releases"
    );
    assert!(
        late_start < long_finish,
        "late task must not wait for the long task (wave barrier is gone)"
    );
    assert!(late_finish >= late_start);

    // Idle platform ⇒ every freeze was paired with a release.
    let status = platform.status();
    assert_eq!(status.free_bundles, 200);
    assert_eq!(status.pending, 0);
    assert_eq!(status.running, 0);
}

/// Same-instant arrivals are admitted in one scheduler pass: priority
/// order, not source order.
#[test]
fn simultaneous_arrivals_admit_by_priority() {
    let data = dataset();
    let t0 = SimInstant::EPOCH;
    // Only one of the two 150-bundle tasks fits; the higher-priority one
    // (submitted second) must win the pass.
    let low = logical_spec(1, 150, 1, 1);
    let high = logical_spec(2, 150, 1, 9);
    let mut source = Timed {
        items: vec![(t0, low, data.clone()), (t0, high, data.clone())].into_iter(),
    };
    let mut platform = Platform::new(PlatformConfig::default());
    let stats = platform.run_from_source(&mut source);
    assert_eq!(stats.completed, 2);
    let (high_start, high_finish) = completed_span(&platform, 2);
    let (low_start, _) = completed_span(&platform, 1);
    assert_eq!(high_start, t0, "high priority admitted first");
    assert_eq!(low_start, high_finish, "low priority waits for the lease");
}

/// `run_until` never runs ahead of the deadline: completions planned
/// later stay queued, and the clock lands exactly on the deadline.
#[test]
fn run_until_respects_the_deadline() {
    let data = dataset();
    let mut platform = Platform::new(PlatformConfig::default());
    platform.submit(logical_spec(1, 120, 3, 0), data).unwrap();
    let completed = platform.run_until(SimInstant::EPOCH + SimDuration::from_secs(1));
    assert_eq!(completed, 0, "task admitted but its completion is later");
    let status = platform.status();
    assert_eq!(status.now, SimInstant::EPOCH + SimDuration::from_secs(1));
    assert_eq!(status.running, 1);
    assert!(status.free_bundles < 200, "lease held while running");
    // Admission happened at the submission-time clock, not quantized to
    // the deadline.
    match platform.task_state(TaskId(1)) {
        Some(TaskState::Running { started_at }) => assert_eq!(*started_at, SimInstant::EPOCH),
        other => panic!("task not running: {other:?}"),
    }
    // Draining finishes the task and returns every resource.
    assert_eq!(platform.run_until_idle(), 1);
    assert_eq!(platform.status().free_bundles, 200);
}

/// A high-priority task arriving at *exactly* a completion instant must
/// win that instant's capacity over a lower-priority task already
/// pending: the lease releases first, but admission waits for the
/// arrival, so one scheduler pass sees both and priority decides.
#[test]
fn arrival_at_completion_instant_beats_pending_lower_priority() {
    let data = dataset();
    let t = |secs: u64| SimInstant::EPOCH + SimDuration::from_secs(secs);
    // Dry run to learn when the 200-bundle task finishes.
    let mut probe = Platform::new(PlatformConfig::default());
    probe
        .submit(logical_spec(1, 200, 1, 0), data.clone())
        .unwrap();
    probe.run_until_idle();
    let (_, first_finish) = completed_span(&probe, 1);
    assert!(first_finish > t(1));

    // Real run: the blocker, a pending low-priority task, and a
    // high-priority task arriving exactly when the blocker completes.
    let mut source = Timed {
        items: vec![
            (t(0), logical_spec(1, 200, 1, 0), data.clone()),
            (t(1), logical_spec(2, 200, 1, 1), data.clone()),
            (first_finish, logical_spec(3, 200, 1, 9), data.clone()),
        ]
        .into_iter(),
    };
    let mut platform = Platform::new(PlatformConfig::default());
    let stats = platform.run_from_source(&mut source);
    assert_eq!(stats.completed, 3);
    let (high_start, high_finish) = completed_span(&platform, 3);
    let (low_start, _) = completed_span(&platform, 2);
    assert_eq!(
        high_start, first_finish,
        "high priority takes the freed capacity at the tie instant"
    );
    assert_eq!(low_start, high_finish, "low priority waits its turn");
}

/// Phones registered through `phones_mut` mid-run become schedulable at
/// the next completion-triggered pass, not only at the next submission:
/// dispatch resyncs fleet totals every pass.
#[test]
fn fleet_growth_is_visible_to_completion_triggered_passes() {
    use simdc_phone::{PhoneDevice, Provenance};
    let data = dataset();
    let t = |secs: u64| SimInstant::EPOCH + SimDuration::from_secs(secs);
    let mut platform = Platform::new(PlatformConfig::default());
    let high_total = platform.phones().count(DeviceGrade::High, None) as u64;

    // Task 1 computes on every High phone for several rounds.
    let all_phones = TaskSpec::builder(TaskId(1))
        .rounds(4)
        .grade(GradeRequirement {
            grade: DeviceGrade::High,
            total_devices: 8,
            benchmark_phones: 0,
            logical_unit_bundles: 20,
            units_per_device: 8,
            phones: high_total,
        })
        .trigger(AggregationTrigger::DeviceThreshold { min_devices: 8 })
        .seed(1)
        .build()
        .unwrap();
    // Task 2 needs 5 High phones — pending until capacity appears.
    let needs_five = TaskSpec::builder(TaskId(2))
        .rounds(1)
        .grade(GradeRequirement {
            grade: DeviceGrade::High,
            total_devices: 8,
            benchmark_phones: 0,
            logical_unit_bundles: 20,
            units_per_device: 8,
            phones: 5,
        })
        .trigger(AggregationTrigger::DeviceThreshold { min_devices: 8 })
        .seed(2)
        .build()
        .unwrap();
    platform.submit(all_phones, data.clone()).unwrap();
    platform.submit(needs_five, data).unwrap();
    platform.run_until(t(1));
    assert_eq!(platform.status().running, 1, "no phones free for task 2");
    assert_eq!(platform.status().pending, 1);

    // Grow the fleet mid-run; no further submission happens.
    for i in 0..5u64 {
        platform
            .phones_mut()
            .register(PhoneDevice::new(
                simdc_types::PhoneId(900 + i as u32),
                "late-addition",
                DeviceGrade::High,
                Provenance::Local,
                77,
            ))
            .unwrap();
    }
    platform.run_until(t(2));
    assert_eq!(
        platform.status().running,
        2,
        "task 2 admitted on the new phones while task 1 still runs"
    );
    assert_eq!(platform.run_until_idle(), 2);
    // Idle again: free capacity must equal the *grown* totals.
    let status = platform.status();
    assert_eq!(*status.free_phones.get(DeviceGrade::High), high_total + 5);
}

/// A benchmark phone that crashes *and reboots* mid-run (reboot wipes its
/// assigned run) must not fail the task at commit: training already
/// completed, so the task completes with that measurement missing.
#[test]
fn rebooted_benchmark_phone_degrades_to_a_missing_report() {
    let data = dataset();
    let mut spec = logical_spec(1, 80, 2, 0);
    spec.grades[0].benchmark_phones = 1;
    let mut platform = Platform::new(PlatformConfig::default());
    platform.submit(spec, data).unwrap();
    // Start the task, then crash + reboot every phone while it runs.
    platform.run_until(SimInstant::EPOCH + SimDuration::from_secs(1));
    assert_eq!(platform.status().running, 1);
    let mid = SimInstant::EPOCH + SimDuration::from_secs(2);
    let ids: Vec<_> = platform.phones().phones().iter().map(|p| p.id()).collect();
    for id in ids {
        let phone = platform.phones_mut().phone_mut(id).unwrap();
        if !phone.is_crashed(mid) {
            phone.inject_crash(mid);
        }
        phone.reboot();
    }
    assert_eq!(platform.run_until_idle(), 1, "task must still complete");
    assert!(matches!(
        platform.task_state(TaskId(1)),
        Some(TaskState::Completed { .. })
    ));
    let report = platform.report(TaskId(1)).unwrap();
    assert!(
        report.benchmark_reports.is_empty(),
        "wiped run yields no report, not a failure"
    );
    assert_eq!(platform.status().free_bundles, 200, "lease released");
}

proptest! {
    /// Freeze/release pairing across random schedules: whatever mix of
    /// concurrent, queued, rejected and plan-failed tasks a schedule
    /// produces, an idle platform always ends with free capacity equal to
    /// total capacity and no lease outstanding. (The platform's own
    /// debug assertion checks the same invariant at every idle point;
    /// running under `cargo test` keeps it armed.)
    #[test]
    fn freeze_release_pairing_holds_for_random_schedules(
        tasks in proptest::collection::vec(
            (
                10u64..260,   // bundles: some won't ever fit (260 > 200 capacity)
                1u32..3,      // rounds
                0u32..10,     // priority
                0u64..120,    // arrival offset seconds
                0u64..3,      // benchmark phones (may fail planning under contention)
            ),
            1..7,
        )
    ) {
        let data = dataset();
        let mut items: Vec<(SimInstant, TaskSpec, Arc<CtrDataset>)> = tasks
            .iter()
            .enumerate()
            .map(|(i, &(bundles, rounds, priority, offset, bench))| {
                let spec = TaskSpec::builder(TaskId(i as u64 + 1))
                    .priority(priority)
                    .rounds(rounds)
                    .grade(GradeRequirement {
                        grade: DeviceGrade::High,
                        total_devices: 8,
                        benchmark_phones: bench,
                        logical_unit_bundles: bundles,
                        units_per_device: 8,
                        phones: 0,
                    })
                    .trigger(AggregationTrigger::DeviceThreshold { min_devices: 8 })
                    .seed(i as u64)
                    .build()
                    .unwrap();
                (
                    SimInstant::EPOCH + SimDuration::from_secs(offset),
                    spec,
                    data.clone(),
                )
            })
            .collect();
        items.sort_by_key(|(at, spec, _)| (*at, spec.id));
        let total = items.len();
        let mut source = Timed { items: items.into_iter() };

        let mut platform = Platform::new(PlatformConfig::default());
        let stats = platform.run_from_source(&mut source);
        prop_assert_eq!(stats.submitted + stats.rejected, total);

        let status = platform.status();
        prop_assert_eq!(status.pending, 0);
        prop_assert_eq!(status.running, 0);
        // With the elastic tier, an idle platform's capacity equals the
        // cluster's *ready* capacity (scale-ups for big tasks may not
        // have drained back yet if the scale-in cooldown is running) —
        // the leak invariant is free == total, never less.
        prop_assert_eq!(
            status.free_bundles,
            platform.cluster().ready_unit_capacity(),
            "bundle lease leaked"
        );
        prop_assert!(status.free_bundles >= 200, "scale-in went below the floor");
        let fleet_totals =
            PerGrade::from_fn(|g| platform.phones().count(g, None) as u64);
        prop_assert_eq!(status.free_phones, fleet_totals, "phone lease leaked");
    }
}
