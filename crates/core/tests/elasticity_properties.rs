//! Property tests of the elastic-tier accounting: however the node pool
//! is scaled up, drained, retired and advanced — interleaved with
//! Resource Manager freezes and releases resynced against the pool's
//! ready capacity — free capacity never exceeds total capacity, at
//! either layer.
//!
//! This is the lease-vs-lifecycle contract the platform relies on:
//! [`ResourceManager::set_total_bundles`] derives free from the
//! outstanding leases (`free = total − frozen`, saturating), so a
//! scale-in below the frozen amount followed by a later scale-out can
//! never mint capacity a lease already owns.

use proptest::prelude::*;
use simdc_cluster::NodePool;
use simdc_core::{ResourceClaim, ResourceManager};
use simdc_types::{PerGrade, ResourceBundle, SimDuration, SimInstant, TaskId};

/// One step of the random schedule.
#[derive(Debug, Clone)]
enum Op {
    /// Freeze a lease of this many unit bundles (may be refused).
    Freeze(u64),
    /// Release the lease at this index (modulo the live set).
    Release(usize),
    /// Boot this many nodes (capacity invisible until the boot elapses).
    ScaleUp(usize),
    /// Drain this many nodes (retire once idle).
    Drain(usize),
    /// Reclaim this many draining nodes.
    CancelDrain(usize),
    /// Advance virtual time by this many seconds (boots complete, idle
    /// draining nodes retire).
    Advance(u64),
    /// Immediate administrative scale-down to this many nodes.
    ScaleDown(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..250).prop_map(Op::Freeze),
        (0usize..8).prop_map(Op::Release),
        (0usize..5).prop_map(Op::ScaleUp),
        (0usize..5).prop_map(Op::Drain),
        (0usize..5).prop_map(Op::CancelDrain),
        (0u64..120).prop_map(Op::Advance),
        (0usize..10).prop_map(Op::ScaleDown),
    ]
}

const BOOT: SimDuration = SimDuration::from_secs(45);

proptest! {
    /// `free <= total` at both layers, and `free = total − frozen`
    /// exactly, across arbitrary interleavings of lease traffic and node
    /// lifecycle events.
    #[test]
    fn free_never_exceeds_total_over_random_elastic_schedules(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        let unit = ResourceBundle::cores_gib(1, 1);
        // 50-unit nodes, 4 initial, elastic to 16 — the paper platform.
        let mut pool = NodePool::new(ResourceBundle::cores_gib(50, 75), 4, 16);
        let mut rm = ResourceManager::new(pool.unit_capacity(&unit), PerGrade::new(10u64));
        let mut now = SimInstant::EPOCH;
        let mut live: Vec<TaskId> = Vec::new();
        let mut frozen: u64 = 0;
        let mut next_task = 0u64;

        for op in ops {
            match op {
                Op::Freeze(bundles) => {
                    let id = TaskId(next_task);
                    next_task += 1;
                    let claim = ResourceClaim {
                        unit_bundles: bundles,
                        phones: PerGrade::new(0),
                    };
                    if rm.freeze(id, claim).is_ok() {
                        live.push(id);
                        frozen += bundles;
                    }
                }
                Op::Release(i) => {
                    if !live.is_empty() {
                        let id = live.remove(i % live.len());
                        let claim = rm.release(id).expect("live lease");
                        frozen -= claim.unit_bundles;
                    }
                }
                Op::ScaleUp(n) => {
                    pool.scale_up(n, now + BOOT);
                }
                Op::Drain(n) => {
                    pool.drain(n);
                }
                Op::CancelDrain(n) => {
                    pool.cancel_drain(n);
                }
                Op::Advance(secs) => {
                    now += SimDuration::from_secs(secs);
                    pool.advance_to(now);
                }
                Op::ScaleDown(keep) => {
                    pool.scale_down(keep);
                }
            }
            // The platform's per-pass resync.
            rm.set_total_bundles(pool.unit_capacity(&unit));

            // Layer 1: the Resource Manager never reports more free than
            // total, and free is exactly total − frozen (saturating).
            prop_assert!(rm.free_bundles() <= rm.total_bundles(),
                "free {} > total {}", rm.free_bundles(), rm.total_bundles());
            prop_assert_eq!(
                rm.free_bundles(),
                rm.total_bundles().saturating_sub(frozen),
                "free must equal total - frozen"
            );

            // Layer 2: the pool never reports more placeable units than
            // its ready capacity, and total free fits total capacity.
            prop_assert!(pool.placeable(&unit) <= pool.unit_capacity(&unit));
            prop_assert!(
                pool.total_capacity().contains(&pool.total_free()),
                "pool free {} exceeds capacity {}",
                pool.total_free(),
                pool.total_capacity()
            );
            // Lifecycle conservation: booted = present + retired.
            prop_assert_eq!(
                pool.booted_total(),
                pool.len() as u64 + pool.retired_total()
            );
        }
    }
}
