//! The hybrid allocation optimizer (§IV-B).
//!
//! A task simulates `N_g` devices of each grade `g`, of which `q_g` are
//! pinned to benchmarking phones. The remaining `N_g − q_g` must be split
//! between the Logical Simulation (`x_g` devices over `⌊f_g / k_g⌋`
//! actors, `⌈k_g·x_g / f_g⌉·α_g` of wall time) and the Device Simulation
//! (`N_g − q_g − x_g` devices over `m_g` phones,
//! `⌈(N_g−q_g−x_g)/m_g⌉·β_g + λ_g`). The task finishes when the slowest
//! grade on the slowest cluster finishes:
//!
//! ```text
//! minimize  T = max_g max( Tl_g(x_g), Tp_g(x_g) )
//! subject to 0 ≤ x_g ≤ N_g − q_g, x_g integer
//! ```
//!
//! Because each `x_g` only influences its own grade, the problem separates:
//! each grade independently minimizes `max(Tl, Tp)` where `Tl` is a
//! non-decreasing and `Tp` a non-increasing step function — the pointwise
//! max is unimodal and an exact binary search finds the integer optimum.
//! A secondary objective (paper: "maximize Σ x_g", preferring logical
//! resources) then pushes every grade's `x_g` as high as possible without
//! raising the global optimum `T*`.

use serde::{Deserialize, Serialize};
use simdc_types::{Result, SimDuration, SimdcError};

/// Per-grade inputs of the optimizer. All durations are the *calibrated
/// averages* the paper obtains "through empirical values or
/// pre-experimental measurements".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GradeAllocParams {
    /// Total devices to simulate (`N`).
    pub total_devices: u64,
    /// Devices reserved for benchmarking phones (`q`).
    pub benchmark: u64,
    /// Unit resource bundles granted in Logical Simulation (`f`).
    pub unit_bundles: u64,
    /// Unit bundles one simulated device consumes (`k`).
    pub units_per_device: u64,
    /// Physical *computation* phones granted in Device Simulation (`m`).
    /// Benchmarking phones are reserved separately — the paper notes they
    /// "are not reused as computation units".
    pub phones: u64,
    /// Mean per-device round time in Logical Simulation (`α`).
    pub alpha: SimDuration,
    /// Mean per-device round time on phones (`β`).
    pub beta: SimDuration,
    /// Compute-framework startup on phones (`λ`).
    pub lambda: SimDuration,
}

impl GradeAllocParams {
    /// Number of logical actors this grade can launch.
    #[must_use]
    pub fn actors(&self) -> u64 {
        self.unit_bundles
            .checked_div(self.units_per_device)
            .unwrap_or(0)
    }

    /// Devices that must be split between the two clusters (`N − q`).
    #[must_use]
    pub fn splittable(&self) -> u64 {
        self.total_devices.saturating_sub(self.benchmark)
    }

    /// Validates feasibility.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::InfeasibleAllocation`] when `q > N`, when both
    /// clusters are absent while devices remain, or when durations are
    /// zero.
    pub fn validate(&self) -> Result<()> {
        use SimdcError::InfeasibleAllocation;
        if self.benchmark > self.total_devices {
            return Err(InfeasibleAllocation(format!(
                "benchmark devices ({}) exceed total devices ({})",
                self.benchmark, self.total_devices
            )));
        }
        if self.splittable() > 0 && self.actors() == 0 && self.phones == 0 {
            return Err(InfeasibleAllocation(
                "devices to simulate but neither bundles nor phones granted".into(),
            ));
        }
        if self.alpha.is_zero() || self.beta.is_zero() {
            return Err(InfeasibleAllocation(
                "per-device durations must be positive".into(),
            ));
        }
        Ok(())
    }

    /// Logical-cluster time if `x` devices run there.
    #[must_use]
    pub fn logical_time(&self, x: u64) -> SimDuration {
        if x == 0 {
            return SimDuration::ZERO;
        }
        if self.actors() == 0 {
            // f < k: not even one actor fits, so no device can run here.
            return SimDuration::MAX;
        }
        // ⌈k·x / f⌉ · α
        let waves = (self.units_per_device * x).div_ceil(self.unit_bundles);
        self.alpha * waves
    }

    /// Phone-cluster time if `x` devices went logical: `N − q − x` compute
    /// devices wave over the `m` compute phones, while the `q` benchmark
    /// devices each run one round on their own reserved phone in parallel.
    #[must_use]
    pub fn phone_time(&self, x: u64) -> SimDuration {
        let compute_devices = self.splittable() - x.min(self.splittable());
        let compute_time = if compute_devices == 0 {
            SimDuration::ZERO
        } else if self.phones == 0 {
            SimDuration::MAX
        } else {
            self.lambda
                .saturating_add(self.beta * compute_devices.div_ceil(self.phones))
        };
        let benchmark_time = if self.benchmark > 0 {
            self.lambda.saturating_add(self.beta)
        } else {
            SimDuration::ZERO
        };
        compute_time.max(benchmark_time)
    }

    /// The grade's completion time for a given split.
    #[must_use]
    pub fn grade_time(&self, x: u64) -> SimDuration {
        self.logical_time(x).max(self.phone_time(x))
    }
}

/// The optimizer's decision for one grade.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GradeAllocation {
    /// Devices simulated in Logical Simulation (`x`).
    pub logical_devices: u64,
    /// Compute devices simulated on phones (`N − q − x`).
    pub phone_devices: u64,
    /// Benchmark devices (always on phones, `q`).
    pub benchmark_devices: u64,
    /// This grade's completion time.
    pub grade_time: SimDuration,
}

/// A full allocation across grades.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    /// Per-grade decisions, in input order.
    pub grades: Vec<GradeAllocation>,
    /// The minimized task time `T* = max_g grade_time`.
    pub task_time: SimDuration,
}

impl Allocation {
    /// Total devices placed in Logical Simulation.
    #[must_use]
    pub fn total_logical(&self) -> u64 {
        self.grades.iter().map(|g| g.logical_devices).sum()
    }
}

/// Minimizes task time over the per-grade splits, then applies the
/// secondary objective: among all splits achieving `T*`, maximize the
/// number of logically simulated devices (the paper's "prioritizing the
/// use of Logical Simulation resources").
///
/// # Errors
///
/// Returns [`SimdcError::InfeasibleAllocation`] if any grade is infeasible
/// (see [`GradeAllocParams::validate`]).
pub fn optimize(params: &[GradeAllocParams]) -> Result<Allocation> {
    for p in params {
        p.validate()?;
    }
    // Phase 1: independent per-grade minimum.
    let optima: Vec<u64> = params.iter().map(minimize_grade).collect();
    let task_time = params
        .iter()
        .zip(&optima)
        .map(|(p, &x)| p.grade_time(x))
        .max()
        .unwrap_or(SimDuration::ZERO);

    // Phase 2: push x up to the largest value whose grade time still fits
    // under T* (logical_time is non-decreasing → binary search upper edge;
    // raising x never increases phone_time, so only Tl constrains).
    let grades = params
        .iter()
        .zip(&optima)
        .map(|(p, &x_opt)| {
            let hi = p.splittable();
            let x = largest_x_within(p, task_time, x_opt, hi);
            GradeAllocation {
                logical_devices: x,
                phone_devices: p.splittable() - x,
                benchmark_devices: p.benchmark,
                grade_time: p.grade_time(x),
            }
        })
        .collect();
    Ok(Allocation { grades, task_time })
}

/// Exhaustive reference implementation (used by property tests and tiny
/// instances): tries every feasible `x` and returns the minimal grade time.
#[must_use]
pub fn brute_force_grade(p: &GradeAllocParams) -> (u64, SimDuration) {
    let mut best_x = 0;
    let mut best_t = p.grade_time(0);
    for x in 1..=p.splittable() {
        let t = p.grade_time(x);
        if t < best_t {
            best_t = t;
            best_x = x;
        }
    }
    (best_x, best_t)
}

/// Binary search for the minimizer of the unimodal `max(Tl, Tp)`.
fn minimize_grade(p: &GradeAllocParams) -> u64 {
    let hi = p.splittable();
    if hi == 0 {
        return 0;
    }
    if p.actors() == 0 {
        return 0; // no logical capacity
    }
    if p.phones == 0 {
        return hi; // no phone capacity
    }
    // Find the largest x with Tl(x) <= Tp(x); the optimum is there or one
    // step right (where the curves cross).
    let (mut lo, mut hi_b) = (0u64, hi);
    // Invariant: Tl(lo) <= Tp(lo) (holds at 0: Tl=0). If not even x=0
    // satisfies it, phones dominate everywhere and x* = argmin over edge.
    if p.logical_time(0) > p.phone_time(0) {
        return 0;
    }
    while lo < hi_b {
        let mid = (lo + hi_b).div_ceil(2);
        if p.logical_time(mid) <= p.phone_time(mid) {
            lo = mid;
        } else {
            hi_b = mid - 1;
        }
    }
    let candidates = [lo, (lo + 1).min(hi)];
    candidates
        .into_iter()
        .min_by_key(|&x| (p.grade_time(x), std::cmp::Reverse(x)))
        .expect("two candidates")
}

/// Largest `x ∈ [floor, hi]` with `grade_time(x) ≤ budget` (logical time is
/// non-decreasing in x, so the feasible set is a prefix above `floor`).
fn largest_x_within(p: &GradeAllocParams, budget: SimDuration, floor: u64, hi: u64) -> u64 {
    if p.actors() == 0 {
        return floor;
    }
    let (mut lo, mut hi_b) = (floor, hi);
    while lo < hi_b {
        let mid = (lo + hi_b).div_ceil(2);
        if p.grade_time(mid) <= budget {
            lo = mid;
        } else {
            hi_b = mid - 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    /// The paper's running example: High devices with k = 8, f = 80.
    fn high_grade(n: u64) -> GradeAllocParams {
        GradeAllocParams {
            total_devices: n,
            benchmark: 5,
            unit_bundles: 80,
            units_per_device: 8,
            phones: 10,
            alpha: secs(16),
            beta: secs(16),
            lambda: secs(30),
        }
    }

    #[test]
    fn matches_brute_force_on_paper_example() {
        let p = high_grade(100);
        let alloc = optimize(&[p]).unwrap();
        let (_, best_t) = brute_force_grade(&p);
        assert_eq!(alloc.task_time, best_t);
        assert_eq!(alloc.grades[0].grade_time, best_t);
        // Sum check: every device is placed somewhere.
        let g = alloc.grades[0];
        assert_eq!(
            g.logical_devices + g.phone_devices + g.benchmark_devices,
            100
        );
    }

    #[test]
    fn secondary_objective_maximizes_logical_share() {
        let p = high_grade(100);
        let alloc = optimize(&[p]).unwrap();
        let x = alloc.grades[0].logical_devices;
        // Any larger x must exceed T*.
        if x < p.splittable() {
            assert!(p.grade_time(x + 1) > alloc.task_time);
        }
        // And x achieves T*.
        assert!(p.grade_time(x) <= alloc.task_time);
    }

    #[test]
    fn no_phones_pushes_everything_logical() {
        let p = GradeAllocParams {
            phones: 0,
            benchmark: 0,
            ..high_grade(50)
        };
        let alloc = optimize(&[p]).unwrap();
        assert_eq!(alloc.grades[0].logical_devices, 50);
        assert_eq!(alloc.grades[0].phone_devices, 0);
    }

    #[test]
    fn no_bundles_pushes_everything_physical() {
        let p = GradeAllocParams {
            unit_bundles: 0,
            ..high_grade(50)
        };
        let alloc = optimize(&[p]).unwrap();
        assert_eq!(alloc.grades[0].logical_devices, 0);
        assert_eq!(alloc.grades[0].phone_devices, 45);
    }

    #[test]
    fn small_scale_prefers_logical_due_to_startup() {
        // 8 devices, λ = 30 s dominates: logical (1 wave of α = 16 s) wins.
        let p = GradeAllocParams {
            benchmark: 0,
            ..high_grade(8)
        };
        let alloc = optimize(&[p]).unwrap();
        assert_eq!(alloc.grades[0].logical_devices, 8);
        assert_eq!(alloc.task_time, secs(16));
    }

    #[test]
    fn large_scale_splits_work() {
        let p = GradeAllocParams {
            benchmark: 0,
            beta: secs(10), // phones faster per device at scale
            ..high_grade(500)
        };
        let alloc = optimize(&[p]).unwrap();
        let g = alloc.grades[0];
        assert!(g.logical_devices > 0 && g.phone_devices > 0, "{g:?}");
        // Optimized time beats both pure assignments.
        assert!(alloc.task_time <= p.grade_time(0));
        assert!(alloc.task_time <= p.grade_time(p.splittable()));
    }

    #[test]
    fn multi_grade_takes_the_max() {
        let fast = GradeAllocParams {
            benchmark: 0,
            ..high_grade(10)
        };
        let slow = GradeAllocParams {
            total_devices: 1_000,
            benchmark: 0,
            unit_bundles: 16,
            units_per_device: 8,
            phones: 4,
            alpha: secs(21),
            beta: secs(22),
            lambda: secs(45),
        };
        let alloc = optimize(&[fast, slow]).unwrap();
        assert_eq!(
            alloc.task_time,
            alloc.grades.iter().map(|g| g.grade_time).max().unwrap()
        );
        assert!(alloc.grades[1].grade_time > alloc.grades[0].grade_time);
    }

    #[test]
    fn infeasible_instances_rejected() {
        let p = GradeAllocParams {
            benchmark: 200,
            ..high_grade(100)
        };
        assert!(optimize(&[p]).is_err());
        let p = GradeAllocParams {
            unit_bundles: 0,
            phones: 0,
            benchmark: 0,
            ..high_grade(10)
        };
        assert!(optimize(&[p]).is_err());
    }

    #[test]
    fn benchmark_without_compute_phones_is_feasible() {
        // All splittable devices can go logical; the q benchmark devices
        // run on their own reserved phones.
        let p = GradeAllocParams {
            benchmark: 2,
            phones: 0,
            ..high_grade(10)
        };
        let alloc = optimize(&[p]).unwrap();
        assert_eq!(alloc.grades[0].logical_devices, 8);
        assert_eq!(alloc.grades[0].benchmark_devices, 2);
    }

    #[test]
    fn zero_devices_is_trivially_ok() {
        let p = GradeAllocParams {
            total_devices: 0,
            benchmark: 0,
            ..high_grade(0)
        };
        let alloc = optimize(&[p]).unwrap();
        assert_eq!(alloc.task_time, SimDuration::ZERO);
        assert_eq!(alloc.grades[0].logical_devices, 0);
    }

    #[test]
    fn benchmark_only_task_costs_one_phone_round() {
        let p = GradeAllocParams {
            total_devices: 5,
            benchmark: 5,
            ..high_grade(5)
        };
        let alloc = optimize(&[p]).unwrap();
        assert_eq!(alloc.task_time, secs(30 + 16));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn params_strategy() -> impl Strategy<Value = GradeAllocParams> {
            (
                0u64..400, // total
                0u64..4,   // benchmark
                0u64..200, // f
                1u64..12,  // k
                0u64..30,  // m
                1u64..40,  // alpha secs
                1u64..40,  // beta secs
                0u64..60,  // lambda secs
            )
                .prop_map(|(n, q, f, k, m, a, b, l)| GradeAllocParams {
                    total_devices: n,
                    benchmark: q.min(n),
                    unit_bundles: f,
                    units_per_device: k,
                    phones: m,
                    alpha: secs(a),
                    beta: secs(b),
                    lambda: secs(l),
                })
                .prop_filter("feasible", |p| p.validate().is_ok())
        }

        proptest! {
            #[test]
            fn optimizer_matches_brute_force(p in params_strategy()) {
                let alloc = optimize(&[p]).unwrap();
                let (_, best_t) = brute_force_grade(&p);
                prop_assert_eq!(alloc.task_time, best_t);
            }

            #[test]
            fn allocation_places_every_device(p in params_strategy()) {
                let alloc = optimize(&[p]).unwrap();
                let g = alloc.grades[0];
                prop_assert_eq!(
                    g.logical_devices + g.phone_devices + g.benchmark_devices,
                    p.total_devices
                );
            }

            #[test]
            fn secondary_objective_is_maximal(p in params_strategy()) {
                let alloc = optimize(&[p]).unwrap();
                let x = alloc.grades[0].logical_devices;
                prop_assert!(p.grade_time(x) <= alloc.task_time);
                if x < p.splittable() {
                    prop_assert!(p.grade_time(x + 1) > alloc.task_time);
                }
            }
        }
    }
}
