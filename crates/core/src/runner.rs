//! The Task Runner: executes one task's multi-round operator flow over
//! hybrid heterogeneous resources.
//!
//! Per round, the runner
//!
//! 1. splits each grade's devices between the logical cluster and the
//!    phone cluster according to the task's allocation,
//! 2. actually trains every simulated device's model on its local shard —
//!    server kernel on the cluster, mobile kernel on phones (the §VI-B.2
//!    implementation split),
//! 3. uploads updates to shared storage and feeds the announcement
//!    messages through DeviceFlow at each device's virtual completion
//!    time,
//! 4. lets the cloud trigger decide the aggregation instant, FedAvgs the
//!    updates that made it, and evaluates the new global model.
//!
//! Everything is deterministic given the task seed and start instant.

use serde::{Deserialize, Serialize};
use simdc_cluster::{JobSpec, LogicalCluster, PlacementGroupId};
use simdc_data::CtrDataset;
use simdc_deviceflow::{DeviceFlow, FlowHarness};
use simdc_ml::{evaluate, EvalMetrics, FedAvg, KernelKind, LocalTrainer, LrModel};
use simdc_phone::{PerfReport, PhoneMgr, PhoneProfile};
use simdc_simrt::RngStream;
use simdc_types::{
    DeviceId, Message, MessageId, PhoneId, ResourceBundle, Result, RoundId, SimDuration,
    SimInstant, SimdcError, StorageKey, TaskId,
};

use crate::alloc::{optimize, Allocation, GradeAllocParams, GradeAllocation};
use crate::cloud::{decode_update, encode_update, resolve_round, Storage};
use crate::spec::{AllocationPolicy, GradeRequirement, TaskSpec};

/// One round's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundReport {
    /// The round.
    pub round: RoundId,
    /// Virtual round start.
    pub started_at: SimInstant,
    /// When the slowest device finished computing.
    pub compute_finished_at: SimInstant,
    /// When the cloud aggregated.
    pub aggregated_at: SimInstant,
    /// Whether the trigger fired (vs. round timeout).
    pub trigger_fired: bool,
    /// Updates included in the aggregate.
    pub included_updates: u64,
    /// Training samples behind the aggregate.
    pub included_samples: u64,
    /// Messages that arrived after aggregation.
    pub stragglers: u64,
    /// Messages lost to DeviceFlow dropout simulation.
    pub dropped_messages: u64,
    /// Sample-weighted mean training loss of included updates.
    pub train_loss: f64,
    /// Global-model metrics on the held-out test set after aggregation.
    pub eval: EvalMetrics,
}

/// A completed task's full report.
#[derive(Debug, Clone)]
pub struct TaskReport {
    /// The task.
    pub task: TaskId,
    /// Virtual start.
    pub started_at: SimInstant,
    /// Virtual completion (last aggregation or benchmark teardown).
    pub finished_at: SimInstant,
    /// Per-round outcomes.
    pub rounds: Vec<RoundReport>,
    /// The allocation used.
    pub allocation: Allocation,
    /// The final global model.
    pub final_model: LrModel,
    /// Benchmarking-phone measurement reports (Table I / Fig 5 data).
    pub benchmark_reports: Vec<PerfReport>,
}

impl TaskReport {
    /// Total virtual duration.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        self.finished_at.duration_since(self.started_at)
    }

    /// Final-round test accuracy (0 if no rounds ran).
    #[must_use]
    pub fn final_accuracy(&self) -> f64 {
        self.rounds.last().map_or(0.0, |r| r.eval.accuracy)
    }
}

/// Tunables of the runner itself (not task-specific).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunnerConfig {
    /// Data payload each logical actor downloads per round, MiB (on top of
    /// the serialized model).
    pub data_payload_mib: f64,
    /// Whether to run benchmark-phone measurement after the rounds.
    pub measure_benchmarks: bool,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            data_payload_mib: 4.0,
            measure_benchmarks: true,
        }
    }
}

/// Executes tasks against borrowed substrates.
#[derive(Debug)]
pub struct TaskRunner {
    config: RunnerConfig,
}

/// A planned task execution: the full per-round timeline computed at
/// admission time, with benchmark phones reserved but their measurements
/// not yet taken.
///
/// The event-driven platform calls [`TaskRunner::plan`] when the scheduler
/// admits a task — fixing the task's completion instant so it can be
/// scheduled as an event — and [`TaskRunner::commit`] when that event
/// fires, which performs the benchmark measurements and produces the final
/// [`TaskReport`]. `plan` then `commit` is byte-identical to the old
/// single-shot `execute`.
#[derive(Debug)]
pub struct TaskPlan {
    report: TaskReport,
    benchmark_phones: Vec<PhoneId>,
    /// Placement groups held on the logical cluster for this task's whole
    /// lifetime — the platform releases them at the completion event, so
    /// cloud capacity contention is real across concurrent tasks.
    groups: Vec<PlacementGroupId>,
}

impl TaskPlan {
    /// Assembles a plan from its parts — the batch dispatcher's merge
    /// step builds plans this way after workers compute the timelines.
    pub(crate) fn assemble(
        report: TaskReport,
        benchmark_phones: Vec<PhoneId>,
        groups: Vec<PlacementGroupId>,
    ) -> Self {
        TaskPlan {
            report,
            benchmark_phones,
            groups,
        }
    }

    /// The planned task.
    #[must_use]
    pub fn task(&self) -> TaskId {
        self.report.task
    }

    /// The placement groups the task holds until its completion event.
    #[must_use]
    pub fn placement_groups(&self) -> &[PlacementGroupId] {
        &self.groups
    }

    /// Virtual start instant.
    #[must_use]
    pub fn started_at(&self) -> SimInstant {
        self.report.started_at
    }

    /// Virtual completion instant (last aggregation or benchmark
    /// teardown) — where the platform schedules the completion event.
    #[must_use]
    pub fn finished_at(&self) -> SimInstant {
        self.report.finished_at
    }
}

impl Default for TaskRunner {
    fn default() -> Self {
        TaskRunner::new(RunnerConfig::default())
    }
}

pub(crate) struct GradePlacement {
    pub(crate) logical_devices: Vec<DeviceId>,
    pub(crate) phone_devices: Vec<DeviceId>,
    pub(crate) benchmark_devices: Vec<(DeviceId, PhoneId)>,
}

/// What [`TaskRunner::plan_timeline`] needs from the world: grade
/// profiles, cloud round planning and benchmark-run submission. Two
/// implementations exist — the live substrates (`LiveSubstrate`, used by
/// the sequential path) and the snapshot substrate built by
/// [`crate::dispatch`] for plan-phase work running on worker threads.
/// Both feed the *same* `plan_timeline` body, so the sequential and
/// threaded paths cannot drift.
pub(crate) trait PlanSubstrate {
    /// Fleet-averaged behaviour profile of a grade.
    fn effective_profile(&self, grade: simdc_types::DeviceGrade) -> PhoneProfile;
    /// The profile a concrete benchmark phone is measured at (nominal
    /// grade profile when the phone is unknown).
    fn benchmark_profile(&self, grade: simdc_types::DeviceGrade, phone: PhoneId) -> PhoneProfile;
    /// Plans one cloud round over an acquired placement group.
    fn plan_round(
        &mut self,
        pg: PlacementGroupId,
        job: &JobSpec,
        rng: &mut RngStream,
    ) -> Result<simdc_cluster::JobPlan>;
    /// Reserves a benchmark phone by assigning its run plan (live) or
    /// deferring the assignment to the merge step (snapshot).
    fn submit_run(&mut self, phone: PhoneId, plan: simdc_phone::RunPlan) -> Result<()>;
}

/// The sequential substrate: borrows the platform's live cluster and
/// fleet, so `plan_timeline` mutates them directly.
pub(crate) struct LiveSubstrate<'a> {
    pub(crate) cluster: &'a mut LogicalCluster,
    pub(crate) phones: &'a mut PhoneMgr,
}

impl PlanSubstrate for LiveSubstrate<'_> {
    fn effective_profile(&self, grade: simdc_types::DeviceGrade) -> PhoneProfile {
        self.phones.effective_profile(grade)
    }

    fn benchmark_profile(&self, grade: simdc_types::DeviceGrade, phone: PhoneId) -> PhoneProfile {
        self.phones
            .phone(phone)
            .map_or_else(|| PhoneProfile::for_grade(grade), |p| p.profile().clone())
    }

    fn plan_round(
        &mut self,
        pg: PlacementGroupId,
        job: &JobSpec,
        rng: &mut RngStream,
    ) -> Result<simdc_cluster::JobPlan> {
        self.cluster.plan_round_on_group(pg, job, rng)
    }

    fn submit_run(&mut self, phone: PhoneId, plan: simdc_phone::RunPlan) -> Result<()> {
        self.phones.submit_run(phone, plan)
    }
}

impl TaskRunner {
    /// Creates a runner.
    #[must_use]
    pub fn new(config: RunnerConfig) -> Self {
        TaskRunner { config }
    }

    /// Computes the allocation a spec would use against the given
    /// substrates, without executing it.
    ///
    /// # Errors
    ///
    /// Propagates optimizer infeasibility.
    pub fn plan_allocation(&self, spec: &TaskSpec, cluster: &LogicalCluster) -> Result<Allocation> {
        let params = Self::alloc_params(spec, cluster);
        match spec.allocation {
            AllocationPolicy::Optimized => optimize(&params),
            AllocationPolicy::FixedLogicalFraction(frac) => {
                let grades: Vec<GradeAllocation> = params
                    .iter()
                    .map(|p| {
                        let x = ((p.splittable() as f64) * frac).round() as u64;
                        let x = x.min(p.splittable());
                        GradeAllocation {
                            logical_devices: x,
                            phone_devices: p.splittable() - x,
                            benchmark_devices: p.benchmark,
                            grade_time: p.grade_time(x),
                        }
                    })
                    .collect();
                let task_time = grades
                    .iter()
                    .map(|g| g.grade_time)
                    .max()
                    .unwrap_or(SimDuration::ZERO);
                Ok(Allocation { grades, task_time })
            }
        }
    }

    /// The placement-group requests a spec would acquire under
    /// `allocation`: one `(actor bundle, actor count)` pair per grade with
    /// logical devices. The platform's admission pre-check runs these
    /// through the cluster's trial placement *before* freezing the task's
    /// claim, so a task whose placement would block (capacity booting, or
    /// free units fragmented across nodes) waits instead of failing.
    #[must_use]
    pub fn placement_requests(
        spec: &TaskSpec,
        allocation: &Allocation,
        cluster: &LogicalCluster,
    ) -> Vec<(ResourceBundle, u64)> {
        spec.grades
            .iter()
            .zip(&allocation.grades)
            .filter_map(|(g, a)| Self::grade_request(g, a.logical_devices, cluster))
            .collect()
    }

    /// The single source of truth for one grade's placement-group shape:
    /// `(actor bundle, actor count)` for `logical_devices` devices placed
    /// on the cloud tier, or `None` when the grade runs no logical
    /// devices. Both the admission trial ([`TaskRunner::placement_requests`])
    /// and the real acquisition in [`TaskRunner::plan`] derive from here,
    /// so the trial can never approve a placement the acquisition rejects.
    fn grade_request(
        g: &GradeRequirement,
        logical_devices: u64,
        cluster: &LogicalCluster,
    ) -> Option<(ResourceBundle, u64)> {
        if logical_devices == 0 {
            return None;
        }
        let actors = (g.logical_unit_bundles / g.units_per_device.max(1)).min(logical_devices);
        Some((cluster.actor_bundle(g.units_per_device), actors))
    }

    fn alloc_params(spec: &TaskSpec, cluster: &LogicalCluster) -> Vec<GradeAllocParams> {
        spec.grades
            .iter()
            .map(|g| {
                let profile = PhoneProfile::for_grade(g.grade);
                GradeAllocParams {
                    total_devices: g.total_devices,
                    benchmark: g.benchmark_phones,
                    unit_bundles: g.logical_unit_bundles,
                    units_per_device: g.units_per_device,
                    phones: g.phones,
                    alpha: cluster.cost().alpha(g.grade),
                    beta: profile.beta(),
                    lambda: profile.lambda(),
                }
            })
            .collect()
    }

    /// Executes `spec` starting at virtual time `start`: plan immediately
    /// followed by commit. Batch drivers and tests use this; the
    /// event-driven platform splits the two phases so completions can
    /// interleave on the virtual timeline.
    ///
    /// # Errors
    ///
    /// Returns validation/allocation/resource errors; a task that starts
    /// executing always produces a report (rounds that time out aggregate
    /// best-effort).
    pub fn execute(
        &self,
        spec: &TaskSpec,
        dataset: &CtrDataset,
        cluster: &mut LogicalCluster,
        phones: &mut PhoneMgr,
        storage: &mut Storage,
        start: SimInstant,
    ) -> Result<TaskReport> {
        let plan = self.plan(spec, dataset, cluster, phones, storage, start)?;
        // Single-shot execution has no completion event to release the
        // placement groups at — give them back here so batch drivers
        // leave the pool clean between tasks.
        let groups: Vec<PlacementGroupId> = plan.placement_groups().to_vec();
        let report = self.commit(plan, phones);
        for pg in groups {
            cluster.release_job(pg);
        }
        report
    }

    /// Plan phase: computes the task's entire per-round timeline (device
    /// placement, training, DeviceFlow routing, aggregation instants) and
    /// reserves the benchmark phones by submitting their run plans —
    /// without taking the measurements. The returned [`TaskPlan`] fixes
    /// `finished_at`, so the platform can schedule the completion event
    /// before any wall-clock-later work happens.
    ///
    /// # Errors
    ///
    /// Returns validation/allocation/resource errors.
    #[allow(clippy::too_many_lines)]
    pub fn plan(
        &self,
        spec: &TaskSpec,
        dataset: &CtrDataset,
        cluster: &mut LogicalCluster,
        phones: &mut PhoneMgr,
        storage: &mut Storage,
        start: SimInstant,
    ) -> Result<TaskPlan> {
        spec.validate()?;
        let allocation = self.plan_allocation(spec, cluster)?;
        let mut rng = RngStream::named(spec.seed, &format!("task/{}", spec.id.0));

        // --- Device placement -------------------------------------------
        let placements = Self::place_devices(spec, &allocation, |grade, count| {
            phones.select(grade, count, start)
        })?;

        Self::check_phone_grades(spec, &placements, |grade| {
            phones.try_effective_profile(grade).is_some()
        })?;

        // --- Placement-group acquisition --------------------------------
        // One group per grade with logical devices, acquired at admission
        // and held for the task's whole lifetime: every round re-uses it,
        // and the platform releases it at the completion event — which is
        // what makes cloud capacity contention real across concurrent
        // tasks. Acquisition failing here means the platform's admission
        // pre-check raced a competing placement; the caller handles it
        // like any other resource failure.
        let grade_groups = Self::acquire_grade_groups(spec, &placements, cluster)?;
        let groups: Vec<PlacementGroupId> = grade_groups.iter().flatten().copied().collect();

        // Everything past acquisition must give the groups back on error.
        let planned = self.plan_timeline(
            spec,
            dataset,
            &mut LiveSubstrate { cluster, phones },
            storage,
            start,
            allocation,
            &placements,
            &grade_groups,
            &mut rng,
        );
        match planned {
            Ok((report, benchmark_phones)) => Ok(TaskPlan {
                report,
                benchmark_phones,
                groups,
            }),
            Err(err) => {
                for pg in &groups {
                    cluster.release_job(*pg);
                }
                Err(err)
            }
        }
    }

    /// Deals device ids to grades in allocation order and binds benchmark
    /// devices to concrete phones via `select` — the sequential path
    /// queries the live fleet, the batch dispatcher layers a
    /// reserved-phone overlay on the same query. One body for both, so
    /// device numbering and selection order cannot drift.
    pub(crate) fn place_devices<F>(
        spec: &TaskSpec,
        allocation: &Allocation,
        mut select: F,
    ) -> Result<Vec<GradePlacement>>
    where
        F: FnMut(simdc_types::DeviceGrade, usize) -> Result<Vec<PhoneId>>,
    {
        let mut placements: Vec<GradePlacement> = Vec::with_capacity(spec.grades.len());
        let mut next_device: u64 = 0;
        for (g, alloc) in spec.grades.iter().zip(&allocation.grades) {
            let mut take = |n: u64| -> Vec<DeviceId> {
                let ids = (next_device..next_device + n).map(DeviceId).collect();
                next_device += n;
                ids
            };
            let logical_devices = take(alloc.logical_devices);
            let phone_devices = take(alloc.phone_devices);
            let benchmark_ids = take(alloc.benchmark_devices);
            let benchmark_phones = if alloc.benchmark_devices > 0 {
                select(g.grade, alloc.benchmark_devices as usize)?
            } else {
                Vec::new()
            };
            placements.push(GradePlacement {
                logical_devices,
                phone_devices,
                benchmark_devices: benchmark_ids.into_iter().zip(benchmark_phones).collect(),
            });
        }
        Ok(placements)
    }

    /// A grade whose phone fleet has drained to zero (churn, retirement,
    /// or a fleet that never had it) offers no behaviour profile to
    /// average. A task placing devices on that grade's phone cluster
    /// must surface resource exhaustion instead of silently planning
    /// with the static paper profile of phones that do not exist.
    pub(crate) fn check_phone_grades(
        spec: &TaskSpec,
        placements: &[GradePlacement],
        has_profile: impl Fn(simdc_types::DeviceGrade) -> bool,
    ) -> Result<()> {
        for (g, placement) in spec.grades.iter().zip(placements) {
            let needs_phones =
                !placement.phone_devices.is_empty() || !placement.benchmark_devices.is_empty();
            if needs_phones && !has_profile(g.grade) {
                return Err(SimdcError::ResourceExhausted {
                    requested: format!("{} phone-cluster devices for task {}", g.grade, spec.id),
                    available: format!("0 {} phones registered", g.grade),
                });
            }
        }
        Ok(())
    }

    /// Acquires one placement group per grade with logical devices,
    /// rolling back the task's own partial acquisitions on failure.
    pub(crate) fn acquire_grade_groups(
        spec: &TaskSpec,
        placements: &[GradePlacement],
        cluster: &mut LogicalCluster,
    ) -> Result<Vec<Option<PlacementGroupId>>> {
        let mut grade_groups: Vec<Option<PlacementGroupId>> = Vec::with_capacity(spec.grades.len());
        for (g, placement) in spec.grades.iter().zip(placements) {
            let Some((bundle, actors)) =
                Self::grade_request(g, placement.logical_devices.len() as u64, cluster)
            else {
                grade_groups.push(None);
                continue;
            };
            match cluster.acquire_group(bundle, actors as usize) {
                Ok(pg) => grade_groups.push(Some(pg)),
                Err(err) => {
                    for pg in grade_groups.iter().flatten() {
                        cluster.release_job(*pg);
                    }
                    return Err(err);
                }
            }
        }
        Ok(grade_groups)
    }

    /// The fallible tail of [`TaskRunner::plan`]: rounds, DeviceFlow
    /// routing, aggregation and benchmark reservation over already
    /// acquired placement groups. Split out so `plan` can release the
    /// groups on any error.
    #[allow(clippy::too_many_arguments, clippy::too_many_lines)]
    pub(crate) fn plan_timeline<S: PlanSubstrate>(
        &self,
        spec: &TaskSpec,
        dataset: &CtrDataset,
        substrate: &mut S,
        storage: &mut Storage,
        start: SimInstant,
        allocation: Allocation,
        placements: &[GradePlacement],
        grade_groups: &[Option<PlacementGroupId>],
        rng: &mut RngStream,
    ) -> Result<(TaskReport, Vec<PhoneId>)> {
        // --- DeviceFlow -------------------------------------------------
        let mut harness = spec.strategy.as_ref().map(|strategy| {
            let mut flow = DeviceFlow::new();
            flow.register_task(spec.id, strategy.clone())
                .expect("spec validation checked the strategy");
            FlowHarness::new(flow, rng.fork("deviceflow"))
        });
        let mut delivered_seen = 0usize;
        let mut dropped_seen = 0u64;

        // --- Round loop --------------------------------------------------
        let trainer = LocalTrainer::new(spec.train);
        let mut global = LrModel::zeros(dataset.feature_dim);
        let mut rounds: Vec<RoundReport> = Vec::with_capacity(spec.rounds as usize);
        let mut round_start = start;
        let mut message_seq: u64 = 0;

        for round_idx in 0..spec.rounds {
            let round = RoundId(round_idx);
            storage.put(
                StorageKey::for_global_model(spec.id, round),
                global.to_bytes(),
            );

            // Compute every device's completion offset and train it.
            let mut emissions: Vec<(SimInstant, Message)> = Vec::new();
            let mut compute_finished = round_start;
            let payload_mib =
                self.config.data_payload_mib + global.serialized_size() as f64 / (1024.0 * 1024.0);

            for ((g, placement), group) in spec.grades.iter().zip(placements).zip(grade_groups) {
                // Effective (fleet-averaged) profile, so stragglers and
                // other per-phone perturbations stretch the actual wave
                // timing — the optimizer plans with nominal profiles.
                // Grades that place phone work were verified non-empty
                // right after placement, so the nominal fallback here can
                // only ever serve fully-logical grades.
                let profile = substrate.effective_profile(g.grade);
                // Logical side: plan this round over the task's standing
                // placement group (acquired once, released at completion).
                if let Some(pg) = group {
                    let job = JobSpec {
                        task: spec.id,
                        round,
                        grade: g.grade,
                        devices: placement.logical_devices.clone(),
                        unit_bundles: g.logical_unit_bundles as u32,
                        units_per_device: g.units_per_device as u32,
                        payload_mib,
                    };
                    let plan = substrate.plan_round(*pg, &job, rng)?;
                    for (dev, offset) in plan.device_completions() {
                        let at = round_start + offset;
                        compute_finished = compute_finished.max(at);
                        emissions.push((
                            at,
                            self.train_device(
                                spec,
                                dataset,
                                &trainer,
                                &global,
                                storage,
                                dev,
                                round,
                                KernelKind::Server,
                                at,
                                &mut message_seq,
                            ),
                        ));
                    }
                }
                // Phone compute side: waves over the granted phones.
                let compute_phones = g.phones.max(1);
                let startup = if round_idx == 0 {
                    profile.lambda()
                } else {
                    SimDuration::ZERO
                };
                for (j, &dev) in placement.phone_devices.iter().enumerate() {
                    let wave = (j as u64) / compute_phones;
                    let at = round_start + startup + profile.beta() * (wave + 1);
                    compute_finished = compute_finished.max(at);
                    emissions.push((
                        at,
                        self.train_device(
                            spec,
                            dataset,
                            &trainer,
                            &global,
                            storage,
                            dev,
                            round,
                            KernelKind::Mobile,
                            at,
                            &mut message_seq,
                        ),
                    ));
                }
                // Benchmark devices: one per phone, first wave.
                for &(dev, _phone) in &placement.benchmark_devices {
                    let at = round_start + startup + profile.beta();
                    compute_finished = compute_finished.max(at);
                    emissions.push((
                        at,
                        self.train_device(
                            spec,
                            dataset,
                            &trainer,
                            &global,
                            storage,
                            dev,
                            round,
                            KernelKind::Mobile,
                            at,
                            &mut message_seq,
                        ),
                    ));
                }
            }
            emissions.sort_by_key(|(at, m)| (*at, m.id));

            // Route through DeviceFlow (or deliver directly) and let the
            // trigger pick the aggregation instant.
            let deadline = round_start + spec.round_timeout;
            let (included, aggregated_at, trigger_fired, stragglers, dropped_messages) =
                match harness.as_mut() {
                    Some(h) => {
                        let (included, at, fired) = run_flow_round(
                            h,
                            spec,
                            round,
                            &emissions,
                            round_start,
                            compute_finished,
                            deadline,
                            &mut delivered_seen,
                        );
                        let dropped_total = h.flow().stats(spec.id).map_or(0, |s| s.dropped);
                        let dropped = dropped_total - dropped_seen;
                        dropped_seen = dropped_total;
                        // Anything emitted but neither aggregated nor
                        // dropped is a straggler (possibly still shelved).
                        let stragglers = (emissions.len() as u64)
                            .saturating_sub(included.len() as u64)
                            .saturating_sub(dropped);
                        (included, at, fired, stragglers, dropped)
                    }
                    None => {
                        let outcome = resolve_round(
                            spec.trigger,
                            round_start,
                            &emissions,
                            spec.round_timeout,
                        );
                        (
                            outcome.included,
                            outcome.aggregated_at,
                            outcome.trigger_fired,
                            outcome.stragglers,
                            0,
                        )
                    }
                };

            // Cloud side: fetch, aggregate, evaluate.
            let mut updates = Vec::with_capacity(included.len());
            for m in &included {
                let key = m.storage_key.as_ref().ok_or_else(|| {
                    SimdcError::Serialization("model-update message without key".into())
                })?;
                updates.push(decode_update(storage.get(key)?)?);
            }
            let included_samples: u64 = updates.iter().map(|u| u.n_samples).sum();
            let train_loss = FedAvg::weighted_loss(&updates);
            if !updates.is_empty() {
                global = FedAvg::aggregate(&updates)?;
            }
            let eval = evaluate(&global, &dataset.test);

            // Clean consumed payloads out of storage.
            for (_, m) in &emissions {
                if let Some(key) = &m.storage_key {
                    storage.remove(key);
                }
            }

            rounds.push(RoundReport {
                round,
                started_at: round_start,
                compute_finished_at: compute_finished,
                aggregated_at,
                trigger_fired,
                included_updates: included.len() as u64,
                included_samples,
                stragglers,
                dropped_messages,
                train_loss,
                eval,
            });
            round_start = aggregated_at;
        }

        // --- Benchmark reservation ---------------------------------------
        // Submitting the run plans here (not at commit) keeps the phones
        // busy over their measurement windows, so a task admitted mid-run
        // cannot double-book them; the measurements themselves wait for
        // the commit phase.
        let mut benchmark_phones = Vec::new();
        let mut finished_at = rounds.last().map_or(start, |r| r.aggregated_at);
        if self.config.measure_benchmarks {
            for (g, placement) in spec.grades.iter().zip(placements) {
                if placement.benchmark_devices.is_empty() {
                    continue;
                }
                for &(_dev, phone) in &placement.benchmark_devices {
                    // Each benchmark placement names a concrete phone, so
                    // its measurement windows come from that phone's own
                    // profile — a straggler benchmark phone is measured at
                    // its real (slowed) pace, not the fleet average.
                    let profile = substrate.benchmark_profile(g.grade, phone);
                    let (durations, gaps) = benchmark_windows(&rounds, &profile);
                    let plan = simdc_phone::RunPlan::new(spec.id, phone, start, &durations, &gaps)?;
                    finished_at = finished_at.max(plan.end());
                    substrate.submit_run(phone, plan)?;
                    benchmark_phones.push(phone);
                }
            }
        }

        Ok((
            TaskReport {
                task: spec.id,
                started_at: start,
                finished_at,
                rounds,
                allocation,
                final_model: global,
                benchmark_reports: Vec::new(),
            },
            benchmark_phones,
        ))
    }

    /// Commit phase: measures the benchmark phones reserved by
    /// [`TaskRunner::plan`] (in reservation order, so the RNG draw sequence
    /// matches the old single-shot execution) and finalizes the report.
    ///
    /// Measurement is best-effort: a benchmark phone whose run vanished
    /// between plan and commit — crashed and rebooted (reboot wipes the
    /// assigned run), retired from the fleet, or already reassigned to a
    /// *later* task's run (possible when this task's overall
    /// `finished_at` extends past that phone's own run window) —
    /// contributes no report rather than failing a task whose training
    /// already completed, and never measures another task's run as its
    /// own. A phone that crashed but never rebooted still yields the
    /// partial report captured up to the crash.
    ///
    /// # Errors
    ///
    /// Propagates measurement faults other than the vanished-run cases
    /// above — an unexpected error must fail the task, not silently
    /// shorten its benchmark data.
    pub fn commit(&self, plan: TaskPlan, phones: &mut PhoneMgr) -> Result<TaskReport> {
        let TaskPlan {
            mut report,
            benchmark_phones,
            // Releasing the groups is the caller's job: the platform does
            // it at the completion event, `execute` right after commit.
            groups: _,
        } = plan;
        for phone in benchmark_phones {
            // Only measure a run that is still *this task's* run.
            let owned = phones
                .phone(phone)
                .and_then(|p| p.run())
                .is_some_and(|r| r.task == report.task);
            if !owned {
                continue;
            }
            match phones.measure_run(phone) {
                Ok(measured) => report.benchmark_reports.push(measured),
                // Phone retired or run wiped between the ownership check
                // and the measurement (defensive; measure_run re-reads).
                Err(SimdcError::PhoneUnavailable(_) | SimdcError::InvalidConfig(_)) => {}
                Err(other) => return Err(other),
            }
        }
        Ok(report)
    }

    #[allow(clippy::too_many_arguments)]
    fn train_device(
        &self,
        spec: &TaskSpec,
        dataset: &CtrDataset,
        trainer: &LocalTrainer,
        global: &LrModel,
        storage: &mut Storage,
        device: DeviceId,
        round: RoundId,
        kernel: KernelKind,
        at: SimInstant,
        message_seq: &mut u64,
    ) -> Message {
        let shard = &dataset.devices[(device.0 % dataset.devices.len() as u64) as usize];
        let update = trainer.train(global, &shard.data, kernel);
        let key = StorageKey::for_update(spec.id, round, device);
        storage.put(key.clone(), encode_update(&update));
        let id = MessageId(*message_seq);
        *message_seq += 1;
        Message::model_update(id, spec.id, device, round, update.n_samples, key, at)
    }
}

/// Advances the DeviceFlow harness through one round and determines the
/// aggregation instant *without running the virtual clock past it* — the
/// invariant that lets the next round start exactly at aggregation.
///
/// Returns `(included messages, aggregated_at, trigger_fired)`.
#[allow(clippy::too_many_arguments)]
fn run_flow_round(
    h: &mut FlowHarness,
    spec: &TaskSpec,
    round: RoundId,
    emissions: &[(SimInstant, Message)],
    round_start: SimInstant,
    compute_finished: SimInstant,
    deadline: SimInstant,
    delivered_seen: &mut usize,
) -> (Vec<Message>, SimInstant, bool) {
    use crate::cloud::AggregationTrigger;

    h.run_until(round_start);
    h.round_started(spec.id, round);
    for (at, m) in emissions {
        h.ingest_at(*at, m.clone());
    }
    h.round_completed_at(compute_finished.max(round_start), spec.id, round);

    // Collects this round's freshly delivered messages past the cursor.
    let collect = |h: &FlowHarness, seen: &mut usize, sink: &mut Vec<Message>| {
        for batch in &h.delivered()[*seen..] {
            sink.extend(batch.messages.iter().filter(|m| m.round == round).cloned());
        }
        *seen = h.delivered().len();
    };

    let mut included = Vec::new();
    match spec.trigger {
        AggregationTrigger::Scheduled { period } => {
            let agg_at = (round_start + period).min(deadline);
            h.run_until(agg_at);
            collect(h, delivered_seen, &mut included);
            (included, agg_at, true)
        }
        AggregationTrigger::SampleThreshold { min_samples } => {
            let mut samples = 0u64;
            let fired = step_until(
                h,
                deadline,
                |batch_msgs| {
                    for m in batch_msgs {
                        included.push(m.clone());
                        samples += m.sample_count;
                    }
                    samples >= min_samples
                },
                round,
                delivered_seen,
            );
            let agg_at = if fired {
                h.now()
            } else {
                h.run_until(deadline);
                deadline
            };
            (included, agg_at, fired)
        }
        AggregationTrigger::DeviceThreshold { min_devices } => {
            let mut devices: Vec<simdc_types::DeviceId> = Vec::new();
            let fired = step_until(
                h,
                deadline,
                |batch_msgs| {
                    for m in batch_msgs {
                        if !devices.contains(&m.device) {
                            devices.push(m.device);
                        }
                        included.push(m.clone());
                    }
                    devices.len() as u64 >= min_devices
                },
                round,
                delivered_seen,
            );
            let agg_at = if fired {
                h.now()
            } else {
                h.run_until(deadline);
                deadline
            };
            (included, agg_at, fired)
        }
    }
}

/// Steps the harness event by event (never past `deadline`), feeding each
/// newly delivered batch of this round's messages to `on_batch`; stops and
/// returns `true` the moment `on_batch` reports the trigger satisfied.
fn step_until(
    h: &mut FlowHarness,
    deadline: SimInstant,
    mut on_batch: impl FnMut(&[Message]) -> bool,
    round: RoundId,
    delivered_seen: &mut usize,
) -> bool {
    loop {
        match h.next_event_at() {
            Some(t) if t <= deadline => {
                h.step();
            }
            _ => return false,
        }
        while *delivered_seen < h.delivered().len() {
            let batch = &h.delivered()[*delivered_seen];
            *delivered_seen += 1;
            let msgs: Vec<Message> = batch
                .messages
                .iter()
                .filter(|m| m.round == round)
                .cloned()
                .collect();
            if on_batch(&msgs) {
                return true;
            }
        }
    }
}

/// Derives the benchmark phones' training windows and waiting gaps from the
/// executed round timeline.
fn benchmark_windows(
    rounds: &[RoundReport],
    profile: &PhoneProfile,
) -> (Vec<SimDuration>, Vec<SimDuration>) {
    let beta = profile.beta();
    let durations = vec![beta; rounds.len()];
    let mut gaps = Vec::with_capacity(rounds.len().saturating_sub(1));
    // Floor between rounds: aggregation + global-model redistribution is
    // never instantaneous, and a nonzero gap keeps the Table-I stage
    // aggregation from merging adjacent training rounds.
    let gap_floor = SimDuration::from_secs(2);
    for pair in rounds.windows(2) {
        let startup = if pair[0].round == RoundId::FIRST {
            profile.lambda()
        } else {
            SimDuration::ZERO
        };
        let train_end = pair[0].started_at + startup + beta;
        gaps.push(
            pair[1]
                .started_at
                .saturating_duration_since(train_end)
                .max(gap_floor),
        );
    }
    (durations, gaps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::AggregationTrigger;
    use crate::spec::GradeRequirement;
    use simdc_cluster::ClusterConfig;
    use simdc_data::GeneratorConfig;
    use simdc_deviceflow::DispatchStrategy;
    use simdc_types::DeviceGrade;

    fn dataset() -> CtrDataset {
        CtrDataset::generate(&GeneratorConfig {
            n_devices: 40,
            n_test_devices: 8,
            mean_records_per_device: 20.0,
            feature_dim: 1 << 12,
            seed: 33,
            ..GeneratorConfig::default()
        })
    }

    fn substrates() -> (LogicalCluster, PhoneMgr, Storage) {
        (
            LogicalCluster::new(ClusterConfig::default()),
            PhoneMgr::paper_default(99),
            Storage::new(),
        )
    }

    fn base_spec(id: u64) -> TaskSpec {
        TaskSpec::builder(TaskId(id))
            .rounds(3)
            .grade(GradeRequirement {
                grade: DeviceGrade::High,
                total_devices: 20,
                benchmark_phones: 2,
                logical_unit_bundles: 40,
                units_per_device: 8,
                phones: 6,
            })
            .trigger(AggregationTrigger::DeviceThreshold { min_devices: 20 })
            .seed(5)
            .build()
            .unwrap()
    }

    #[test]
    fn end_to_end_task_improves_accuracy() {
        let data = dataset();
        let (mut cluster, mut phones, mut storage) = substrates();
        let runner = TaskRunner::default();
        let report = runner
            .execute(
                &base_spec(1),
                &data,
                &mut cluster,
                &mut phones,
                &mut storage,
                SimInstant::EPOCH,
            )
            .unwrap();
        assert_eq!(report.rounds.len(), 3);
        // Every round included every device.
        for r in &report.rounds {
            assert_eq!(r.included_updates, 20);
            assert!(r.trigger_fired);
        }
        // Loss decreases across rounds; accuracy is meaningful.
        let first = &report.rounds[0];
        let last = report.rounds.last().unwrap();
        assert!(last.train_loss < first.train_loss);
        assert!(last.eval.accuracy > 0.5, "acc {}", last.eval.accuracy);
        // Timeline is monotone.
        for pair in report.rounds.windows(2) {
            assert!(pair[1].started_at == pair[0].aggregated_at);
            assert!(pair[0].aggregated_at >= pair[0].started_at);
        }
        // Benchmark phones produced measurement reports.
        assert_eq!(report.benchmark_reports.len(), 2);
        assert!(report.finished_at >= report.rounds.last().unwrap().aggregated_at);
    }

    #[test]
    fn execution_is_deterministic() {
        let data = dataset();
        let runner = TaskRunner::default();
        let run = || {
            let (mut cluster, mut phones, mut storage) = substrates();
            runner
                .execute(
                    &base_spec(1),
                    &data,
                    &mut cluster,
                    &mut phones,
                    &mut storage,
                    SimInstant::EPOCH,
                )
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.final_model, b.final_model);
    }

    #[test]
    fn fixed_allocations_respect_fraction() {
        let data = dataset();
        let (mut cluster, mut phones, mut storage) = substrates();
        let mut spec = base_spec(2);
        spec.allocation = AllocationPolicy::FixedLogicalFraction(0.0);
        spec.rounds = 1;
        let runner = TaskRunner::new(RunnerConfig {
            measure_benchmarks: false,
            ..RunnerConfig::default()
        });
        let report = runner
            .execute(
                &spec,
                &data,
                &mut cluster,
                &mut phones,
                &mut storage,
                SimInstant::EPOCH,
            )
            .unwrap();
        assert_eq!(report.allocation.grades[0].logical_devices, 0);

        let mut spec = base_spec(3);
        spec.allocation = AllocationPolicy::FixedLogicalFraction(1.0);
        spec.rounds = 1;
        let report = runner
            .execute(
                &spec,
                &data,
                &mut cluster,
                &mut phones,
                &mut storage,
                SimInstant::EPOCH,
            )
            .unwrap();
        assert_eq!(report.allocation.grades[0].phone_devices, 0);
    }

    #[test]
    fn deviceflow_dropout_reduces_included_updates() {
        let data = dataset();
        let (mut cluster, mut phones, mut storage) = substrates();
        let mut spec = base_spec(4);
        spec.strategy = Some(DispatchStrategy::RealTimeAccumulated {
            thresholds: vec![1],
            failure_prob: 0.6,
        });
        spec.trigger = AggregationTrigger::Scheduled {
            period: SimDuration::from_mins(10),
        };
        spec.rounds = 2;
        let runner = TaskRunner::new(RunnerConfig {
            measure_benchmarks: false,
            ..RunnerConfig::default()
        });
        let report = runner
            .execute(
                &spec,
                &data,
                &mut cluster,
                &mut phones,
                &mut storage,
                SimInstant::EPOCH,
            )
            .unwrap();
        for r in &report.rounds {
            assert!(r.dropped_messages > 0, "{r:?}");
            assert!(r.included_updates < 20);
            assert!(r.included_updates + r.dropped_messages + r.stragglers >= 18);
        }
    }

    #[test]
    fn scheduled_trigger_drops_stragglers() {
        let data = dataset();
        let (mut cluster, mut phones, mut storage) = substrates();
        let mut spec = base_spec(5);
        // Aggregate well before the phones' λ + β ≈ 46 s completion.
        spec.trigger = AggregationTrigger::Scheduled {
            period: SimDuration::from_secs(40),
        };
        spec.rounds = 1;
        let runner = TaskRunner::new(RunnerConfig {
            measure_benchmarks: false,
            ..RunnerConfig::default()
        });
        let report = runner
            .execute(
                &spec,
                &data,
                &mut cluster,
                &mut phones,
                &mut storage,
                SimInstant::EPOCH,
            )
            .unwrap();
        let r = &report.rounds[0];
        assert!(r.stragglers > 0, "{r:?}");
        assert_eq!(r.aggregated_at, r.started_at + SimDuration::from_secs(40));
    }

    #[test]
    fn commit_skips_benchmark_runs_reassigned_to_another_task() {
        let data = dataset();
        let (mut cluster, mut phones, mut storage) = substrates();
        let runner = TaskRunner::default();
        let plan = runner
            .plan(
                &base_spec(7),
                &data,
                &mut cluster,
                &mut phones,
                &mut storage,
                SimInstant::EPOCH,
            )
            .unwrap();
        assert_eq!(plan.benchmark_phones.len(), 2);
        // Between plan and commit, one benchmark phone's run is replaced
        // by a later task's (possible once that phone's own window ends
        // while this task's finished_at extends further).
        let stolen = plan.benchmark_phones[0];
        {
            let phone = phones.phone_mut(stolen).unwrap();
            phone.reboot(); // wipes the old run so a new one can land
        }
        let foreign = simdc_phone::RunPlan::new(
            TaskId(99),
            stolen,
            SimInstant::EPOCH,
            &[SimDuration::from_secs(30)],
            &[],
        )
        .unwrap();
        phones.submit_run(stolen, foreign).unwrap();
        let report = runner.commit(plan, &mut phones).unwrap();
        // The reassigned phone contributes nothing; the other phone's
        // measurement is intact. No cross-task data attribution.
        assert_eq!(report.benchmark_reports.len(), 1);
        assert_ne!(report.benchmark_reports[0].phone, stolen);
    }

    #[test]
    fn plan_fails_when_churn_drains_a_grade_to_zero_phones() {
        let data = dataset();
        let (mut cluster, mut phones, mut storage) = substrates();
        // Churn-to-zero: every High phone leaves the fleet.
        let high_ids: Vec<_> = phones
            .phones()
            .iter()
            .filter(|p| p.grade() == DeviceGrade::High)
            .map(|p| p.id())
            .collect();
        for id in high_ids {
            phones.retire(id).unwrap();
        }
        // A task placing compute devices on High phones (no benchmark
        // phones, so the failure exercises the profile guard rather than
        // benchmark selection) must surface exhaustion, not plan against
        // the static paper profile.
        let mut spec = base_spec(11);
        spec.allocation = AllocationPolicy::FixedLogicalFraction(0.0);
        spec.grades[0].benchmark_phones = 0;
        let runner = TaskRunner::new(RunnerConfig {
            measure_benchmarks: false,
            ..RunnerConfig::default()
        });
        let err = runner
            .execute(
                &spec,
                &data,
                &mut cluster,
                &mut phones,
                &mut storage,
                SimInstant::EPOCH,
            )
            .unwrap_err();
        assert!(
            matches!(err, SimdcError::ResourceExhausted { .. }),
            "expected ResourceExhausted, got {err}"
        );
        // A fully-logical task on the same drained grade still plans fine.
        let mut logical = base_spec(12);
        logical.allocation = AllocationPolicy::FixedLogicalFraction(1.0);
        logical.grades[0].benchmark_phones = 0;
        logical.grades[0].phones = 0;
        runner
            .execute(
                &logical,
                &data,
                &mut cluster,
                &mut phones,
                &mut storage,
                SimInstant::EPOCH,
            )
            .unwrap();
    }

    #[test]
    fn storage_is_cleaned_after_rounds() {
        let data = dataset();
        let (mut cluster, mut phones, mut storage) = substrates();
        let runner = TaskRunner::new(RunnerConfig {
            measure_benchmarks: false,
            ..RunnerConfig::default()
        });
        runner
            .execute(
                &base_spec(6),
                &data,
                &mut cluster,
                &mut phones,
                &mut storage,
                SimInstant::EPOCH,
            )
            .unwrap();
        // Only the published global models remain (one per round).
        assert_eq!(storage.len(), 3);
    }
}
