//! The SimDC platform core: the paper's primary contribution.
//!
//! This crate assembles the substrates ([`simdc_cluster`], [`simdc_phone`],
//! [`simdc_deviceflow`]) into the platform of Fig 1:
//!
//! * [`spec`] — task design specifications (§III-A): operator flows,
//!   per-grade device populations and resource requests, priorities.
//! * [`queue`] / [`scheduler`] — the Task Queue and the greedy Task
//!   Scheduler (§III-B).
//! * [`resources`] — the Resource Manager: query / freeze / release /
//!   scale.
//! * [`alloc`] — the hybrid allocation optimizer (§IV-B): the exact integer
//!   minimizer of `T = max(Tl, Tp)` with the "prefer logical" secondary
//!   objective.
//! * [`cloud`] — shared storage, update codecs and aggregation triggers.
//! * [`runner`] — the Task Runner: executes the multi-round operator flow
//!   over hybrid resources, routes messages through DeviceFlow, trains real
//!   models with the dual numeric kernels, and aggregates with FedAvg.
//!   Execution is split into a *plan* phase (compute the per-round
//!   timeline, reserve benchmark phones) and a *commit* phase (take the
//!   measurements), so the platform can schedule completions as events.
//! * [`shard`] / [`dispatch`] — sharded parallel execution: fleet
//!   construction fanned out over a fixed worker pool, and batched
//!   plan-phase computation whose deterministic admission-order merge
//!   keeps `--threads N` byte-identical to `--threads 1`.
//! * [`invariants`] — the platform-invariant oracles (freeze/release
//!   pairing, capacity bounds, terminal-state immutability, billing
//!   reconciliation) shared by the debug assertions and the scenario
//!   fuzzer's post-run checks.
//! * [`platform`] — the façade tying everything together on the
//!   [`simdc_simrt`] discrete-event queue: completions are events,
//!   resources release at each task's actual completion instant, and the
//!   scheduler re-runs on every completion and arrival.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use simdc_core::cloud::AggregationTrigger;
//! use simdc_core::platform::Platform;
//! use simdc_core::spec::{GradeRequirement, TaskSpec};
//! use simdc_data::{CtrDataset, GeneratorConfig};
//! use simdc_types::{DeviceGrade, TaskId};
//!
//! let mut platform = Platform::paper_default();
//! let data = Arc::new(CtrDataset::generate(&GeneratorConfig {
//!     n_devices: 20,
//!     n_test_devices: 4,
//!     feature_dim: 1 << 12,
//!     ..GeneratorConfig::default()
//! }));
//! let spec = TaskSpec::builder(TaskId(1))
//!     .rounds(2)
//!     .grade(GradeRequirement::sized(DeviceGrade::High, 10))
//!     .trigger(AggregationTrigger::DeviceThreshold { min_devices: 10 })
//!     .build()?;
//! platform.submit(spec, data)?;
//! platform.run_until_idle();
//! let report = platform.report(TaskId(1)).expect("completed");
//! assert_eq!(report.rounds.len(), 2);
//! # Ok::<(), simdc_types::SimdcError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod alloc;
pub mod cloud;
pub mod dispatch;
pub mod invariants;
pub mod platform;
pub mod queue;
pub mod resources;
pub mod runner;
pub mod scheduler;
pub mod shard;
pub mod spec;

pub use alloc::{optimize, Allocation, GradeAllocParams, GradeAllocation};
pub use cloud::{AggregationTrigger, RoundOutcome, Storage};
pub use invariants::InvariantViolation;
pub use platform::{Platform, PlatformConfig, PlatformStatus, SourceRunStats, SubmissionSource};
pub use queue::{TaskQueue, TaskRecord, TaskState};
pub use resources::{ResourceClaim, ResourceManager};
pub use runner::{RoundReport, RunnerConfig, TaskPlan, TaskReport, TaskRunner};
pub use scheduler::GreedyScheduler;
pub use spec::{
    AllocationPolicy, GradeRequirement, Operator, OperatorFlow, TaskSpec, TaskSpecBuilder,
};
