//! The SimDC platform facade: Task Manager + Resource Manager + substrates
//! wired together.
//!
//! [`Platform`] owns the logical cluster, the phone fleet, shared storage
//! and the task queue. Tasks are submitted with their dataset, admitted by
//! the greedy scheduler as resources allow, executed by the
//! [`crate::runner::TaskRunner`] on the virtual timeline, and their
//! [`TaskReport`]s retained for inspection — the programmatic equivalent of
//! the paper's GUI monitoring.
//!
//! # Event-driven core
//!
//! The platform loop is a discrete-event simulation riding the
//! [`simdc_simrt`] event queue. Admitting a task plans its entire virtual
//! timeline ([`TaskRunner::plan`]) and schedules a *completion event* at
//! its `finished_at` instant; popping that event releases the task's
//! resource lease at the task's actual completion instant and immediately
//! re-runs the greedy scheduler, so queued work starts the moment capacity
//! frees — not at the end of an admission wave. [`Platform::run_from_source`]
//! interleaves arrivals with pending completions on the same timeline,
//! which is what keeps queueing delays honest under sustained traffic.

use std::collections::BTreeMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use simdc_cluster::{ClusterConfig, LogicalCluster};
use simdc_data::CtrDataset;
use simdc_phone::mgr::FleetSpec;
use simdc_phone::PhoneMgr;
use simdc_simrt::EventQueue;
use simdc_types::{PerGrade, ResourceBundle, Result, SimDuration, SimInstant, SimdcError, TaskId};

use crate::cloud::Storage;
use crate::queue::{TaskQueue, TaskState};
use crate::resources::ResourceManager;
use crate::runner::{RunnerConfig, TaskPlan, TaskReport, TaskRunner};
use crate::scheduler::GreedyScheduler;
use crate::spec::TaskSpec;

/// Platform-wide configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Logical-simulation cluster.
    pub cluster: ClusterConfig,
    /// Phone fleet composition.
    pub fleet: FleetSpec,
    /// Benchmark polling interval.
    pub poll_interval: SimDuration,
    /// Runner tunables.
    pub runner: RunnerConfig,
    /// Platform seed (forked per phone/task).
    pub seed: u64,
    /// Worker threads for sharded execution: fleet construction and
    /// plan-phase computation fan out over a fixed pool of this size.
    /// `0` and `1` both mean fully sequential (the classic code path).
    /// Results are byte-identical for every value — threads only change
    /// wall-clock time — so the knob is excluded from serialized configs
    /// and golden fixtures.
    #[serde(skip)]
    pub threads: usize,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            cluster: ClusterConfig::default(),
            fleet: FleetSpec::paper_default(),
            poll_interval: SimDuration::from_secs(1),
            runner: RunnerConfig::default(),
            seed: 0x51AD_C0DE,
            threads: 0,
        }
    }
}

/// A point-in-time view of the platform (what the paper's GUI displays).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlatformStatus {
    /// Virtual clock.
    pub now: SimInstant,
    /// Tasks waiting.
    pub pending: usize,
    /// Tasks executing.
    pub running: usize,
    /// Tasks finished (completed or failed).
    pub finished: usize,
    /// Free unit bundles.
    pub free_bundles: u64,
    /// Free phones per grade.
    pub free_phones: PerGrade<u64>,
    /// Physical cloud nodes (any lifecycle state).
    pub nodes: u64,
    /// Cloud nodes up and accepting placements.
    pub ready_nodes: u64,
}

/// A stream of task submissions arriving over virtual time — the scenario
/// side of the platform (workload generators implement this; a static task
/// list is just the degenerate constant-time case).
///
/// Arrival instants must be non-decreasing; [`Platform::run_from_source`]
/// panics otherwise, because out-of-order arrivals would silently break
/// determinism.
pub trait SubmissionSource {
    /// The next submission: `(arrival instant, spec, dataset)`, or `None`
    /// when the stream is exhausted.
    fn next_submission(&mut self) -> Option<(SimInstant, TaskSpec, Arc<CtrDataset>)>;
}

/// Outcome counters of [`Platform::run_from_source`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceRunStats {
    /// Submissions accepted into the queue.
    pub submitted: usize,
    /// Submissions rejected at the door (validation / infeasible claims).
    pub rejected: usize,
    /// Tasks that ran to completion.
    pub completed: usize,
}

/// The platform's internal event alphabet.
#[derive(Debug)]
enum PlatformEvent {
    /// A running task reaches its planned completion instant: commit the
    /// plan, release the lease and placement groups, re-run the
    /// scheduler.
    Completion(TaskId),
    /// An elastic scale-up finishes booting: the cluster's new capacity
    /// becomes placeable, so re-run the scheduler — blocked placements
    /// admit here instead of failing.
    NodeReady,
}

/// The assembled platform.
pub struct Platform {
    cluster: LogicalCluster,
    phones: PhoneMgr,
    storage: Storage,
    rm: ResourceManager,
    queue: TaskQueue,
    scheduler: GreedyScheduler,
    runner: TaskRunner,
    datasets: BTreeMap<TaskId, Arc<CtrDataset>>,
    reports: BTreeMap<TaskId, TaskReport>,
    /// Planned executions of running tasks, keyed by task; each has a
    /// matching completion event in `events`.
    plans: BTreeMap<TaskId, TaskPlan>,
    /// Per-pending-task actor-bundle placement requests, computed once at
    /// submission (the allocation is deterministic in the spec and cost
    /// model). Scheduling passes run the cloud placement trial against
    /// this cache; entries leave when the task leaves the pending state.
    placement_reqs: BTreeMap<TaskId, Vec<(ResourceBundle, u64)>>,
    /// Pending completion events on the virtual timeline.
    events: EventQueue<PlatformEvent>,
    /// Completion events processed so far — including tasks that failed
    /// at commit (scenario drivers fold this into their event totals).
    completion_events: u64,
    /// Node-ready (elastic scale-up) events processed so far.
    cluster_events: u64,
    /// Fixed worker pool for sharded execution; a 1-thread pool keeps
    /// every code path sequential.
    pool: minipool::FixedPool,
    clock: SimInstant,
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Platform")
            .field("clock", &self.clock)
            .field("tasks", &self.queue.census())
            .finish_non_exhaustive()
    }
}

impl Platform {
    /// Builds a platform from `config`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid cluster configuration (validate it first for a
    /// recoverable error).
    #[must_use]
    pub fn new(config: PlatformConfig) -> Self {
        let pool = minipool::FixedPool::new(config.threads.max(1));
        let cluster = LogicalCluster::new(config.cluster.clone());
        let phones =
            crate::shard::build_fleet(&pool, config.fleet, config.poll_interval, config.seed);
        let total_bundles = cluster.free_unit_bundles();
        let total_phones = PerGrade::from_fn(|g| phones.count(g, None) as u64);
        Platform {
            cluster,
            phones,
            storage: Storage::new(),
            rm: ResourceManager::new(total_bundles, total_phones),
            queue: TaskQueue::new(),
            scheduler: GreedyScheduler::new(),
            runner: TaskRunner::new(config.runner),
            datasets: BTreeMap::new(),
            reports: BTreeMap::new(),
            plans: BTreeMap::new(),
            placement_reqs: BTreeMap::new(),
            events: EventQueue::new(),
            completion_events: 0,
            cluster_events: 0,
            pool,
            clock: SimInstant::EPOCH,
        }
    }

    /// Builds the paper's default platform (200-core cluster, 30 phones).
    #[must_use]
    pub fn paper_default() -> Self {
        Platform::new(PlatformConfig::default())
    }

    /// Submits a task with its dataset. Tasks start when the scheduler
    /// admits them — during [`Platform::run_until_idle`],
    /// [`Platform::run_until`], or at the first completion event that
    /// frees their claim.
    ///
    /// Feasibility is checked against the *live* fleet: per-grade phone
    /// totals are recomputed from the phone manager on every submission
    /// (and the Resource Manager resynced), so fleet churn injectors that
    /// register or retire phones cannot leave admission decisions keyed to
    /// a stale construction-time snapshot.
    ///
    /// # Errors
    ///
    /// Returns validation errors, duplicates, and `InvalidConfig` when the
    /// task could never fit the platform's total capacity.
    pub fn submit(&mut self, spec: TaskSpec, dataset: Arc<CtrDataset>) -> Result<TaskId> {
        spec.validate()?;
        self.sync_fleet_totals();
        // Bundle feasibility checks against the elastic *ceiling* (max
        // nodes, budget cap applied), not the capacity that happens to be
        // booted right now: a task needing a scale-out queues and waits
        // for the node-ready event instead of being rejected at the door.
        if !self.scheduler.feasible_at_all(
            &spec,
            self.cluster.capacity_ceiling_units(),
            self.rm.total_phones(),
        ) {
            return Err(SimdcError::ResourceExhausted {
                requested: format!("claim of task {}", spec.id),
                available: "total platform capacity".into(),
            });
        }
        // The allocation (and thus the actor-bundle placement requests)
        // is a deterministic function of the spec and the cost model, so
        // compute it once here and cache it: scheduling passes run the
        // placement trial against the cache instead of re-running the
        // allocation optimizer per pending task per pass. A task whose
        // actor bundles could never be placed even on an empty
        // fully-scaled pool (per-node fragmentation the aggregate unit
        // ceiling misses) is rejected now rather than booting nodes it
        // can never use and starving later.
        let requests = self
            .runner
            .plan_allocation(&spec, &self.cluster)
            .map(|alloc| TaskRunner::placement_requests(&spec, &alloc, &self.cluster))
            .ok();
        if let Some(requests) = &requests {
            if !self.cluster.could_ever_place(requests) {
                return Err(SimdcError::ResourceExhausted {
                    requested: format!("actor placement of task {}", spec.id),
                    available: "fully scaled-out node pool".into(),
                });
            }
        }
        let id = spec.id;
        self.queue.submit(spec)?;
        self.datasets.insert(id, dataset);
        if let Some(requests) = requests {
            self.placement_reqs.insert(id, requests);
        }
        Ok(id)
    }

    /// Resyncs the Resource Manager's per-grade phone totals with the
    /// phone manager's current fleet. [`PhoneMgr::count`] answers from
    /// the grade index's registration totals, so the resync is O(1)
    /// however large the fleet — it runs on every scheduling pass.
    fn sync_fleet_totals(&mut self) {
        let totals = PerGrade::from_fn(|g| self.phones.count(g, None) as u64);
        if totals != self.rm.total_phones() {
            self.rm.set_total_phones(totals);
        }
    }

    /// Resyncs the Resource Manager's unit-bundle total with the logical
    /// cluster's *ready* capacity — the elastic tier's contribution to
    /// admission arithmetic. Runs on every scheduling pass, so booted and
    /// retired nodes are visible the instant the clock passes their
    /// lifecycle event.
    fn sync_cluster_totals(&mut self) {
        let ready = self.cluster.ready_unit_capacity();
        if ready != self.rm.total_bundles() {
            self.rm.set_total_bundles(ready);
        }
    }

    /// One scheduling pass: advances the cluster's lifecycle clock, admits
    /// every pending task whose claim fits *and* whose placement groups
    /// can be placed on the ready nodes right now, plans its execution
    /// from the current clock, and schedules its completion event. Tasks
    /// whose placement would block (capacity still booting, free units
    /// fragmented) stay pending — their demand drives the autoscaler at
    /// the end of the pass, and the resulting node-ready event re-runs
    /// the scheduler. Tasks whose plan fails outright (e.g. no idle
    /// benchmark phone) release their lease and fail. Returns the
    /// admitted count.
    ///
    /// Fleet totals are resynced first, so passes triggered by
    /// completions (not just submissions) also see phones registered or
    /// retired through [`Platform::phones_mut`] since the last pass.
    fn dispatch_pending(&mut self) -> usize {
        self.debug_assert_capacity_bounds();
        self.cluster.advance_to(self.clock);
        self.sync_fleet_totals();
        self.sync_cluster_totals();
        let started = {
            let cluster = &self.cluster;
            let reqs = &self.placement_reqs;
            self.scheduler
                .schedule_filtered(&self.queue, &mut self.rm, |spec| {
                    // No cached requests means the allocation failed at
                    // submit: let `plan` surface the real error on the
                    // normal failure path.
                    reqs.get(&spec.id).is_none_or(|r| cluster.can_place_all(r))
                })
        };
        let admitted = if self.pool.threads() > 1 && started.len() >= 2 {
            self.admit_batch(started)
        } else {
            self.admit_sequential(started)
        };
        self.autoscale_for_pending();
        admitted
    }

    /// Sequential admission: each started task runs its full plan before
    /// the next task's placement re-trial. This is the reference ordering
    /// the batch path reproduces.
    fn admit_sequential(&mut self, started: Vec<TaskId>) -> usize {
        let mut admitted = 0;
        for id in started {
            // Re-run the placement trial against the *current* pool: a
            // task admitted earlier in this very pass has acquired its
            // groups by now, and a candidate that fit the pre-pass pool
            // may no longer place. It must go back to pending (wait for
            // a completion or node-ready event), not fall through to
            // `plan` and fail permanently.
            let still_places = self
                .placement_reqs
                .get(&id)
                .is_none_or(|r| self.cluster.can_place_all(r));
            if !still_places {
                self.rm.release(id);
                continue;
            }
            let start = self.clock;
            if self.queue.mark_running(id, start).is_err() {
                // Keep freeze/release strictly paired: the scheduler froze
                // the claim, so a refused admission must give it back.
                self.rm.release(id);
                continue;
            }
            let spec = self.queue.get(id).expect("just marked").spec.clone();
            let dataset = self
                .datasets
                .get(&id)
                .expect("dataset registered at submit")
                .clone();
            match self.runner.plan(
                &spec,
                &dataset,
                &mut self.cluster,
                &mut self.phones,
                &mut self.storage,
                start,
            ) {
                Ok(plan) => {
                    self.events
                        .push(plan.finished_at(), PlatformEvent::Completion(id));
                    self.plans.insert(id, plan);
                    self.placement_reqs.remove(&id);
                    admitted += 1;
                }
                Err(err) => {
                    self.rm.release(id);
                    self.placement_reqs.remove(&id);
                    let _ = self.queue.mark_failed(id, err.to_string());
                }
            }
        }
        admitted
    }

    /// Batched admission: the serial prepare step runs per task in
    /// admission order (placement re-trial, `mark_running`, device
    /// binding with the reserved-phone overlay, group acquisition,
    /// actor-id reservation), the expensive plan-phase computation fans
    /// out over the worker pool, and results merge back in admission
    /// order — completion events are pushed in the same order the
    /// sequential path would push them, so `(time, seq)` pairs match.
    ///
    /// One documented divergence: a task whose plan fails *in the worker*
    /// releases its placement groups at merge, after every placement
    /// re-trial has already run, whereas the sequential path releases
    /// them before later tasks' trials. A later task whose placement only
    /// fits in the failed task's absence therefore waits for the next
    /// scheduling pass instead of admitting in this one. Plan failures
    /// after group acquisition cannot occur in the shipped scenarios, so
    /// threaded parity holds end-to-end there.
    fn admit_batch(&mut self, started: Vec<TaskId>) -> usize {
        let mut reserved: std::collections::BTreeSet<simdc_types::PhoneId> =
            std::collections::BTreeSet::new();
        let mut prepared: Vec<(TaskId, crate::dispatch::Prepared)> =
            Vec::with_capacity(started.len());
        let mut admitted = 0;
        for id in started {
            // Same re-trial as the sequential path: prepare acquires each
            // admitted task's groups immediately, so the pool this trial
            // sees matches what sequential admission would have seen.
            let still_places = self
                .placement_reqs
                .get(&id)
                .is_none_or(|r| self.cluster.can_place_all(r));
            if !still_places {
                self.rm.release(id);
                continue;
            }
            let start = self.clock;
            if self.queue.mark_running(id, start).is_err() {
                self.rm.release(id);
                continue;
            }
            let spec = self.queue.get(id).expect("just marked").spec.clone();
            let dataset = self
                .datasets
                .get(&id)
                .expect("dataset registered at submit")
                .clone();
            let req = crate::dispatch::PlanRequest {
                spec,
                dataset,
                start,
            };
            match crate::dispatch::prepare(
                &self.runner,
                req,
                &mut self.cluster,
                &self.phones,
                &reserved,
            ) {
                Ok(p) => {
                    reserved.extend(p.reserved_phones());
                    prepared.push((id, p));
                }
                Err(err) => {
                    self.rm.release(id);
                    self.placement_reqs.remove(&id);
                    let _ = self.queue.mark_failed(id, err.to_string());
                }
            }
        }
        let outcomes = crate::dispatch::compute_and_merge(
            &self.runner,
            prepared,
            &mut self.cluster,
            &mut self.phones,
            &mut self.storage,
            &self.pool,
        );
        for (id, result) in outcomes {
            match result {
                Ok(plan) => {
                    self.events
                        .push(plan.finished_at(), PlatformEvent::Completion(id));
                    self.plans.insert(id, plan);
                    self.placement_reqs.remove(&id);
                    admitted += 1;
                }
                Err(err) => {
                    self.rm.release(id);
                    self.placement_reqs.remove(&id);
                    let _ = self.queue.mark_failed(id, err.to_string());
                }
            }
        }
        admitted
    }

    /// Derives the queue pressure left after a scheduling pass — the
    /// unit-bundle claims of still-pending tasks whose *phone* needs
    /// currently fit (a phone-starved task should not boot cloud nodes) —
    /// and runs one autoscaler pass with it. A scale-up schedules the
    /// node-ready event that will wake the scheduler when the capacity
    /// becomes placeable.
    fn autoscale_for_pending(&mut self) {
        let mut demand_units = 0u64;
        for id in self.queue.iter_pending() {
            let Some(record) = self.queue.get(id) else {
                continue;
            };
            let claim = crate::scheduler::claim_for(&record.spec);
            let phones_fit = simdc_types::DeviceGrade::ALL
                .iter()
                .all(|&g| *claim.phones.get(g) <= self.rm.free_phones(g));
            if phones_fit {
                demand_units += claim.unit_bundles;
            }
        }
        match self.cluster.autoscale(demand_units, self.clock) {
            simdc_cluster::ScalingAction::ScaleUp {
                ready_at,
                reclaimed,
                ..
            } => {
                self.events.push(ready_at, PlatformEvent::NodeReady);
                if reclaimed > 0 {
                    // Reclaimed drains are ready *now*, not at `ready_at`:
                    // wake the scheduler at the current instant too.
                    self.wake_on_reclaim();
                }
            }
            simdc_cluster::ScalingAction::Reclaim { .. } => {
                // Draining nodes returned to ready service with no boot —
                // capacity reappeared at this very instant. Without the
                // immediate node-ready event the blocked tasks would sit
                // until the next unrelated completion/arrival tick (the
                // drain-then-burst admission delay this fixes).
                self.wake_on_reclaim();
            }
            simdc_cluster::ScalingAction::ScaleIn { .. } => {
                // Draining shrinks the ready capacity at this very
                // instant — resync so admission arithmetic (and the idle
                // free==total invariant) stays consistent within the pass.
                self.sync_cluster_totals();
            }
            simdc_cluster::ScalingAction::Hold => {}
        }
    }

    /// Reacts to reclaimed draining nodes: resyncs the cluster totals
    /// (ready capacity grew at this instant) and schedules a node-ready
    /// event *at the current clock* so the event loop re-runs placement
    /// immediately. Bounded: each reclaim consumes a draining node, so
    /// the wake-ups cannot recur without fresh drains.
    fn wake_on_reclaim(&mut self) {
        self.sync_cluster_totals();
        self.events.push(self.clock, PlatformEvent::NodeReady);
    }

    /// Handles one completion event: commits the plan (taking the
    /// benchmark measurements), releases the lease and the task's
    /// placement groups at the completion instant, and records the final
    /// state. Returns whether the task completed (vs. failed at commit).
    fn finish(&mut self, id: TaskId, at: SimInstant) -> bool {
        self.debug_assert_capacity_bounds();
        self.clock = self.clock.max(at);
        self.completion_events += 1;
        let plan = self.plans.remove(&id).expect("completion without a plan");
        // Give the cloud capacity back at the completion instant — the
        // next scheduling pass (and its autoscale) sees the freed nodes.
        for pg in plan.placement_groups() {
            self.cluster.release_job(*pg);
        }
        let committed = self.runner.commit(plan, &mut self.phones);
        // Release exactly once per freeze, whatever the commit outcome.
        self.rm.release(id);
        match committed {
            Ok(report) => {
                self.reports.insert(id, report);
                let _ = self.queue.mark_completed(id, at);
                true
            }
            Err(err) => {
                let _ = self.queue.mark_failed(id, err.to_string());
                false
            }
        }
    }

    /// Fails every still-pending task: nothing is running, so no future
    /// completion can ever free the capacity they are waiting for. Pending
    /// tasks hold no lease — failing them involves no release.
    fn fail_starved(&mut self) {
        for id in self.queue.pending_by_priority() {
            self.placement_reqs.remove(&id);
            let _ = self
                .queue
                .mark_failed(id, "resources never became available");
        }
        self.debug_assert_idle_capacity();
    }

    /// At idle (no running task, no pending completion) every freeze must
    /// have been paired with its release: free capacity equals total
    /// capacity. Catches lease leaks like failing a running task without
    /// releasing its claim. Shares its oracle with the post-run checks —
    /// see [`crate::invariants::idle_violations`].
    fn debug_assert_idle_capacity(&self) {
        if cfg!(debug_assertions) {
            let violations =
                crate::invariants::idle_violations(&self.rm, self.cluster.active_jobs());
            assert!(
                violations.is_empty(),
                "invariant violated at idle: {violations:?}"
            );
        }
    }

    /// Free capacity never exceeds total capacity — asserted (debug
    /// builds) at every dispatch and completion event, so a double
    /// release aborts at the event that exhibits it instead of drifting
    /// into the summaries. See [`crate::invariants::capacity_violations`].
    fn debug_assert_capacity_bounds(&self) {
        if cfg!(debug_assertions) {
            let violations = crate::invariants::capacity_violations(&self.rm);
            assert!(
                violations.is_empty(),
                "capacity bound violated: {violations:?}"
            );
        }
    }

    /// Runs the event loop until no task is pending or running: every
    /// completion is an event on the virtual timeline; popping one
    /// releases that task's resources at its actual completion instant
    /// and immediately re-runs the scheduler, so queued tasks start at
    /// the first instant their claim fits. Returns the number of tasks
    /// completed.
    pub fn run_until_idle(&mut self) -> usize {
        let mut completed = 0usize;
        loop {
            self.dispatch_pending();
            match self.events.pop() {
                Some((at, PlatformEvent::Completion(id))) => {
                    if self.finish(id, at) {
                        completed += 1;
                    }
                }
                Some((at, PlatformEvent::NodeReady)) => {
                    // The next dispatch advances the cluster to this
                    // instant, making the booted capacity placeable.
                    self.clock = self.clock.max(at);
                    self.cluster_events += 1;
                }
                None => {
                    // Nothing running and no capacity in flight: whatever
                    // is still pending is starved — fail it loudly rather
                    // than spin. (A pending task waiting on a scale-up
                    // always has a NodeReady event here; reaching `None`
                    // means the autoscaler can do no more for it.)
                    self.fail_starved();
                    break;
                }
            }
        }
        completed
    }

    /// Runs every completion event due at or before `deadline` (admitting
    /// queued tasks at each freed-capacity instant), then advances the
    /// clock to `deadline` and runs a final scheduling pass there.
    /// Completions planned after `deadline` stay queued. Returns the
    /// number of tasks completed.
    ///
    /// Scenario drivers paced by an outer event loop use this instead of
    /// [`Platform::run_until_idle`] so the platform never runs ahead of
    /// the outer timeline.
    pub fn run_until(&mut self, deadline: SimInstant) -> usize {
        // Admit at the current clock first: a task submitted to an idle
        // platform starts now, not at the arbitrary deadline.
        self.dispatch_pending();
        let mut completed = 0usize;
        while let Some((at, event)) = self.events.pop_before(deadline) {
            match event {
                PlatformEvent::Completion(id) => {
                    if self.finish(id, at) {
                        completed += 1;
                    }
                }
                PlatformEvent::NodeReady => {
                    self.clock = self.clock.max(at);
                    self.cluster_events += 1;
                }
            }
            self.dispatch_pending();
        }
        self.advance_clock_to(deadline);
        self.dispatch_pending();
        completed
    }

    /// Drains a [`SubmissionSource`]: tasks arrive over virtual time,
    /// queue up, and are admitted *mid-flight* — an arrival is interleaved
    /// with the completion events due before it, so a task starts at the
    /// first completion instant that frees its claim instead of waiting
    /// for a whole admission wave to drain. Queueing delay is visible as
    /// `started_at - arrival`.
    ///
    /// # Panics
    ///
    /// Panics if the source yields decreasing arrival instants.
    pub fn run_from_source(&mut self, source: &mut dyn SubmissionSource) -> SourceRunStats {
        let mut stats = SourceRunStats::default();
        let mut last_arrival = SimInstant::EPOCH;
        let mut carried: Option<(SimInstant, TaskSpec, Arc<CtrDataset>)> = None;
        while let Some((at, spec, data)) = carried.take().or_else(|| source.next_submission()) {
            assert!(
                at >= last_arrival,
                "submission source went back in time ({at} < {last_arrival})"
            );
            last_arrival = at;
            stats.completed += self.sync_to_arrival(at);
            match self.submit(spec, data) {
                Ok(_) => stats.submitted += 1,
                Err(_) => stats.rejected += 1,
            }
            // Batch further arrivals at the same instant, so simultaneous
            // submissions are admitted in one scheduler pass — priority
            // order, not source order.
            while let Some((at2, spec2, data2)) = source.next_submission() {
                assert!(
                    at2 >= at,
                    "submission source went back in time ({at2} < {at})"
                );
                if at2 > at {
                    carried = Some((at2, spec2, data2));
                    break;
                }
                match self.submit(spec2, data2) {
                    Ok(_) => stats.submitted += 1,
                    Err(_) => stats.rejected += 1,
                }
            }
            self.dispatch_pending();
        }
        stats.completed += self.run_until_idle();
        stats
    }

    /// Advances the platform to arrival instant `at` with the tie
    /// discipline [`Platform::run_from_source`] uses: completions
    /// *strictly before* `at` are processed normally (each re-running the
    /// scheduler), while completions at exactly `at` release their leases
    /// *without* a scheduling pass. The caller then submits the arrivals
    /// due at `at` and calls [`Platform::admit_now`], so one pass sees
    /// both the freed capacity and the new tasks — priority decides the
    /// tie, not arrival-vs-completion ordering. Returns the number of
    /// tasks completed.
    pub fn sync_to_arrival(&mut self, at: SimInstant) -> usize {
        let mut completed = 0usize;
        // Everything completing (or booting) strictly before the arrival
        // happens first — including the admissions those events unlock.
        while self.events.peek_time().is_some_and(|t| t < at) {
            let (t, event) = self.events.pop().expect("peeked event vanished");
            match event {
                PlatformEvent::Completion(id) => {
                    if self.finish(id, t) {
                        completed += 1;
                    }
                }
                PlatformEvent::NodeReady => {
                    self.clock = self.clock.max(t);
                    self.cluster_events += 1;
                }
            }
            self.dispatch_pending();
        }
        self.advance_clock_to(at);
        // Events at exactly the arrival instant: completions release
        // their leases, node-readies make capacity visible — but
        // admission is deferred to the caller's post-submit pass, so one
        // pass sees freed capacity, fresh nodes and the new tasks
        // together and priority decides the tie.
        while let Some((t, event)) = self.events.pop_before(at) {
            match event {
                PlatformEvent::Completion(id) => {
                    if self.finish(id, t) {
                        completed += 1;
                    }
                }
                PlatformEvent::NodeReady => {
                    self.cluster_events += 1;
                }
            }
        }
        completed
    }

    /// Runs one scheduling pass at the current clock, admitting every
    /// pending task whose claim fits. Returns the number admitted.
    pub fn admit_now(&mut self) -> usize {
        self.dispatch_pending()
    }

    /// Advances the virtual clock to `at` (no-op if the clock is already
    /// past it). Scenario drivers use this to sync the platform with an
    /// outer event loop before injecting work or fleet events.
    pub fn advance_clock_to(&mut self, at: SimInstant) {
        self.clock = self.clock.max(at);
    }

    /// Completion events processed since construction, counting tasks
    /// that failed at commit as well as successes — the platform's share
    /// of a scenario's total event count.
    #[must_use]
    pub fn completion_events(&self) -> u64 {
        self.completion_events
    }

    /// Node-ready (elastic scale-up) events processed since construction
    /// — the cloud tier's share of a scenario's total event count.
    #[must_use]
    pub fn cluster_events(&self) -> u64 {
        self.cluster_events
    }

    /// The report of a completed task.
    #[must_use]
    pub fn report(&self, id: TaskId) -> Option<&TaskReport> {
        self.reports.get(&id)
    }

    /// The lifecycle state of a task.
    #[must_use]
    pub fn task_state(&self, id: TaskId) -> Option<&TaskState> {
        self.queue.get(id).map(|r| &r.state)
    }

    /// Point-in-time status snapshot.
    #[must_use]
    pub fn status(&self) -> PlatformStatus {
        let (pending, running, finished) = self.queue.census();
        PlatformStatus {
            now: self.clock,
            pending,
            running,
            finished,
            free_bundles: self.rm.free_bundles(),
            free_phones: PerGrade::from_fn(|g| self.rm.free_phones(g)),
            nodes: self.cluster.pool().len() as u64,
            ready_nodes: self.cluster.pool().ready_count() as u64,
        }
    }

    /// The phone manager (e.g. for fleet inspection).
    #[must_use]
    pub fn phones(&self) -> &PhoneMgr {
        &self.phones
    }

    /// Mutable access to the phone manager — the hook fleet-dynamics
    /// injectors (churn, stragglers, benchmark failures) use to perturb
    /// the fleet between scheduling passes.
    ///
    /// Fleet *size* changes through this handle are tolerated: the
    /// Resource Manager's per-grade totals are resynced from the phone
    /// manager on every submission, so admission feasibility always sees
    /// the live fleet rather than a construction-time snapshot.
    pub fn phones_mut(&mut self) -> &mut PhoneMgr {
        &mut self.phones
    }

    /// The logical cluster.
    #[must_use]
    pub fn cluster(&self) -> &LogicalCluster {
        &self.cluster
    }

    /// Flushes the cluster's cost meter to the current clock and returns
    /// the total spend. The scenario-end billing point: a run ending
    /// mid-hour still pays for its final partial node-hour, so reported
    /// cost always equals billed node-seconds × the hourly rate.
    pub fn finalize_cost(&mut self) -> f64 {
        self.cluster.finalize_cost(self.clock)
    }

    /// Shared storage.
    #[must_use]
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// `mark_*` calls the task queue rejected because the task was
    /// already terminal — the clobber-attempt counter behind invariant
    /// oracle 3 ([`crate::invariants::clobber_violation`]).
    #[must_use]
    pub fn terminal_clobber_attempts(&self) -> u64 {
        self.queue.terminal_clobber_attempts()
    }

    /// Runs every post-run invariant oracle and returns the violations
    /// (empty on a healthy platform). Meant for a *drained* platform —
    /// nothing pending or running, [`Platform::finalize_cost`] already
    /// called (scenario runs do both before handing the platform back):
    ///
    /// 1. freeze/release pairing — free == total at idle, no lease or
    ///    placement group held;
    /// 2. capacity bounds — free ≤ total for bundles and every grade;
    /// 3. no terminal-state clobber — zero rejected terminal transitions;
    /// 4. billing reconciliation — reported spend equals billed
    ///    node-seconds × the hourly rate.
    ///
    /// The scenario fuzzer asserts this after every sampled spec; tests
    /// that want one oracle in isolation use [`crate::invariants`]
    /// directly.
    #[must_use]
    pub fn invariant_violations(&self) -> Vec<crate::invariants::InvariantViolation> {
        let mut violations = crate::invariants::capacity_violations(&self.rm);
        violations.extend(crate::invariants::idle_violations(
            &self.rm,
            self.cluster.active_jobs(),
        ));
        violations.extend(crate::invariants::clobber_violation(
            self.queue.terminal_clobber_attempts(),
        ));
        let stats = self.cluster.stats();
        violations.extend(crate::invariants::billing_violation(
            stats.cost_accrued,
            self.cluster.node_seconds(),
            self.cluster.cost().node_hourly_cost,
        ));
        violations
    }

    /// Test-harness fault injector: replays the pre-PR-3 starvation-sweep
    /// bug by attempting to fail *every* submitted task, including ones
    /// already in a terminal state. The `mark_*` guards reject the
    /// terminal transitions and the queue counts each attempt, so
    /// [`Platform::invariant_violations`] reports a `TerminalClobber`
    /// afterwards — this is how the fuzzer's shrinker test proves the
    /// oracle catches the regression. Pending tasks (none remain after a
    /// drained run) genuinely fail, exactly like the historical sweep.
    /// Returns the clobber attempts recorded so far.
    pub fn inject_terminal_clobber_fault(&mut self) -> u64 {
        for id in self.queue.all_ids() {
            let _ = self
                .queue
                .mark_failed(id, "injected fault: starvation sweep ignored task state");
        }
        self.queue.terminal_clobber_attempts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::AggregationTrigger;
    use crate::spec::GradeRequirement;
    use simdc_data::GeneratorConfig;
    use simdc_types::DeviceGrade;

    fn dataset() -> Arc<CtrDataset> {
        Arc::new(CtrDataset::generate(&GeneratorConfig {
            n_devices: 30,
            n_test_devices: 6,
            mean_records_per_device: 15.0,
            feature_dim: 1 << 12,
            seed: 77,
            ..GeneratorConfig::default()
        }))
    }

    fn small_spec(id: u64, priority: u32) -> TaskSpec {
        TaskSpec::builder(TaskId(id))
            .priority(priority)
            .rounds(2)
            .grade(GradeRequirement {
                grade: DeviceGrade::High,
                total_devices: 12,
                benchmark_phones: 1,
                logical_unit_bundles: 24,
                units_per_device: 8,
                phones: 3,
            })
            .trigger(AggregationTrigger::DeviceThreshold { min_devices: 12 })
            .seed(id)
            .build()
            .unwrap()
    }

    #[test]
    fn submit_and_run_single_task() {
        let mut platform = Platform::paper_default();
        let data = dataset();
        platform.submit(small_spec(1, 0), data).unwrap();
        let completed = platform.run_until_idle();
        assert_eq!(completed, 1);
        let report = platform.report(TaskId(1)).unwrap();
        assert_eq!(report.rounds.len(), 2);
        assert!(matches!(
            platform.task_state(TaskId(1)),
            Some(TaskState::Completed { .. })
        ));
        let status = platform.status();
        assert_eq!(status.finished, 1);
        assert_eq!(status.free_bundles, 200);
    }

    #[test]
    fn multiple_tasks_complete_in_priority_order() {
        let mut platform = Platform::paper_default();
        let data = dataset();
        platform.submit(small_spec(1, 1), data.clone()).unwrap();
        platform.submit(small_spec(2, 9), data.clone()).unwrap();
        platform.submit(small_spec(3, 5), data).unwrap();
        let completed = platform.run_until_idle();
        assert_eq!(completed, 3);
        for id in [1u64, 2, 3] {
            assert!(platform.report(TaskId(id)).is_some());
        }
    }

    /// The tentpole determinism guarantee, at platform granularity: a
    /// threaded run — parallel fleet build plus batched plan-phase
    /// dispatch — is byte-identical to the sequential run. Three tasks
    /// submitted before the first scheduling pass admit together, so the
    /// batch path (prepare / compute / merge) actually executes.
    #[test]
    fn threaded_run_is_byte_identical_to_sequential() {
        let run = |threads: usize| {
            let mut platform = Platform::new(PlatformConfig {
                threads,
                ..PlatformConfig::default()
            });
            let data = dataset();
            platform.submit(small_spec(1, 1), data.clone()).unwrap();
            platform.submit(small_spec(2, 9), data.clone()).unwrap();
            platform.submit(small_spec(3, 5), data).unwrap();
            let completed = platform.run_until_idle();
            assert_eq!(completed, 3);
            let reports: Vec<String> = [1u64, 2, 3]
                .iter()
                .map(|&id| format!("{:?}", platform.report(TaskId(id)).unwrap()))
                .collect();
            let states: Vec<String> = [1u64, 2, 3]
                .iter()
                .map(|&id| format!("{:?}", platform.task_state(TaskId(id)).unwrap()))
                .collect();
            (
                reports,
                states,
                format!("{:?}", platform.status()),
                platform.storage().bytes_written(),
            )
        };
        let sequential = run(1);
        for threads in [2, 8] {
            assert_eq!(run(threads), sequential, "threads={threads} diverged");
        }
    }

    #[test]
    fn infeasible_task_rejected_at_submit() {
        let mut platform = Platform::paper_default();
        let spec = TaskSpec::builder(TaskId(1))
            .grade(GradeRequirement {
                grade: DeviceGrade::High,
                total_devices: 10,
                benchmark_phones: 0,
                logical_unit_bundles: 10_000,
                units_per_device: 1,
                phones: 0,
            })
            .build()
            .unwrap();
        assert!(platform.submit(spec, dataset()).is_err());
    }

    #[test]
    fn duplicate_submission_rejected() {
        let mut platform = Platform::paper_default();
        let data = dataset();
        platform.submit(small_spec(1, 0), data.clone()).unwrap();
        assert!(platform.submit(small_spec(1, 0), data).is_err());
    }

    #[test]
    fn run_from_source_queues_arrivals_over_time() {
        struct Timed {
            items: std::vec::IntoIter<(SimInstant, TaskSpec, Arc<CtrDataset>)>,
        }
        impl SubmissionSource for Timed {
            fn next_submission(&mut self) -> Option<(SimInstant, TaskSpec, Arc<CtrDataset>)> {
                self.items.next()
            }
        }
        let data = dataset();
        let t = |secs: u64| SimInstant::EPOCH + SimDuration::from_secs(secs);
        let mut source = Timed {
            items: vec![
                (t(10), small_spec(1, 0), data.clone()),
                (t(10), small_spec(2, 0), data.clone()),
                (t(20), small_spec(3, 0), data.clone()),
            ]
            .into_iter(),
        };
        let mut platform = Platform::paper_default();
        let stats = platform.run_from_source(&mut source);
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.completed, 3);
        // No task starts before it arrived.
        for (id, arrival) in [(1u64, t(10)), (2, t(10)), (3, t(20))] {
            match platform.task_state(TaskId(id)) {
                Some(TaskState::Completed { started_at, .. }) => {
                    assert!(*started_at >= arrival, "task {id} started before arrival");
                }
                other => panic!("task {id} not completed: {other:?}"),
            }
        }
        assert!(platform.status().now >= t(20));
    }

    /// Tie-discipline property: a workload with simultaneous arrivals
    /// (priority decides the tie, not source order) admits identically
    /// whichever driver paces the platform — [`Platform::run_from_source`]
    /// or a manual loop over [`Platform::run_until`] /
    /// [`Platform::advance_clock_to`] / [`Platform::admit_now`] — and
    /// whether the platform runs sequentially or threaded. The workload
    /// oversubscribes capacity so late admissions land on completion
    /// instants, exercising completion-vs-pending ordering too.
    #[test]
    fn tied_arrivals_admit_identically_across_drivers_and_threads() {
        let t = |secs: u64| SimInstant::EPOCH + SimDuration::from_secs(secs);
        // Three waves; within each wave every task shares an arrival
        // instant and priorities are deliberately out of source order.
        let workload = || -> Vec<(SimInstant, TaskSpec, Arc<CtrDataset>)> {
            let data = dataset();
            let mut items = Vec::new();
            for (i, (secs, prio)) in [
                (10u64, 2u32),
                (10, 7),
                (10, 5),
                (10, 9),
                (40, 1),
                (40, 8),
                (40, 8),
                (70, 3),
                (70, 6),
            ]
            .iter()
            .enumerate()
            {
                items.push((t(*secs), small_spec(i as u64 + 1, *prio), data.clone()));
            }
            items
        };
        let fingerprint = |platform: &Platform, n: u64| -> Vec<String> {
            (1..=n)
                .map(|id| format!("{:?}", platform.task_state(TaskId(id)).unwrap()))
                .collect()
        };
        let platform_with = |threads: usize| {
            Platform::new(PlatformConfig {
                threads,
                ..PlatformConfig::default()
            })
        };

        struct Timed {
            items: std::vec::IntoIter<(SimInstant, TaskSpec, Arc<CtrDataset>)>,
        }
        impl SubmissionSource for Timed {
            fn next_submission(&mut self) -> Option<(SimInstant, TaskSpec, Arc<CtrDataset>)> {
                self.items.next()
            }
        }

        let via_source = |threads: usize| {
            let mut platform = platform_with(threads);
            let mut source = Timed {
                items: workload().into_iter(),
            };
            let stats = platform.run_from_source(&mut source);
            assert_eq!(stats.completed, 9);
            // Priority decides the wave-one tie, not source order: task 4
            // (priority 9) starts no later than its wave-mates 1..=3.
            let started = |id: u64| match platform.task_state(TaskId(id)) {
                Some(TaskState::Completed { started_at, .. }) => *started_at,
                other => panic!("task {id} not completed: {other:?}"),
            };
            for id in [1u64, 2, 3] {
                assert!(
                    started(4) <= started(id),
                    "priority lost the tie to task {id}"
                );
            }
            fingerprint(&platform, 9)
        };
        let via_manual = |threads: usize| {
            let mut platform = platform_with(threads);
            // Group the workload by arrival instant; run the platform up
            // to each instant, submit the whole wave, admit in one pass.
            let mut items = workload().into_iter().peekable();
            while let Some((at, spec, data)) = items.next() {
                platform.run_until(at);
                platform.advance_clock_to(at);
                platform.submit(spec, data).unwrap();
                while items.peek().is_some_and(|(at2, _, _)| *at2 == at) {
                    let (_, spec2, data2) = items.next().unwrap();
                    platform.submit(spec2, data2).unwrap();
                }
                platform.admit_now();
            }
            assert_eq!(platform.run_until_idle(), 9);
            fingerprint(&platform, 9)
        };

        let reference = via_source(1);
        assert_eq!(via_manual(1), reference, "manual driver diverged");
        assert_eq!(via_source(4), reference, "threaded source run diverged");
        assert_eq!(via_manual(4), reference, "threaded manual run diverged");
    }

    #[test]
    fn run_from_source_counts_rejections() {
        struct One {
            item: Option<(SimInstant, TaskSpec, Arc<CtrDataset>)>,
        }
        impl SubmissionSource for One {
            fn next_submission(&mut self) -> Option<(SimInstant, TaskSpec, Arc<CtrDataset>)> {
                self.item.take()
            }
        }
        let infeasible = TaskSpec::builder(TaskId(1))
            .grade(GradeRequirement {
                grade: DeviceGrade::High,
                total_devices: 10,
                benchmark_phones: 0,
                logical_unit_bundles: 10_000,
                units_per_device: 1,
                phones: 0,
            })
            .build()
            .unwrap();
        let mut platform = Platform::paper_default();
        let stats = platform.run_from_source(&mut One {
            item: Some((SimInstant::EPOCH, infeasible, dataset())),
        });
        assert_eq!(stats.submitted, 0);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.completed, 0);
    }

    /// A task needing more bundles than the booted capacity: the paper's
    /// elastic tier boots nodes instead of rejecting it, and the task
    /// *waits* through the boot latency rather than failing.
    fn surge_spec(id: u64, bundles: u64) -> TaskSpec {
        TaskSpec::builder(TaskId(id))
            .rounds(1)
            .grade(GradeRequirement {
                grade: DeviceGrade::High,
                total_devices: 50,
                benchmark_phones: 0,
                logical_unit_bundles: bundles,
                units_per_device: 8,
                phones: 0,
            })
            .trigger(AggregationTrigger::DeviceThreshold { min_devices: 50 })
            .seed(id)
            .build()
            .unwrap()
    }

    #[test]
    fn burst_task_waits_for_scale_up_instead_of_failing() {
        let mut platform = Platform::paper_default();
        let boot = platform.cluster().cost().node_boot;
        // 400 bundles > 200 ready, but within the 800-unit elastic
        // ceiling: accepted, queued, and admitted at the node-ready event.
        platform.submit(surge_spec(1, 400), dataset()).unwrap();
        let completed = platform.run_until_idle();
        assert_eq!(completed, 1);
        let Some(TaskState::Completed { started_at, .. }) = platform.task_state(TaskId(1)) else {
            panic!(
                "task must complete, got {:?}",
                platform.task_state(TaskId(1))
            );
        };
        assert!(
            *started_at >= SimInstant::EPOCH + boot,
            "placement must block for the boot latency, started at {started_at}"
        );
        assert!(platform.cluster_events() >= 1, "node-ready event processed");
        let stats = platform.cluster().stats();
        assert!(stats.peak_nodes > 4, "the pool scaled out: {stats:?}");
        assert!(stats.cost_accrued > 0.0, "node time was billed");
        // After the burst the autoscaler drained back to the floor: free
        // capacity equals ready capacity equals the initial 200 units.
        let status = platform.status();
        assert_eq!(status.free_bundles, 200, "{status:?}");
        assert_eq!(status.ready_nodes, 4, "surplus nodes drained: {status:?}");
    }

    #[test]
    fn budget_cap_bounds_the_elastic_ceiling() {
        use simdc_cluster::{AutoscalerConfig, ClusterConfig};
        let capped = |hourly: f64| {
            Platform::new(PlatformConfig {
                cluster: ClusterConfig {
                    autoscaler: AutoscalerConfig {
                        max_hourly_cost: Some(hourly),
                        ..AutoscalerConfig::default()
                    },
                    ..ClusterConfig::default()
                },
                ..PlatformConfig::default()
            })
        };
        // A 4-node budget caps the ceiling at the initial 200 units: a
        // 400-bundle task could never run and is rejected at the door.
        let mut tight = capped(4.0);
        assert!(tight.submit(surge_spec(1, 400), dataset()).is_err());
        // A 6-node budget (300 units) admits a 250-bundle task — the pool
        // scales to the cap and no further.
        let mut loose = capped(6.0);
        loose.submit(surge_spec(2, 250), dataset()).unwrap();
        assert_eq!(loose.run_until_idle(), 1);
        let stats = loose.cluster().stats();
        assert!(
            stats.peak_nodes > 4 && stats.peak_nodes <= 6,
            "budget must bound the fleet: {stats:?}"
        );
    }

    /// Same-pass admission race regression: two tasks that each fit the
    /// empty pool individually are both picked in one pass, but the first
    /// one's acquisition fragments the nodes (four 30-unit actors leave
    /// 20 free units on each 50-unit node) so the second's single 40-unit
    /// actor no longer places. It must go back to pending and admit at a
    /// later capacity event — never fall through to `plan` and fail.
    #[test]
    fn fragmented_same_pass_admission_waits_instead_of_failing() {
        let spec = |id: u64, f: u64, k: u64, devices: u64| {
            TaskSpec::builder(TaskId(id))
                .rounds(1)
                .grade(GradeRequirement {
                    grade: DeviceGrade::High,
                    total_devices: devices,
                    benchmark_phones: 0,
                    logical_unit_bundles: f,
                    units_per_device: k,
                    phones: 0,
                })
                .trigger(AggregationTrigger::DeviceThreshold {
                    min_devices: devices,
                })
                .seed(id)
                .build()
                .unwrap()
        };
        let mut platform = Platform::paper_default();
        platform.submit(spec(1, 120, 30, 4), dataset()).unwrap();
        platform.submit(spec(2, 40, 40, 1), dataset()).unwrap();
        assert_eq!(platform.run_until_idle(), 2);
        for id in [1u64, 2] {
            assert!(
                matches!(
                    platform.task_state(TaskId(id)),
                    Some(TaskState::Completed { .. })
                ),
                "task {id} must complete, got {:?}",
                platform.task_state(TaskId(id))
            );
        }
    }

    #[test]
    fn concurrent_tasks_contend_for_cloud_capacity() {
        // Two 150-bundle tasks on 200 ready units: the first admits
        // immediately, the second blocks (capacity + fragmentation) until
        // scale-out or the first completion — never fails.
        let mut platform = Platform::paper_default();
        platform.submit(surge_spec(1, 150), dataset()).unwrap();
        platform.submit(surge_spec(2, 150), dataset()).unwrap();
        assert_eq!(platform.run_until_idle(), 2);
        for id in [1u64, 2] {
            assert!(
                matches!(
                    platform.task_state(TaskId(id)),
                    Some(TaskState::Completed { .. })
                ),
                "task {id}: {:?}",
                platform.task_state(TaskId(id))
            );
        }
    }

    /// Drain-then-burst regression: when queued demand is satisfied by
    /// *reclaiming* draining nodes (no boot), the platform must re-run
    /// placement at the reclaim instant. Before the `Reclaim` action
    /// existed, `assess` silently returned the nodes to service and
    /// reported `Hold`, so the burst sat pending until the next unrelated
    /// event — here the long tasks' completions, hundreds of virtual
    /// seconds later.
    #[test]
    fn reclaimed_drain_readmits_at_the_reclaim_instant() {
        use simdc_cluster::ClusterConfig;
        let spec = |id: u64, bundles: u64, k: u64, devices: u64, rounds: u32| {
            TaskSpec::builder(TaskId(id))
                .rounds(rounds)
                .grade(GradeRequirement {
                    grade: DeviceGrade::High,
                    total_devices: devices,
                    benchmark_phones: 0,
                    logical_unit_bundles: bundles,
                    units_per_device: k,
                    phones: 0,
                })
                .trigger(AggregationTrigger::DeviceThreshold {
                    min_devices: devices,
                })
                .seed(id)
                .build()
                .unwrap()
        };
        // Small 8-unit nodes so per-task actors land on distinct nodes
        // and a busy node can end up in the draining set.
        let mut platform = Platform::new(PlatformConfig {
            cluster: ClusterConfig {
                node_template: ResourceBundle::cores_gib(8, 8),
                initial_nodes: 1,
                max_nodes: 10,
                ..ClusterConfig::default()
            },
            ..PlatformConfig::default()
        });
        let t = |secs: u64| SimInstant::EPOCH + SimDuration::from_secs(secs);
        // Short 7-unit task fills the initial node; the pending rest
        // boots two more. After the boots: a long 2-unit task and a short
        // 5-unit task pack one node, the other long 2-unit task takes the
        // next. Once both short tasks finish, utilization drops below the
        // scale-in threshold and the autoscaler drains two nodes — one
        // idle (retires) and, by newest-first order, one still *busy*
        // with a long task (survives as draining).
        platform.submit(spec(1, 7, 7, 1, 3), dataset()).unwrap();
        platform.submit(spec(2, 2, 2, 1, 60), dataset()).unwrap();
        platform.submit(spec(3, 5, 5, 1, 3), dataset()).unwrap();
        platform.submit(spec(4, 2, 2, 1, 60), dataset()).unwrap();
        let done = |p: &Platform, id: u64| {
            matches!(p.task_state(TaskId(id)), Some(TaskState::Completed { .. }))
        };
        let mut probe = 0u64;
        while !(done(&platform, 1) && done(&platform, 3)) {
            probe += 25;
            assert!(probe < 1_000, "short tasks must finish well before 1000s");
            platform.run_until(t(probe));
        }
        let stats = platform.cluster().stats();
        assert!(
            stats.draining >= 1,
            "scale-in must leave a busy draining node: {stats:?}"
        );
        // Burst: two 4-unit actors need two ready nodes; only one is
        // ready, the other must come back from the draining set.
        let burst_at = platform.status().now + SimDuration::from_secs(10);
        platform.advance_clock_to(burst_at);
        platform.submit(spec(5, 8, 4, 2, 1), dataset()).unwrap();
        platform.run_until_idle();
        let Some(TaskState::Completed { started_at, .. }) = platform.task_state(TaskId(5)) else {
            panic!(
                "burst task must complete: {:?}",
                platform.task_state(TaskId(5))
            );
        };
        assert_eq!(
            *started_at, burst_at,
            "reclaimed capacity must admit the burst immediately, not at \
             the next unrelated completion event"
        );
        let stats = platform.cluster().stats();
        assert_eq!(stats.draining, 0, "the draining node was reclaimed");
    }

    #[test]
    fn advance_clock_never_goes_backwards() {
        let mut platform = Platform::paper_default();
        let t = |secs: u64| SimInstant::EPOCH + SimDuration::from_secs(secs);
        platform.advance_clock_to(t(50));
        assert_eq!(platform.status().now, t(50));
        platform.advance_clock_to(t(10));
        assert_eq!(platform.status().now, t(50));
    }

    #[test]
    fn status_reflects_queue() {
        let mut platform = Platform::paper_default();
        platform.submit(small_spec(1, 0), dataset()).unwrap();
        let before = platform.status();
        assert_eq!(before.pending, 1);
        platform.run_until_idle();
        let after = platform.status();
        assert_eq!(after.pending, 0);
        assert!(after.now > before.now);
    }
}
