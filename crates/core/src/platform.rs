//! The SimDC platform facade: Task Manager + Resource Manager + substrates
//! wired together.
//!
//! [`Platform`] owns the logical cluster, the phone fleet, shared storage
//! and the task queue. Tasks are submitted with their dataset, admitted by
//! the greedy scheduler as resources allow, executed by the
//! [`crate::runner::TaskRunner`] on the virtual timeline, and their
//! [`TaskReport`]s retained for inspection — the programmatic equivalent of
//! the paper's GUI monitoring.

use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use simdc_cluster::{ClusterConfig, LogicalCluster};
use simdc_data::CtrDataset;
use simdc_phone::mgr::FleetSpec;
use simdc_phone::PhoneMgr;
use simdc_types::{PerGrade, Result, SimDuration, SimInstant, SimdcError, TaskId};

use crate::cloud::Storage;
use crate::queue::{TaskQueue, TaskState};
use crate::resources::ResourceManager;
use crate::runner::{RunnerConfig, TaskReport, TaskRunner};
use crate::scheduler::GreedyScheduler;
use crate::spec::TaskSpec;

/// Platform-wide configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Logical-simulation cluster.
    pub cluster: ClusterConfig,
    /// Phone fleet composition.
    pub fleet: FleetSpec,
    /// Benchmark polling interval.
    pub poll_interval: SimDuration,
    /// Runner tunables.
    pub runner: RunnerConfig,
    /// Platform seed (forked per phone/task).
    pub seed: u64,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            cluster: ClusterConfig::default(),
            fleet: FleetSpec::paper_default(),
            poll_interval: SimDuration::from_secs(1),
            runner: RunnerConfig::default(),
            seed: 0x51AD_C0DE,
        }
    }
}

/// A point-in-time view of the platform (what the paper's GUI displays).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlatformStatus {
    /// Virtual clock.
    pub now: SimInstant,
    /// Tasks waiting.
    pub pending: usize,
    /// Tasks executing.
    pub running: usize,
    /// Tasks finished (completed or failed).
    pub finished: usize,
    /// Free unit bundles.
    pub free_bundles: u64,
    /// Free phones per grade.
    pub free_phones: PerGrade<u64>,
}

/// A stream of task submissions arriving over virtual time — the scenario
/// side of the platform (workload generators implement this; a static task
/// list is just the degenerate constant-time case).
///
/// Arrival instants must be non-decreasing; [`Platform::run_from_source`]
/// panics otherwise, because out-of-order arrivals would silently break
/// determinism.
pub trait SubmissionSource {
    /// The next submission: `(arrival instant, spec, dataset)`, or `None`
    /// when the stream is exhausted.
    fn next_submission(&mut self) -> Option<(SimInstant, TaskSpec, Arc<CtrDataset>)>;
}

/// Outcome counters of [`Platform::run_from_source`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceRunStats {
    /// Submissions accepted into the queue.
    pub submitted: usize,
    /// Submissions rejected at the door (validation / infeasible claims).
    pub rejected: usize,
    /// Tasks that ran to completion.
    pub completed: usize,
}

/// The assembled platform.
pub struct Platform {
    cluster: LogicalCluster,
    phones: PhoneMgr,
    storage: Storage,
    rm: ResourceManager,
    queue: TaskQueue,
    scheduler: GreedyScheduler,
    runner: TaskRunner,
    datasets: HashMap<TaskId, Arc<CtrDataset>>,
    reports: HashMap<TaskId, TaskReport>,
    clock: SimInstant,
    total_bundles: u64,
    total_phones: PerGrade<u64>,
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Platform")
            .field("clock", &self.clock)
            .field("tasks", &self.queue.census())
            .finish_non_exhaustive()
    }
}

impl Platform {
    /// Builds a platform from `config`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid cluster configuration (validate it first for a
    /// recoverable error).
    #[must_use]
    pub fn new(config: PlatformConfig) -> Self {
        let cluster = LogicalCluster::new(config.cluster.clone());
        let phones = PhoneMgr::with_fleet(config.fleet, config.poll_interval, config.seed);
        let total_bundles = cluster.free_unit_bundles();
        let total_phones = PerGrade::from_fn(|g| phones.count(g, None) as u64);
        Platform {
            cluster,
            phones,
            storage: Storage::new(),
            rm: ResourceManager::new(total_bundles, total_phones),
            queue: TaskQueue::new(),
            scheduler: GreedyScheduler::new(),
            runner: TaskRunner::new(config.runner),
            datasets: HashMap::new(),
            reports: HashMap::new(),
            clock: SimInstant::EPOCH,
            total_bundles,
            total_phones,
        }
    }

    /// Builds the paper's default platform (200-core cluster, 30 phones).
    #[must_use]
    pub fn paper_default() -> Self {
        Platform::new(PlatformConfig::default())
    }

    /// Submits a task with its dataset. Tasks start when the scheduler
    /// admits them during [`Platform::run_until_idle`].
    ///
    /// # Errors
    ///
    /// Returns validation errors, duplicates, and `InvalidConfig` when the
    /// task could never fit the platform's total capacity.
    pub fn submit(&mut self, spec: TaskSpec, dataset: Arc<CtrDataset>) -> Result<TaskId> {
        spec.validate()?;
        if !self
            .scheduler
            .feasible_at_all(&spec, self.total_bundles, self.total_phones)
        {
            return Err(SimdcError::ResourceExhausted {
                requested: format!("claim of task {}", spec.id),
                available: "total platform capacity".into(),
            });
        }
        let id = spec.id;
        self.queue.submit(spec)?;
        self.datasets.insert(id, dataset);
        Ok(id)
    }

    /// Runs the scheduling loop until no task is pending or running:
    /// admit → execute → release → advance the virtual clock to the next
    /// completion → repeat. Returns the number of tasks completed.
    pub fn run_until_idle(&mut self) -> usize {
        let mut completed = 0usize;
        loop {
            let started = self.scheduler.schedule(&self.queue, &mut self.rm);
            if started.is_empty() {
                // Nothing admissible: if nothing is running either, the
                // remaining pending tasks are starved — fail them loudly.
                let (pending, running, _) = self.queue.census();
                if running == 0 {
                    if pending > 0 {
                        for id in self.queue.pending_by_priority() {
                            self.rm.release(id);
                            let _ = self
                                .queue
                                .mark_failed(id, "resources never became available");
                        }
                    }
                    break;
                }
            }

            // Execute everything admitted in this wave; their virtual spans
            // overlap (they hold disjoint frozen resources).
            let mut completions: Vec<(TaskId, SimInstant)> = Vec::new();
            for id in started {
                let start = self.clock;
                if self.queue.mark_running(id, start).is_err() {
                    continue;
                }
                let spec = self.queue.get(id).expect("just marked").spec.clone();
                let dataset = self
                    .datasets
                    .get(&id)
                    .expect("dataset registered at submit")
                    .clone();
                match self.runner.execute(
                    &spec,
                    &dataset,
                    &mut self.cluster,
                    &mut self.phones,
                    &mut self.storage,
                    start,
                ) {
                    Ok(report) => {
                        let finished = report.finished_at;
                        self.reports.insert(id, report);
                        completions.push((id, finished));
                    }
                    Err(err) => {
                        self.rm.release(id);
                        let _ = self.queue.mark_failed(id, err.to_string());
                    }
                }
            }

            // Release in completion order and advance the clock.
            completions.sort_by_key(|&(_, at)| at);
            for (id, at) in completions {
                self.rm.release(id);
                let _ = self.queue.mark_completed(id, at);
                self.clock = self.clock.max(at);
                completed += 1;
            }

            let (pending, running, _) = self.queue.census();
            if pending == 0 && running == 0 {
                break;
            }
        }
        completed
    }

    /// Drains a [`SubmissionSource`]: tasks arrive over virtual time, queue
    /// up, and run in admission waves.
    ///
    /// Wave semantics: the clock jumps to the next arrival, every
    /// submission due by then is admitted, and the wave runs to idle
    /// (advancing the clock past its completions) before the next arrival
    /// is pulled. Tasks arriving while a wave executes therefore start at
    /// the wave's end — their queueing delay is visible as
    /// `started_at - arrival`.
    ///
    /// # Panics
    ///
    /// Panics if the source yields decreasing arrival instants.
    pub fn run_from_source(&mut self, source: &mut dyn SubmissionSource) -> SourceRunStats {
        let mut stats = SourceRunStats::default();
        let mut last_arrival = SimInstant::EPOCH;
        let mut carried: Option<(SimInstant, TaskSpec, Arc<CtrDataset>)> = None;
        loop {
            // Build one wave: the first arrival (possibly carried over
            // from the previous wave) opens it and jumps the clock; every
            // further submission due by that clock joins it.
            let mut wave_open = false;
            while let Some((at, spec, data)) = carried.take().or_else(|| source.next_submission()) {
                assert!(
                    at >= last_arrival,
                    "submission source went back in time ({at} < {last_arrival})"
                );
                last_arrival = at;
                if wave_open && at > self.clock {
                    carried = Some((at, spec, data));
                    break;
                }
                self.advance_clock_to(at);
                wave_open = true;
                match self.submit(spec, data) {
                    Ok(_) => stats.submitted += 1,
                    Err(_) => stats.rejected += 1,
                }
            }
            if !wave_open {
                return stats;
            }
            stats.completed += self.run_until_idle();
        }
    }

    /// Advances the virtual clock to `at` (no-op if the clock is already
    /// past it). Scenario drivers use this to sync the platform with an
    /// outer event loop before injecting work or fleet events.
    pub fn advance_clock_to(&mut self, at: SimInstant) {
        self.clock = self.clock.max(at);
    }

    /// The report of a completed task.
    #[must_use]
    pub fn report(&self, id: TaskId) -> Option<&TaskReport> {
        self.reports.get(&id)
    }

    /// The lifecycle state of a task.
    #[must_use]
    pub fn task_state(&self, id: TaskId) -> Option<&TaskState> {
        self.queue.get(id).map(|r| &r.state)
    }

    /// Point-in-time status snapshot.
    #[must_use]
    pub fn status(&self) -> PlatformStatus {
        let (pending, running, finished) = self.queue.census();
        PlatformStatus {
            now: self.clock,
            pending,
            running,
            finished,
            free_bundles: self.rm.free_bundles(),
            free_phones: PerGrade::from_fn(|g| self.rm.free_phones(g)),
        }
    }

    /// The phone manager (e.g. for fleet inspection).
    #[must_use]
    pub fn phones(&self) -> &PhoneMgr {
        &self.phones
    }

    /// Mutable access to the phone manager — the hook fleet-dynamics
    /// injectors (churn, stragglers, benchmark failures) use to perturb
    /// the fleet between scheduling waves.
    ///
    /// Invariant: perturb *existing* phones only (crash, reboot, profile
    /// swaps). Registering or retiring phones through this handle would
    /// desync the Resource Manager's per-grade totals, which are
    /// snapshotted at construction; fleet *size* changes belong in
    /// [`PlatformConfig::fleet`].
    pub fn phones_mut(&mut self) -> &mut PhoneMgr {
        &mut self.phones
    }

    /// The logical cluster.
    #[must_use]
    pub fn cluster(&self) -> &LogicalCluster {
        &self.cluster
    }

    /// Shared storage.
    #[must_use]
    pub fn storage(&self) -> &Storage {
        &self.storage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::AggregationTrigger;
    use crate::spec::GradeRequirement;
    use simdc_data::GeneratorConfig;
    use simdc_types::DeviceGrade;

    fn dataset() -> Arc<CtrDataset> {
        Arc::new(CtrDataset::generate(&GeneratorConfig {
            n_devices: 30,
            n_test_devices: 6,
            mean_records_per_device: 15.0,
            feature_dim: 1 << 12,
            seed: 77,
            ..GeneratorConfig::default()
        }))
    }

    fn small_spec(id: u64, priority: u32) -> TaskSpec {
        TaskSpec::builder(TaskId(id))
            .priority(priority)
            .rounds(2)
            .grade(GradeRequirement {
                grade: DeviceGrade::High,
                total_devices: 12,
                benchmark_phones: 1,
                logical_unit_bundles: 24,
                units_per_device: 8,
                phones: 3,
            })
            .trigger(AggregationTrigger::DeviceThreshold { min_devices: 12 })
            .seed(id)
            .build()
            .unwrap()
    }

    #[test]
    fn submit_and_run_single_task() {
        let mut platform = Platform::paper_default();
        let data = dataset();
        platform.submit(small_spec(1, 0), data).unwrap();
        let completed = platform.run_until_idle();
        assert_eq!(completed, 1);
        let report = platform.report(TaskId(1)).unwrap();
        assert_eq!(report.rounds.len(), 2);
        assert!(matches!(
            platform.task_state(TaskId(1)),
            Some(TaskState::Completed { .. })
        ));
        let status = platform.status();
        assert_eq!(status.finished, 1);
        assert_eq!(status.free_bundles, 200);
    }

    #[test]
    fn multiple_tasks_complete_in_priority_order() {
        let mut platform = Platform::paper_default();
        let data = dataset();
        platform.submit(small_spec(1, 1), data.clone()).unwrap();
        platform.submit(small_spec(2, 9), data.clone()).unwrap();
        platform.submit(small_spec(3, 5), data).unwrap();
        let completed = platform.run_until_idle();
        assert_eq!(completed, 3);
        for id in [1u64, 2, 3] {
            assert!(platform.report(TaskId(id)).is_some());
        }
    }

    #[test]
    fn infeasible_task_rejected_at_submit() {
        let mut platform = Platform::paper_default();
        let spec = TaskSpec::builder(TaskId(1))
            .grade(GradeRequirement {
                grade: DeviceGrade::High,
                total_devices: 10,
                benchmark_phones: 0,
                logical_unit_bundles: 10_000,
                units_per_device: 1,
                phones: 0,
            })
            .build()
            .unwrap();
        assert!(platform.submit(spec, dataset()).is_err());
    }

    #[test]
    fn duplicate_submission_rejected() {
        let mut platform = Platform::paper_default();
        let data = dataset();
        platform.submit(small_spec(1, 0), data.clone()).unwrap();
        assert!(platform.submit(small_spec(1, 0), data).is_err());
    }

    #[test]
    fn run_from_source_queues_arrivals_over_time() {
        struct Timed {
            items: std::vec::IntoIter<(SimInstant, TaskSpec, Arc<CtrDataset>)>,
        }
        impl SubmissionSource for Timed {
            fn next_submission(&mut self) -> Option<(SimInstant, TaskSpec, Arc<CtrDataset>)> {
                self.items.next()
            }
        }
        let data = dataset();
        let t = |secs: u64| SimInstant::EPOCH + SimDuration::from_secs(secs);
        let mut source = Timed {
            items: vec![
                (t(10), small_spec(1, 0), data.clone()),
                (t(10), small_spec(2, 0), data.clone()),
                (t(20), small_spec(3, 0), data.clone()),
            ]
            .into_iter(),
        };
        let mut platform = Platform::paper_default();
        let stats = platform.run_from_source(&mut source);
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.completed, 3);
        // No task starts before it arrived.
        for (id, arrival) in [(1u64, t(10)), (2, t(10)), (3, t(20))] {
            match platform.task_state(TaskId(id)) {
                Some(TaskState::Completed { started_at, .. }) => {
                    assert!(*started_at >= arrival, "task {id} started before arrival");
                }
                other => panic!("task {id} not completed: {other:?}"),
            }
        }
        assert!(platform.status().now >= t(20));
    }

    #[test]
    fn run_from_source_counts_rejections() {
        struct One {
            item: Option<(SimInstant, TaskSpec, Arc<CtrDataset>)>,
        }
        impl SubmissionSource for One {
            fn next_submission(&mut self) -> Option<(SimInstant, TaskSpec, Arc<CtrDataset>)> {
                self.item.take()
            }
        }
        let infeasible = TaskSpec::builder(TaskId(1))
            .grade(GradeRequirement {
                grade: DeviceGrade::High,
                total_devices: 10,
                benchmark_phones: 0,
                logical_unit_bundles: 10_000,
                units_per_device: 1,
                phones: 0,
            })
            .build()
            .unwrap();
        let mut platform = Platform::paper_default();
        let stats = platform.run_from_source(&mut One {
            item: Some((SimInstant::EPOCH, infeasible, dataset())),
        });
        assert_eq!(stats.submitted, 0);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn advance_clock_never_goes_backwards() {
        let mut platform = Platform::paper_default();
        let t = |secs: u64| SimInstant::EPOCH + SimDuration::from_secs(secs);
        platform.advance_clock_to(t(50));
        assert_eq!(platform.status().now, t(50));
        platform.advance_clock_to(t(10));
        assert_eq!(platform.status().now, t(50));
    }

    #[test]
    fn status_reflects_queue() {
        let mut platform = Platform::paper_default();
        platform.submit(small_spec(1, 0), dataset()).unwrap();
        let before = platform.status();
        assert_eq!(before.pending, 1);
        platform.run_until_idle();
        let after = platform.status();
        assert_eq!(after.pending, 0);
        assert!(after.now > before.now);
    }
}
