//! Cloud-side services: shared storage, message intake and aggregation
//! triggers.
//!
//! Devices upload update payloads to [`Storage`] and announce them with
//! messages; DeviceFlow forwards the messages according to the task's
//! strategy; the cloud service decides *when to aggregate*. In real
//! deployments the cloud does not know how many devices will report
//! (§VI-C.1), so aggregation fires on a trigger: a sample threshold or a
//! schedule.

use std::collections::BTreeMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use simdc_types::{DeviceId, Message, Result, SimDuration, SimInstant, SimdcError, StorageKey};

use simdc_ml::{LocalUpdate, LrModel};

/// In-memory shared storage (the paper's object store between devices and
/// cloud services).
#[derive(Debug, Default)]
pub struct Storage {
    map: BTreeMap<StorageKey, Bytes>,
    bytes_written: u64,
}

impl Storage {
    /// Creates empty storage.
    #[must_use]
    pub fn new() -> Self {
        Storage::default()
    }

    /// Stores a payload under `key` (overwrites).
    pub fn put(&mut self, key: StorageKey, payload: Bytes) {
        self.bytes_written += payload.len() as u64;
        self.map.insert(key, payload);
    }

    /// Fetches a payload.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::StorageMiss`] when the key is absent.
    pub fn get(&self, key: &StorageKey) -> Result<Bytes> {
        self.map
            .get(key)
            .cloned()
            .ok_or_else(|| SimdcError::StorageMiss(key.to_string()))
    }

    /// Removes a payload, returning whether it existed.
    pub fn remove(&mut self, key: &StorageKey) -> bool {
        self.map.remove(key).is_some()
    }

    /// Number of stored objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total bytes ever written (bandwidth accounting).
    #[must_use]
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Folds a scratch store into this one: remaining objects move over
    /// (task-scoped keys cannot collide across tasks) and the scratch's
    /// lifetime write count joins the bandwidth total, exactly as if every
    /// `put` had happened here. The merge step of off-thread task planning,
    /// which gives each worker its own scratch [`Storage`].
    pub fn absorb(&mut self, scratch: Storage) {
        self.bytes_written += scratch.bytes_written;
        self.map.extend(scratch.map);
    }
}

/// Serializes a [`LocalUpdate`] into the payload devices upload.
#[must_use]
pub fn encode_update(update: &LocalUpdate) -> Bytes {
    let model = update.model.to_bytes();
    let mut buf = BytesMut::with_capacity(model.len() + 16);
    buf.put_u64_le(update.n_samples);
    buf.put_f64_le(update.final_loss);
    buf.extend_from_slice(&model);
    buf.freeze()
}

/// Decodes a payload produced by [`encode_update`].
///
/// # Errors
///
/// Returns [`SimdcError::Serialization`] on truncated or malformed
/// payloads.
pub fn decode_update(mut payload: Bytes) -> Result<LocalUpdate> {
    if payload.len() < 16 {
        return Err(SimdcError::Serialization(format!(
            "update payload too short: {} bytes",
            payload.len()
        )));
    }
    let n_samples = payload.get_u64_le();
    let final_loss = payload.get_f64_le();
    let model = LrModel::from_bytes(payload)?;
    Ok(LocalUpdate {
        model,
        n_samples,
        final_loss,
    })
}

/// When the cloud aggregates a round (§VI-C.1: "Common triggers include
/// reaching a threshold of total edge training samples or reaching
/// scheduled times").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregationTrigger {
    /// Aggregate as soon as the accumulated `sample_count` across received
    /// messages reaches the threshold.
    SampleThreshold {
        /// Minimum total training samples.
        min_samples: u64,
    },
    /// Aggregate as soon as this many device updates arrived.
    DeviceThreshold {
        /// Minimum number of device updates.
        min_devices: u64,
    },
    /// Aggregate at a fixed offset after the round started, with whatever
    /// arrived by then.
    Scheduled {
        /// Aggregation period.
        period: SimDuration,
    },
}

impl AggregationTrigger {
    /// Validates trigger parameters.
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` for zero thresholds/periods.
    pub fn validate(&self) -> Result<()> {
        use SimdcError::InvalidConfig;
        match *self {
            AggregationTrigger::SampleThreshold { min_samples: 0 } => {
                Err(InvalidConfig("sample threshold must be > 0".into()))
            }
            AggregationTrigger::DeviceThreshold { min_devices: 0 } => {
                Err(InvalidConfig("device threshold must be > 0".into()))
            }
            AggregationTrigger::Scheduled { period } if period.is_zero() => {
                Err(InvalidConfig("aggregation period must be > 0".into()))
            }
            _ => Ok(()),
        }
    }
}

/// The outcome of one aggregation round on the cloud side.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// When aggregation fired.
    pub aggregated_at: SimInstant,
    /// Messages included in the aggregate, in arrival order.
    pub included: Vec<Message>,
    /// Messages that arrived after aggregation (stragglers, discarded).
    pub stragglers: u64,
    /// Whether the trigger actually fired (vs. the round timing out with a
    /// best-effort aggregate).
    pub trigger_fired: bool,
}

/// Decides the aggregation instant for a round given the messages
/// DeviceFlow delivered (each with its delivery time).
///
/// `deliveries` must be sorted by delivery time (DeviceFlow emits them in
/// order). If the trigger never fires, the round times out at
/// `round_start + timeout` and everything delivered by then is included.
#[must_use]
pub fn resolve_round(
    trigger: AggregationTrigger,
    round_start: SimInstant,
    deliveries: &[(SimInstant, Message)],
    timeout: SimDuration,
) -> RoundOutcome {
    let deadline = round_start + timeout;
    match trigger {
        AggregationTrigger::Scheduled { period } => {
            let at = round_start + period;
            split_at(deliveries, at, true)
        }
        AggregationTrigger::SampleThreshold { min_samples } => {
            let mut acc = 0u64;
            for (i, (t, m)) in deliveries.iter().enumerate() {
                if *t > deadline {
                    break;
                }
                acc += m.sample_count;
                if acc >= min_samples {
                    return take_first(deliveries, i + 1, *t, true);
                }
            }
            split_at(deliveries, deadline, false)
        }
        AggregationTrigger::DeviceThreshold { min_devices } => {
            let mut seen: Vec<DeviceId> = Vec::new();
            for (i, (t, m)) in deliveries.iter().enumerate() {
                if *t > deadline {
                    break;
                }
                if !seen.contains(&m.device) {
                    seen.push(m.device);
                }
                if seen.len() as u64 >= min_devices {
                    return take_first(deliveries, i + 1, *t, true);
                }
            }
            split_at(deliveries, deadline, false)
        }
    }
}

fn split_at(
    deliveries: &[(SimInstant, Message)],
    at: SimInstant,
    trigger_fired: bool,
) -> RoundOutcome {
    let included: Vec<Message> = deliveries
        .iter()
        .take_while(|(t, _)| *t <= at)
        .map(|(_, m)| m.clone())
        .collect();
    RoundOutcome {
        aggregated_at: at,
        stragglers: (deliveries.len() - included.len()) as u64,
        included,
        trigger_fired,
    }
}

fn take_first(
    deliveries: &[(SimInstant, Message)],
    n: usize,
    at: SimInstant,
    trigger_fired: bool,
) -> RoundOutcome {
    RoundOutcome {
        aggregated_at: at,
        included: deliveries[..n].iter().map(|(_, m)| m.clone()).collect(),
        stragglers: (deliveries.len() - n) as u64,
        trigger_fired,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdc_types::{MessageId, RoundId, TaskId};

    fn t(secs: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_secs(secs)
    }

    fn msg(i: u64, samples: u64) -> Message {
        Message::model_update(
            MessageId(i),
            TaskId(1),
            DeviceId(i),
            RoundId(0),
            samples,
            StorageKey::for_update(TaskId(1), RoundId(0), DeviceId(i)),
            SimInstant::EPOCH,
        )
    }

    fn deliveries() -> Vec<(SimInstant, Message)> {
        (0..10).map(|i| (t(i * 10), msg(i, 100))).collect()
    }

    #[test]
    fn storage_round_trip_and_miss() {
        let mut s = Storage::new();
        let key = StorageKey::from("a/b");
        s.put(key.clone(), Bytes::from_static(b"hello"));
        assert_eq!(s.get(&key).unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(s.len(), 1);
        assert_eq!(s.bytes_written(), 5);
        assert!(s.remove(&key));
        assert!(!s.remove(&key));
        assert!(matches!(s.get(&key), Err(SimdcError::StorageMiss(_))));
    }

    #[test]
    fn update_codec_round_trips() {
        let update = LocalUpdate {
            model: LrModel::from_parts(vec![0.5, -1.5, 2.0], 0.25),
            n_samples: 321,
            final_loss: 0.625,
        };
        let bytes = encode_update(&update);
        let back = decode_update(bytes).unwrap();
        assert_eq!(back, update);
    }

    #[test]
    fn update_codec_rejects_garbage() {
        assert!(decode_update(Bytes::from_static(b"short")).is_err());
        let mut buf = BytesMut::new();
        buf.put_u64_le(1);
        buf.put_f64_le(0.0);
        buf.put_u8(9); // truncated model
        assert!(decode_update(buf.freeze()).is_err());
    }

    #[test]
    fn sample_threshold_fires_at_accumulation() {
        let out = resolve_round(
            AggregationTrigger::SampleThreshold { min_samples: 250 },
            t(0),
            &deliveries(),
            SimDuration::from_secs(1_000),
        );
        // 3 × 100 samples ≥ 250 → fires at the third delivery (t = 20).
        assert!(out.trigger_fired);
        assert_eq!(out.aggregated_at, t(20));
        assert_eq!(out.included.len(), 3);
        assert_eq!(out.stragglers, 7);
    }

    #[test]
    fn sample_threshold_times_out_gracefully() {
        let out = resolve_round(
            AggregationTrigger::SampleThreshold {
                min_samples: 100_000,
            },
            t(0),
            &deliveries(),
            SimDuration::from_secs(45),
        );
        assert!(!out.trigger_fired);
        assert_eq!(out.aggregated_at, t(45));
        assert_eq!(out.included.len(), 5); // t = 0, 10, 20, 30, 40
        assert_eq!(out.stragglers, 5);
    }

    #[test]
    fn device_threshold_counts_unique_devices() {
        let mut d = deliveries();
        // Duplicate device 0 at t=5 — must not double-count.
        d.insert(1, (t(5), msg(0, 100)));
        let out = resolve_round(
            AggregationTrigger::DeviceThreshold { min_devices: 3 },
            t(0),
            &d,
            SimDuration::from_secs(1_000),
        );
        assert!(out.trigger_fired);
        assert_eq!(out.aggregated_at, t(20));
        assert_eq!(out.included.len(), 4); // includes the duplicate message
    }

    #[test]
    fn scheduled_takes_what_arrived() {
        let out = resolve_round(
            AggregationTrigger::Scheduled {
                period: SimDuration::from_secs(35),
            },
            t(0),
            &deliveries(),
            SimDuration::from_secs(1_000),
        );
        assert!(out.trigger_fired);
        assert_eq!(out.aggregated_at, t(35));
        assert_eq!(out.included.len(), 4);
        assert_eq!(out.stragglers, 6);
    }

    #[test]
    fn empty_deliveries_time_out() {
        let out = resolve_round(
            AggregationTrigger::SampleThreshold { min_samples: 1 },
            t(0),
            &[],
            SimDuration::from_secs(60),
        );
        assert!(!out.trigger_fired);
        assert!(out.included.is_empty());
        assert_eq!(out.aggregated_at, t(60));
    }

    #[test]
    fn trigger_validation() {
        assert!(AggregationTrigger::SampleThreshold { min_samples: 0 }
            .validate()
            .is_err());
        assert!(AggregationTrigger::DeviceThreshold { min_devices: 0 }
            .validate()
            .is_err());
        assert!(AggregationTrigger::Scheduled {
            period: SimDuration::ZERO
        }
        .validate()
        .is_err());
        assert!(AggregationTrigger::Scheduled {
            period: SimDuration::from_secs(1)
        }
        .validate()
        .is_ok());
    }
}
