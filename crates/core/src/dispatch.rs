//! Batched parallel task planning with a deterministic merge.
//!
//! When a scheduling pass admits several tasks at the same instant, their
//! plan phases are independent *except* for four pieces of shared state:
//! benchmark-phone selection, placement-group acquisition, the cluster's
//! actor-id counter, and shared storage. The dispatcher splits admission
//! into three steps around that observation — `prepare` runs per task
//! from the platform's scheduling pass (interleaved with its placement
//! re-trials and resource bookkeeping), then `compute_and_merge` fans
//! the expensive part out and commits:
//!
//! 1. **Prepare (serial, admission order)** — for each task: validate,
//!    allocate, bind benchmark devices to phones with a reserved-phone
//!    overlay (so task B skips the phones task A picked, exactly as if
//!    A's runs were already submitted), acquire placement groups, and
//!    reserve the task's actor-id block. Everything order-dependent
//!    happens here, in the same order the sequential path would do it.
//! 2. **Compute (parallel)** — workers pull prepared tasks off a shared
//!    queue and run the full round timeline (`TaskRunner::plan_timeline`)
//!    against an immutable [`RoundPlanner`] snapshot, profile snapshots
//!    and a private scratch [`Storage`]. This is the expensive part —
//!    local training, DeviceFlow routing, aggregation — and it touches no
//!    shared state at all.
//! 3. **Merge (serial, admission order)** — scratch stores fold into
//!    shared storage, deferred benchmark runs are actually submitted, and
//!    the caller pushes each task's completion event in admission order,
//!    so the event queue assigns the same `(time, seq)` pairs a
//!    sequential run would.
//!
//! The compute step runs the *same* `plan_timeline` body as the
//! sequential path (behind the `PlanSubstrate` trait) and draws from the
//! same per-task rng stream, so a threaded run is byte-identical to
//! `--threads 1` — verified end-to-end by the workload crate's
//! thread-parity scenario tests.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use minipool::FixedPool;
use simdc_cluster::{JobPlan, JobSpec, LogicalCluster, PlacementGroupId, RoundPlanner};
use simdc_data::CtrDataset;
use simdc_phone::{PhoneMgr, PhoneProfile, RunPlan};
use simdc_simrt::RngStream;
use simdc_types::{DeviceGrade, PhoneId, Result, SimInstant, TaskId};

use crate::alloc::Allocation;
use crate::cloud::Storage;
use crate::runner::{GradePlacement, PlanSubstrate, TaskPlan, TaskRunner};
use crate::spec::TaskSpec;

/// One admission-ordered task the scheduler wants planned.
#[derive(Debug)]
pub(crate) struct PlanRequest {
    /// The task's specification.
    pub(crate) spec: TaskSpec,
    /// Its training dataset.
    pub(crate) dataset: Arc<CtrDataset>,
    /// The admission instant the plan starts from.
    pub(crate) start: SimInstant,
}

/// A task that survived the prepare step: placement bound, groups
/// acquired, actor ids reserved, snapshots taken. Owns everything its
/// worker needs, so compute touches no shared state.
pub(crate) struct Prepared {
    spec: TaskSpec,
    dataset: Arc<CtrDataset>,
    start: SimInstant,
    allocation: Allocation,
    placements: Vec<GradePlacement>,
    grade_groups: Vec<Option<PlacementGroupId>>,
    groups: Vec<PlacementGroupId>,
    /// First actor id of the task's reserved block.
    next_actor: u64,
    /// Fleet-averaged profile per grade index, frozen at prepare time
    /// (batch tasks cannot change profiles, so this equals what the
    /// sequential path would read mid-plan).
    effective: Vec<PhoneProfile>,
    /// Each bound benchmark phone's own profile at prepare time.
    bench_profiles: BTreeMap<PhoneId, PhoneProfile>,
}

/// What a worker hands back to the merge step.
struct Computed {
    report: crate::runner::TaskReport,
    benchmark_phones: Vec<PhoneId>,
    /// Benchmark run plans to submit at merge, in reservation order.
    deferred: Vec<(PhoneId, RunPlan)>,
    scratch: Storage,
    /// The task's placement groups, threaded through for the final
    /// [`TaskPlan`] (or for release on a merge failure).
    groups: Vec<PlacementGroupId>,
}

/// The worker-side [`PlanSubstrate`]: answers every query from prepared
/// snapshots and defers the one mutation (benchmark-run submission) to
/// the merge step.
struct SnapshotSubstrate<'a> {
    planner: &'a RoundPlanner,
    effective: &'a [PhoneProfile],
    bench_profiles: &'a BTreeMap<PhoneId, PhoneProfile>,
    next_actor: u64,
    deferred: Vec<(PhoneId, RunPlan)>,
}

impl PlanSubstrate for SnapshotSubstrate<'_> {
    fn effective_profile(&self, grade: DeviceGrade) -> PhoneProfile {
        self.effective[grade.index()].clone()
    }

    fn benchmark_profile(&self, grade: DeviceGrade, phone: PhoneId) -> PhoneProfile {
        self.bench_profiles
            .get(&phone)
            .cloned()
            .unwrap_or_else(|| PhoneProfile::for_grade(grade))
    }

    fn plan_round(
        &mut self,
        pg: PlacementGroupId,
        job: &JobSpec,
        rng: &mut RngStream,
    ) -> Result<JobPlan> {
        self.planner
            .plan_round_on_group(pg, job, rng, &mut self.next_actor)
    }

    fn submit_run(&mut self, phone: PhoneId, plan: RunPlan) -> Result<()> {
        self.deferred.push((phone, plan));
        Ok(())
    }
}

impl Prepared {
    /// The benchmark phones this task has bound — the caller adds them to
    /// the reserved-phone overlay before preparing the next task, exactly
    /// as sequential admission would have marked them busy by now.
    pub(crate) fn reserved_phones(&self) -> impl Iterator<Item = PhoneId> + '_ {
        self.bench_profiles.keys().copied()
    }
}

/// Runs the parallel compute step over every prepared task and merges
/// the results back in admission order. Returns one `(task, result)` per
/// prepared task, in the given order — the caller turns each `Ok` into a
/// completion event and each `Err` into the task's failure, exactly as
/// it would for sequential [`TaskRunner::plan`] outcomes. On a task's
/// failure its placement groups are already released; other tasks keep
/// theirs, as they would under sequential admission.
pub(crate) fn compute_and_merge(
    runner: &TaskRunner,
    prepared: Vec<(TaskId, Prepared)>,
    cluster: &mut LogicalCluster,
    phones: &mut PhoneMgr,
    storage: &mut Storage,
    pool: &FixedPool,
) -> Vec<(TaskId, Result<TaskPlan>)> {
    let planner = cluster.round_planner();
    let order: Vec<TaskId> = prepared.iter().map(|(id, _)| *id).collect();
    let work: Vec<(usize, Prepared)> = prepared
        .into_iter()
        .enumerate()
        .map(|(i, (_, p))| (i, p))
        .collect();
    let computed = pool.run_batch(work, |(i, p)| (i, compute_one(runner, &planner, p)));

    // Merge in admission order: run_batch preserves input order, but be
    // explicit — each result lands back at its own slot index.
    let mut by_slot: BTreeMap<usize, std::result::Result<Computed, PlanFailure>> =
        computed.into_iter().collect();
    order
        .into_iter()
        .enumerate()
        .map(|(i, id)| {
            let result = match by_slot.remove(&i) {
                Some(Ok(computed)) => merge_one(computed, cluster, phones, storage),
                Some(Err(failure)) => {
                    // Failed in the worker: give the groups back now, like
                    // the sequential path does on a `plan_timeline` error.
                    for pg in &failure.groups {
                        cluster.release_job(*pg);
                    }
                    Err(failure.error)
                }
                None => unreachable!("every prepared slot has a computed result"),
            };
            (id, result)
        })
        .collect()
}

/// A worker-side planning failure, carrying the groups the merge step
/// must release.
struct PlanFailure {
    error: simdc_types::SimdcError,
    groups: Vec<PlacementGroupId>,
}

/// The serial prepare step for one task. Mirrors the head of
/// [`TaskRunner::plan`] — same helper calls in the same order — with the
/// reserved-phone overlay standing in for not-yet-submitted benchmark
/// runs, then reserves the actor-id block its worker will draw from.
pub(crate) fn prepare(
    runner: &TaskRunner,
    req: PlanRequest,
    cluster: &mut LogicalCluster,
    phones: &PhoneMgr,
    reserved: &BTreeSet<PhoneId>,
) -> std::result::Result<Prepared, simdc_types::SimdcError> {
    let PlanRequest {
        spec,
        dataset,
        start,
    } = req;
    spec.validate()?;
    let allocation = runner.plan_allocation(&spec, cluster)?;
    let placements = TaskRunner::place_devices(&spec, &allocation, |grade, count| {
        phones.select_excluding(grade, count, start, reserved)
    })?;
    TaskRunner::check_phone_grades(&spec, &placements, |grade| {
        phones.try_effective_profile(grade).is_some()
    })?;
    let grade_groups = TaskRunner::acquire_grade_groups(&spec, &placements, cluster)?;
    let groups: Vec<PlacementGroupId> = grade_groups.iter().flatten().copied().collect();

    // The block of actor ids this task's rounds will consume: one id per
    // group placement per round, the exact count the sequential plan
    // draws from the shared counter.
    let per_round: u64 = groups
        .iter()
        .map(|pg| cluster.group_size(*pg).unwrap_or(0) as u64)
        .sum();
    let next_actor = cluster.reserve_actor_ids(u64::from(spec.rounds) * per_round);

    let effective = DeviceGrade::ALL
        .iter()
        .map(|&g| phones.effective_profile(g))
        .collect();
    let bench_profiles = placements
        .iter()
        .flat_map(|p| p.benchmark_devices.iter())
        .filter_map(|&(_dev, phone)| {
            phones
                .phone(phone)
                .map(|dev| (phone, dev.profile().clone()))
        })
        .collect();

    Ok(Prepared {
        spec,
        dataset,
        start,
        allocation,
        placements,
        grade_groups,
        groups,
        next_actor,
        effective,
        bench_profiles,
    })
}

/// The parallel compute step for one task: the full round timeline
/// against snapshots and a scratch store. Runs on a worker thread.
fn compute_one(
    runner: &TaskRunner,
    planner: &RoundPlanner,
    p: Prepared,
) -> std::result::Result<Computed, PlanFailure> {
    // simlint::allow(T1/rng-stream-aliasing): the label is formatted from
    // the task id, which the queue guarantees unique — two tasks can never
    // alias a stream, and the seed is per-task as well.
    let mut rng = RngStream::named(p.spec.seed, &format!("task/{}", p.spec.id.0));
    let mut scratch = Storage::new();
    let mut substrate = SnapshotSubstrate {
        planner,
        effective: &p.effective,
        bench_profiles: &p.bench_profiles,
        next_actor: p.next_actor,
        deferred: Vec::new(),
    };
    let planned = runner.plan_timeline(
        &p.spec,
        &p.dataset,
        &mut substrate,
        &mut scratch,
        p.start,
        p.allocation,
        &p.placements,
        &p.grade_groups,
        &mut rng,
    );
    match planned {
        Ok((report, benchmark_phones)) => Ok(Computed {
            report,
            benchmark_phones,
            deferred: substrate.deferred,
            scratch,
            groups: p.groups,
        }),
        Err(error) => Err(PlanFailure {
            error,
            groups: p.groups,
        }),
    }
}

/// The serial merge step for one task: fold the scratch store into shared
/// storage, actually submit the deferred benchmark runs, and assemble the
/// [`TaskPlan`]. A submission failure fails the task the way a
/// `plan_timeline` error would (groups released; earlier submissions of
/// the same task stand, as they do sequentially).
fn merge_one(
    computed: Computed,
    cluster: &mut LogicalCluster,
    phones: &mut PhoneMgr,
    storage: &mut Storage,
) -> Result<TaskPlan> {
    let Computed {
        report,
        benchmark_phones,
        deferred,
        scratch,
        groups,
    } = computed;
    storage.absorb(scratch);
    for (phone, plan) in deferred {
        if let Err(err) = phones.submit_run(phone, plan) {
            for pg in &groups {
                cluster.release_job(*pg);
            }
            return Err(err);
        }
    }
    Ok(TaskPlan::assemble(report, benchmark_phones, groups))
}
