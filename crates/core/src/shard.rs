//! Sharded fleet construction: building million-phone fleets across
//! worker threads with a byte-identical result.
//!
//! A [`simdc_phone::FleetSpec`] decomposes into contiguous id-range
//! segments ([`simdc_phone::FleetSegment`]) whose devices are a pure
//! function of `(segment, seed)`. That makes fleet construction
//! embarrassingly parallel: chunk the segments, build every chunk on
//! whatever thread is free, and concatenate the results in id order.
//! [`PhoneMgr::from_prebuilt`] then assembles the manager exactly as the
//! sequential [`PhoneMgr::with_fleet`] would have — `with_fleet` is itself
//! implemented over the same segment builders, so the two paths cannot
//! drift, and `--threads N` fleets are indistinguishable from `--threads 1`
//! fleets down to each phone's rng stream.

use minipool::FixedPool;
use simdc_phone::{FleetSpec, PhoneMgr};
use simdc_types::SimDuration;

/// Minimum phones per construction chunk: below this, per-chunk overhead
/// (allocation, queue traffic) outweighs the parallelism.
const MIN_CHUNK: usize = 4_096;

/// The chunk plan for building `spec` on `threads` workers: each segment
/// split so every worker gets several chunks to load-balance over, but no
/// chunk smaller than [`MIN_CHUNK`] phones.
fn chunk_plan(spec: &FleetSpec, threads: usize) -> Vec<simdc_phone::FleetSegment> {
    let total = spec.total().max(1);
    let target = (total.div_ceil(threads.max(1) * 4)).max(MIN_CHUNK);
    spec.segments()
        .iter()
        .flat_map(|seg| seg.chunked(target))
        .collect()
}

/// Builds the fleet for `spec`, fanning device construction out over
/// `pool`'s workers. Returns the same fleet [`PhoneMgr::with_fleet`]
/// builds — same ids, models, profiles and per-phone rng streams — in a
/// fraction of the wall-clock time at scale.
///
/// # Panics
///
/// Panics if `poll_interval` is zero (as `with_fleet` does).
#[must_use]
pub fn build_fleet(
    pool: &FixedPool,
    spec: FleetSpec,
    poll_interval: SimDuration,
    seed: u64,
) -> PhoneMgr {
    if pool.threads() <= 1 {
        return PhoneMgr::with_fleet(spec, poll_interval, seed);
    }
    let chunks = chunk_plan(&spec, pool.threads());
    let built = pool.run_batch(chunks, |seg| seg.build(seed));
    let phones = built.into_iter().flatten().collect();
    PhoneMgr::from_prebuilt(phones, poll_interval).expect("segment ids cannot collide")
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdc_types::{DeviceGrade, SimInstant};

    #[test]
    fn chunk_plan_tiles_the_id_space() {
        let spec = FleetSpec::scaled_paper(50_000);
        let chunks = chunk_plan(&spec, 8);
        assert!(chunks.len() > 4, "a 50k fleet must split across chunks");
        let mut next = 0u32;
        for c in &chunks {
            assert_eq!(c.start, next);
            assert!(c.count >= 1);
            next += c.count as u32;
        }
        assert_eq!(next as usize, spec.total());
    }

    #[test]
    fn parallel_fleet_matches_sequential_fleet() {
        let spec = FleetSpec::scaled_paper(10_000);
        let poll = SimDuration::from_secs(1);
        let seq = PhoneMgr::with_fleet(spec, poll, 9);
        let par = build_fleet(&FixedPool::new(4), spec, poll, 9);
        assert_eq!(seq.phones(), par.phones());
        let now = SimInstant::EPOCH;
        for grade in DeviceGrade::ALL {
            assert_eq!(seq.available(grade, now), par.available(grade, now));
            assert_eq!(
                seq.select(grade, 7, now).unwrap(),
                par.select(grade, 7, now).unwrap()
            );
            assert_eq!(
                seq.effective_profile(grade).beta(),
                par.effective_profile(grade).beta()
            );
        }
    }
}
