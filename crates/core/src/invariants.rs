//! Platform-invariant oracles shared by debug assertions, the scenario
//! fuzzer and post-run checks.
//!
//! Each oracle is a pure *reader*: it inspects platform components and
//! reports [`InvariantViolation`]s without touching any state, so the same
//! functions back three consumers:
//!
//! * the platform's own `debug_assert`s (armed in every debug build, so a
//!   violation aborts the run at the first event that exhibits it),
//! * [`crate::Platform::invariant_violations`], the post-run oracle the
//!   scenario fuzzer (`crates/workload/tests/fuzz_scenarios.rs`) asserts
//!   after every sampled spec, and
//! * ad-hoc tests that want one invariant in isolation.
//!
//! The oracle catalog (ARCHITECTURE.md § "Scenario DSL & invariant
//! oracles"):
//!
//! 1. **Freeze/release pairing** — at idle, every freeze was paired with
//!    its release: free capacity equals total capacity and no lease is
//!    held ([`idle_violations`]).
//! 2. **Capacity bounds** — free never exceeds total, for unit bundles
//!    and for every phone grade, at every event
//!    ([`capacity_violations`]).
//! 3. **No terminal-state clobber** — no `mark_*` call ever attempted a
//!    transition out of a terminal task state
//!    ([`clobber_violation`]).
//! 4. **Billing reconciliation** — the reported cloud spend equals billed
//!    node-seconds × the hourly rate ([`billing_violation`]).
//! 5. **Thread-count invariance** — byte-identical summaries for every
//!    worker-thread count; this one needs two runs, so it lives in the
//!    fuzzer itself rather than here.

use std::fmt;

use simdc_types::DeviceGrade;

use crate::resources::ResourceManager;

/// One violated platform invariant, with the numbers that prove it.
#[derive(Debug, Clone, PartialEq)]
pub enum InvariantViolation {
    /// A resource freeze was never paired with its release: the platform
    /// is idle but capacity is still held.
    LeaseLeak {
        /// Leases still held at idle.
        active_leases: usize,
        /// Free unit bundles at idle.
        free_bundles: u64,
        /// Total unit bundles.
        total_bundles: u64,
    },
    /// Free unit bundles exceed the total — a double release or a botched
    /// rescale.
    BundleOverflow {
        /// Free unit bundles.
        free: u64,
        /// Total unit bundles.
        total: u64,
    },
    /// Free phones of one grade exceed that grade's total.
    PhoneOverflow {
        /// The offending grade.
        grade: DeviceGrade,
        /// Free phones of the grade.
        free: u64,
        /// Total phones of the grade.
        total: u64,
    },
    /// Cloud placement groups are still held at idle.
    PlacementLeak {
        /// Placement groups still held.
        active_jobs: usize,
    },
    /// A `mark_*` call attempted to transition a task out of a terminal
    /// state (the pre-PR-3 clobber bug); the guard rejected it and the
    /// queue counted the attempt.
    TerminalClobber {
        /// Rejected terminal-state transitions observed.
        attempts: u64,
    },
    /// The reported cloud spend does not reconcile with billed
    /// node-seconds × the hourly rate.
    BillingMismatch {
        /// Spend the cost meter reported.
        reported: f64,
        /// Spend implied by the lifecycle log (node-seconds pricing).
        expected: f64,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::LeaseLeak {
                active_leases,
                free_bundles,
                total_bundles,
            } => write!(
                f,
                "resource lease leak at idle: {active_leases} active leases, \
                 {free_bundles}/{total_bundles} bundles free"
            ),
            InvariantViolation::BundleOverflow { free, total } => {
                write!(f, "free unit bundles exceed total: {free} > {total}")
            }
            InvariantViolation::PhoneOverflow { grade, free, total } => {
                write!(f, "free {grade:?} phones exceed total: {free} > {total}")
            }
            InvariantViolation::PlacementLeak { active_jobs } => {
                write!(
                    f,
                    "placement-group leak at idle: {active_jobs} groups still held"
                )
            }
            InvariantViolation::TerminalClobber { attempts } => write!(
                f,
                "terminal-state clobber: {attempts} rejected transitions out of terminal states"
            ),
            InvariantViolation::BillingMismatch { reported, expected } => write!(
                f,
                "billing mismatch: reported cost {reported} but node-seconds pricing implies \
                 {expected}"
            ),
        }
    }
}

/// Oracle 2 — capacity bounds: free ≤ total for unit bundles and for every
/// phone grade. Holds at *every* event, not just at idle; the platform
/// asserts it (debug builds) on each dispatch and completion.
#[must_use]
pub fn capacity_violations(rm: &ResourceManager) -> Vec<InvariantViolation> {
    let mut violations = Vec::new();
    if rm.free_bundles() > rm.total_bundles() {
        violations.push(InvariantViolation::BundleOverflow {
            free: rm.free_bundles(),
            total: rm.total_bundles(),
        });
    }
    let totals = rm.total_phones();
    for grade in [DeviceGrade::High, DeviceGrade::Low] {
        let free = rm.free_phones(grade);
        let total = *totals.get(grade);
        if free > total {
            violations.push(InvariantViolation::PhoneOverflow { grade, free, total });
        }
    }
    violations
}

/// Oracle 1 — freeze/release pairing at idle: no active lease, free ==
/// total, and no placement group still held. Only meaningful once the
/// platform has drained (nothing pending or running).
#[must_use]
pub fn idle_violations(rm: &ResourceManager, active_jobs: usize) -> Vec<InvariantViolation> {
    let mut violations = Vec::new();
    if !rm.fully_free() {
        violations.push(InvariantViolation::LeaseLeak {
            active_leases: rm.active_leases(),
            free_bundles: rm.free_bundles(),
            total_bundles: rm.total_bundles(),
        });
    }
    if active_jobs > 0 {
        violations.push(InvariantViolation::PlacementLeak { active_jobs });
    }
    violations
}

/// Oracle 3 — no terminal-state clobber: the queue counted zero rejected
/// transitions out of terminal states.
#[must_use]
pub fn clobber_violation(attempts: u64) -> Option<InvariantViolation> {
    (attempts > 0).then_some(InvariantViolation::TerminalClobber { attempts })
}

/// Oracle 4 — node-hour billing reconciles with the lifecycle log:
/// `reported == node_seconds * hourly_rate / 3600` within one float
/// rounding step. Call after the final partial node-hour was flushed
/// ([`crate::Platform::finalize_cost`]); an unflushed tail is a genuine
/// mismatch this oracle is meant to catch.
#[must_use]
pub fn billing_violation(
    reported: f64,
    node_seconds: f64,
    hourly_rate: f64,
) -> Option<InvariantViolation> {
    let expected = node_seconds * hourly_rate / 3_600.0;
    let tolerance = 1e-9 * expected.abs().max(1.0);
    ((reported - expected).abs() > tolerance)
        .then_some(InvariantViolation::BillingMismatch { reported, expected })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdc_types::PerGrade;

    fn rm() -> ResourceManager {
        ResourceManager::new(10, PerGrade::from_parts(4, 6))
    }

    #[test]
    fn fresh_manager_passes_every_reader_oracle() {
        let rm = rm();
        assert!(capacity_violations(&rm).is_empty());
        assert!(idle_violations(&rm, 0).is_empty());
        assert!(clobber_violation(0).is_none());
        assert!(billing_violation(1.0, 3_600.0, 1.0).is_none());
    }

    #[test]
    fn held_lease_is_an_idle_leak_but_not_a_capacity_violation() {
        let mut rm = rm();
        rm.freeze(
            simdc_types::TaskId(1),
            crate::ResourceClaim {
                unit_bundles: 4,
                phones: PerGrade::from_parts(1, 0),
            },
        )
        .unwrap();
        assert!(capacity_violations(&rm).is_empty(), "free < total is fine");
        let violations = idle_violations(&rm, 0);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            violations[0],
            InvariantViolation::LeaseLeak {
                active_leases: 1,
                free_bundles: 6,
                total_bundles: 10,
            }
        ));
    }

    #[test]
    fn overflow_and_placement_and_clobber_and_billing_fire() {
        let mut rm = rm();
        // Shrinking the total below the free count is the overflow shape
        // a double release would produce.
        rm.scale_bundles(5);
        rm.set_total_bundles(10);
        assert!(capacity_violations(&rm).is_empty(), "set_total re-derives");
        assert_eq!(
            idle_violations(&rm, 3),
            vec![InvariantViolation::PlacementLeak { active_jobs: 3 }]
        );
        assert_eq!(
            clobber_violation(2),
            Some(InvariantViolation::TerminalClobber { attempts: 2 })
        );
        let billing = billing_violation(5.0, 3_600.0, 1.0).expect("5 != 1");
        assert!(billing.to_string().contains("billing mismatch"));
    }

    #[test]
    fn violations_render_their_numbers() {
        let v = InvariantViolation::BundleOverflow { free: 7, total: 5 };
        assert_eq!(v.to_string(), "free unit bundles exceed total: 7 > 5");
        let leak = InvariantViolation::LeaseLeak {
            active_leases: 1,
            free_bundles: 2,
            total_bundles: 3,
        };
        assert!(leak.to_string().contains("1 active leases"));
    }
}
