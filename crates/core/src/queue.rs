//! The task queue and task lifecycle states.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use simdc_types::{Result, SimInstant, SimdcError, TaskId};

use crate::spec::TaskSpec;

/// Lifecycle state of a submitted task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TaskState {
    /// Waiting in the queue.
    Pending,
    /// Resources frozen, executing.
    Running {
        /// Virtual start time.
        started_at: SimInstant,
    },
    /// Finished successfully.
    Completed {
        /// Virtual start time.
        started_at: SimInstant,
        /// Virtual completion time.
        finished_at: SimInstant,
    },
    /// Failed (message explains why).
    Failed {
        /// Failure description.
        reason: String,
    },
}

impl TaskState {
    /// Whether the task still occupies queue capacity.
    #[must_use]
    pub fn is_pending(&self) -> bool {
        matches!(self, TaskState::Pending)
    }

    /// Whether the task is executing.
    #[must_use]
    pub fn is_running(&self) -> bool {
        matches!(self, TaskState::Running { .. })
    }

    /// Whether the task reached a terminal state.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(self, TaskState::Completed { .. } | TaskState::Failed { .. })
    }
}

/// A queued task: spec + state + submission order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// The specification.
    pub spec: TaskSpec,
    /// Current lifecycle state.
    pub state: TaskState,
    /// Monotonic submission sequence (FIFO tie-break).
    pub submitted_seq: u64,
}

/// The Task Queue of §III-B: ordered by priority (descending) with FIFO
/// tie-break.
#[derive(Debug, Default)]
pub struct TaskQueue {
    records: BTreeMap<TaskId, TaskRecord>,
    next_seq: u64,
}

impl TaskQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        TaskQueue::default()
    }

    /// Submits a validated spec.
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` on duplicate ids or propagates spec
    /// validation errors.
    pub fn submit(&mut self, spec: TaskSpec) -> Result<()> {
        spec.validate()?;
        if self.records.contains_key(&spec.id) {
            return Err(SimdcError::InvalidConfig(format!(
                "task {} already submitted",
                spec.id
            )));
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.records.insert(
            spec.id,
            TaskRecord {
                spec,
                state: TaskState::Pending,
                submitted_seq: seq,
            },
        );
        Ok(())
    }

    /// A record by id.
    #[must_use]
    pub fn get(&self, id: TaskId) -> Option<&TaskRecord> {
        self.records.get(&id)
    }

    /// Mutable record access.
    pub fn get_mut(&mut self, id: TaskId) -> Option<&mut TaskRecord> {
        self.records.get_mut(&id)
    }

    /// Pending tasks ordered by `(priority desc, submission asc)` — the
    /// order the greedy scheduler scans.
    #[must_use]
    pub fn pending_by_priority(&self) -> Vec<TaskId> {
        let mut pending: Vec<&TaskRecord> = self
            .records
            .values()
            .filter(|r| r.state.is_pending())
            .collect();
        pending.sort_by(|a, b| {
            b.spec
                .priority
                .cmp(&a.spec.priority)
                .then(a.submitted_seq.cmp(&b.submitted_seq))
        });
        pending.iter().map(|r| r.spec.id).collect()
    }

    /// Number of tasks in each broad state: `(pending, running, terminal)`.
    #[must_use]
    pub fn census(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for r in self.records.values() {
            if r.state.is_pending() {
                counts.0 += 1;
            } else if r.state.is_running() {
                counts.1 += 1;
            } else {
                counts.2 += 1;
            }
        }
        counts
    }

    /// Marks a task running.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::TaskNotFound`] for unknown ids and
    /// `InvalidConfig` when the task is not pending.
    pub fn mark_running(&mut self, id: TaskId, at: SimInstant) -> Result<()> {
        let record = self
            .records
            .get_mut(&id)
            .ok_or(SimdcError::TaskNotFound(id))?;
        if !record.state.is_pending() {
            return Err(SimdcError::InvalidConfig(format!(
                "task {id} is not pending"
            )));
        }
        record.state = TaskState::Running { started_at: at };
        Ok(())
    }

    /// Marks a running task completed.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::TaskNotFound`] / `InvalidConfig` analogous to
    /// [`TaskQueue::mark_running`].
    pub fn mark_completed(&mut self, id: TaskId, at: SimInstant) -> Result<()> {
        let record = self
            .records
            .get_mut(&id)
            .ok_or(SimdcError::TaskNotFound(id))?;
        match record.state {
            TaskState::Running { started_at } => {
                record.state = TaskState::Completed {
                    started_at,
                    finished_at: at,
                };
                Ok(())
            }
            _ => Err(SimdcError::InvalidConfig(format!(
                "task {id} is not running"
            ))),
        }
    }

    /// Marks a task failed from any non-terminal state.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::TaskNotFound`] for unknown ids.
    pub fn mark_failed(&mut self, id: TaskId, reason: impl Into<String>) -> Result<()> {
        let record = self
            .records
            .get_mut(&id)
            .ok_or(SimdcError::TaskNotFound(id))?;
        record.state = TaskState::Failed {
            reason: reason.into(),
        };
        Ok(())
    }

    /// All task ids in submission order.
    #[must_use]
    pub fn all_ids(&self) -> Vec<TaskId> {
        let mut ids: Vec<(u64, TaskId)> = self
            .records
            .values()
            .map(|r| (r.submitted_seq, r.spec.id))
            .collect();
        ids.sort_unstable();
        ids.into_iter().map(|(_, id)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GradeRequirement;
    use simdc_types::DeviceGrade;

    fn spec(id: u64, priority: u32) -> TaskSpec {
        TaskSpec::builder(TaskId(id))
            .priority(priority)
            .grade(GradeRequirement::sized(DeviceGrade::High, 4))
            .build()
            .unwrap()
    }

    #[test]
    fn priority_order_with_fifo_tiebreak() {
        let mut q = TaskQueue::new();
        q.submit(spec(1, 5)).unwrap();
        q.submit(spec(2, 9)).unwrap();
        q.submit(spec(3, 5)).unwrap();
        assert_eq!(
            q.pending_by_priority(),
            vec![TaskId(2), TaskId(1), TaskId(3)]
        );
    }

    #[test]
    fn duplicate_submission_rejected() {
        let mut q = TaskQueue::new();
        q.submit(spec(1, 0)).unwrap();
        assert!(q.submit(spec(1, 3)).is_err());
    }

    #[test]
    fn lifecycle_transitions() {
        let mut q = TaskQueue::new();
        q.submit(spec(1, 0)).unwrap();
        let t0 = SimInstant::EPOCH;
        q.mark_running(TaskId(1), t0).unwrap();
        assert!(q.get(TaskId(1)).unwrap().state.is_running());
        assert!(q.mark_running(TaskId(1), t0).is_err());
        let t1 = t0 + simdc_types::SimDuration::from_secs(5);
        q.mark_completed(TaskId(1), t1).unwrap();
        assert!(q.get(TaskId(1)).unwrap().state.is_terminal());
        assert!(q.mark_completed(TaskId(1), t1).is_err());
        assert_eq!(q.census(), (0, 0, 1));
    }

    #[test]
    fn failing_a_pending_task() {
        let mut q = TaskQueue::new();
        q.submit(spec(1, 0)).unwrap();
        q.mark_failed(TaskId(1), "resources never became available")
            .unwrap();
        assert!(q.get(TaskId(1)).unwrap().state.is_terminal());
        assert!(q.mark_failed(TaskId(9), "x").is_err());
    }

    #[test]
    fn census_counts_states() {
        let mut q = TaskQueue::new();
        for i in 0..4 {
            q.submit(spec(i, 0)).unwrap();
        }
        q.mark_running(TaskId(0), SimInstant::EPOCH).unwrap();
        q.mark_failed(TaskId(1), "boom").unwrap();
        assert_eq!(q.census(), (2, 1, 1));
        assert_eq!(q.all_ids().len(), 4);
    }
}
