//! The task queue and task lifecycle states.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};
use simdc_types::{Result, SimInstant, SimdcError, TaskId};

use crate::spec::TaskSpec;

/// Lifecycle state of a submitted task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TaskState {
    /// Waiting in the queue.
    Pending,
    /// Resources frozen, executing.
    Running {
        /// Virtual start time.
        started_at: SimInstant,
    },
    /// Finished successfully.
    Completed {
        /// Virtual start time.
        started_at: SimInstant,
        /// Virtual completion time.
        finished_at: SimInstant,
    },
    /// Failed (message explains why).
    Failed {
        /// Failure description.
        reason: String,
    },
}

impl TaskState {
    /// Whether the task still occupies queue capacity.
    #[must_use]
    pub fn is_pending(&self) -> bool {
        matches!(self, TaskState::Pending)
    }

    /// Whether the task is executing.
    #[must_use]
    pub fn is_running(&self) -> bool {
        matches!(self, TaskState::Running { .. })
    }

    /// Whether the task reached a terminal state.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(self, TaskState::Completed { .. } | TaskState::Failed { .. })
    }
}

/// A queued task: spec + state + submission order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// The specification.
    pub spec: TaskSpec,
    /// Current lifecycle state.
    pub state: TaskState,
    /// Monotonic submission sequence (FIFO tie-break).
    pub submitted_seq: u64,
}

/// Index key ordering pending tasks by `(priority desc, submission asc)`.
type PendingKey = (Reverse<u32>, u64, TaskId);

/// The Task Queue of §III-B: ordered by priority (descending) with FIFO
/// tie-break.
///
/// The scan order is maintained incrementally: `pending` holds one key per
/// pending task, inserted on submit and removed on the transition out of
/// `Pending`, so a scheduling pass is an ordered walk instead of an
/// O(n log n) collect-and-sort over every record.
#[derive(Debug, Default)]
pub struct TaskQueue {
    records: BTreeMap<TaskId, TaskRecord>,
    pending: BTreeSet<PendingKey>,
    next_seq: u64,
    /// `mark_*` calls that tried to transition a task already in a
    /// terminal state. The guards reject every such call, so healthy code
    /// never increments this — the invariant oracles
    /// (`crate::invariants::clobber_violation`) assert it stays zero.
    terminal_clobber_attempts: u64,
}

impl TaskQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        TaskQueue::default()
    }

    /// Submits a validated spec.
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` on duplicate ids or propagates spec
    /// validation errors.
    pub fn submit(&mut self, spec: TaskSpec) -> Result<()> {
        spec.validate()?;
        if self.records.contains_key(&spec.id) {
            return Err(SimdcError::InvalidConfig(format!(
                "task {} already submitted",
                spec.id
            )));
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert((Reverse(spec.priority), seq, spec.id));
        self.records.insert(
            spec.id,
            TaskRecord {
                spec,
                state: TaskState::Pending,
                submitted_seq: seq,
            },
        );
        Ok(())
    }

    /// A record by id.
    #[must_use]
    pub fn get(&self, id: TaskId) -> Option<&TaskRecord> {
        self.records.get(&id)
    }

    // No public mutable record access: the incremental pending index is
    // keyed by (priority, seq, id), so out-of-band mutation of a record's
    // spec or state would silently desync it. All lifecycle transitions go
    // through the mark_* methods, which maintain the index.

    /// Pending tasks ordered by `(priority desc, submission asc)` — the
    /// order the greedy scheduler scans. A plain walk of the incremental
    /// index; no per-call sorting.
    #[must_use]
    pub fn pending_by_priority(&self) -> Vec<TaskId> {
        self.iter_pending().collect()
    }

    /// Iterates pending task ids in `(priority desc, submission asc)`
    /// order without allocating.
    pub fn iter_pending(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.pending.iter().map(|&(_, _, id)| id)
    }

    /// Number of tasks in each broad state: `(pending, running, terminal)`.
    #[must_use]
    pub fn census(&self) -> (usize, usize, usize) {
        let mut counts = (self.pending.len(), 0, 0);
        for r in self.records.values() {
            if r.state.is_running() {
                counts.1 += 1;
            } else if r.state.is_terminal() {
                counts.2 += 1;
            }
        }
        counts
    }

    /// `mark_*` calls rejected because the task was already terminal — the
    /// clobber-attempt counter the invariant oracles assert stays zero
    /// (see [`crate::invariants::clobber_violation`]).
    #[must_use]
    pub fn terminal_clobber_attempts(&self) -> u64 {
        self.terminal_clobber_attempts
    }

    /// Marks a task running.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::TaskNotFound`] for unknown ids and
    /// `InvalidConfig` when the task is not pending.
    pub fn mark_running(&mut self, id: TaskId, at: SimInstant) -> Result<()> {
        let record = self
            .records
            .get_mut(&id)
            .ok_or(SimdcError::TaskNotFound(id))?;
        if !record.state.is_pending() {
            if record.state.is_terminal() {
                self.terminal_clobber_attempts += 1;
            }
            return Err(SimdcError::InvalidConfig(format!(
                "task {id} is not pending"
            )));
        }
        self.pending
            .remove(&(Reverse(record.spec.priority), record.submitted_seq, id));
        record.state = TaskState::Running { started_at: at };
        Ok(())
    }

    /// Marks a running task completed.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::TaskNotFound`] / `InvalidConfig` analogous to
    /// [`TaskQueue::mark_running`].
    pub fn mark_completed(&mut self, id: TaskId, at: SimInstant) -> Result<()> {
        let record = self
            .records
            .get_mut(&id)
            .ok_or(SimdcError::TaskNotFound(id))?;
        match record.state {
            TaskState::Running { started_at } => {
                record.state = TaskState::Completed {
                    started_at,
                    finished_at: at,
                };
                Ok(())
            }
            _ => {
                if record.state.is_terminal() {
                    self.terminal_clobber_attempts += 1;
                }
                Err(SimdcError::InvalidConfig(format!(
                    "task {id} is not running"
                )))
            }
        }
    }

    /// Marks a task failed from any non-terminal state.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::TaskNotFound`] for unknown ids and
    /// `InvalidConfig` for tasks already in a terminal state — a
    /// `Completed` (or `Failed`) record is immutable history and must not
    /// be clobbered.
    pub fn mark_failed(&mut self, id: TaskId, reason: impl Into<String>) -> Result<()> {
        let record = self
            .records
            .get_mut(&id)
            .ok_or(SimdcError::TaskNotFound(id))?;
        if record.state.is_terminal() {
            self.terminal_clobber_attempts += 1;
            return Err(SimdcError::InvalidConfig(format!(
                "task {id} is already terminal"
            )));
        }
        self.pending
            .remove(&(Reverse(record.spec.priority), record.submitted_seq, id));
        record.state = TaskState::Failed {
            reason: reason.into(),
        };
        Ok(())
    }

    /// All task ids in submission order.
    #[must_use]
    pub fn all_ids(&self) -> Vec<TaskId> {
        let mut ids: Vec<(u64, TaskId)> = self
            .records
            .values()
            .map(|r| (r.submitted_seq, r.spec.id))
            .collect();
        ids.sort_unstable();
        ids.into_iter().map(|(_, id)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GradeRequirement;
    use simdc_types::DeviceGrade;

    fn spec(id: u64, priority: u32) -> TaskSpec {
        TaskSpec::builder(TaskId(id))
            .priority(priority)
            .grade(GradeRequirement::sized(DeviceGrade::High, 4))
            .build()
            .unwrap()
    }

    #[test]
    fn priority_order_with_fifo_tiebreak() {
        let mut q = TaskQueue::new();
        q.submit(spec(1, 5)).unwrap();
        q.submit(spec(2, 9)).unwrap();
        q.submit(spec(3, 5)).unwrap();
        assert_eq!(
            q.pending_by_priority(),
            vec![TaskId(2), TaskId(1), TaskId(3)]
        );
    }

    #[test]
    fn duplicate_submission_rejected() {
        let mut q = TaskQueue::new();
        q.submit(spec(1, 0)).unwrap();
        assert!(q.submit(spec(1, 3)).is_err());
    }

    #[test]
    fn lifecycle_transitions() {
        let mut q = TaskQueue::new();
        q.submit(spec(1, 0)).unwrap();
        let t0 = SimInstant::EPOCH;
        q.mark_running(TaskId(1), t0).unwrap();
        assert!(q.get(TaskId(1)).unwrap().state.is_running());
        assert!(q.mark_running(TaskId(1), t0).is_err());
        let t1 = t0 + simdc_types::SimDuration::from_secs(5);
        q.mark_completed(TaskId(1), t1).unwrap();
        assert!(q.get(TaskId(1)).unwrap().state.is_terminal());
        assert!(q.mark_completed(TaskId(1), t1).is_err());
        assert_eq!(q.census(), (0, 0, 1));
    }

    #[test]
    fn failing_a_pending_task() {
        let mut q = TaskQueue::new();
        q.submit(spec(1, 0)).unwrap();
        q.mark_failed(TaskId(1), "resources never became available")
            .unwrap();
        assert!(q.get(TaskId(1)).unwrap().state.is_terminal());
        assert!(q.mark_failed(TaskId(9), "x").is_err());
        assert!(q.pending_by_priority().is_empty(), "failed task left index");
    }

    #[test]
    fn mark_failed_rejects_terminal_states() {
        let mut q = TaskQueue::new();
        q.submit(spec(1, 0)).unwrap();
        q.mark_running(TaskId(1), SimInstant::EPOCH).unwrap();
        let t1 = SimInstant::EPOCH + simdc_types::SimDuration::from_secs(5);
        q.mark_completed(TaskId(1), t1).unwrap();
        // A completed record must not be clobbered to Failed.
        assert!(q.mark_failed(TaskId(1), "late failure").is_err());
        assert!(matches!(
            q.get(TaskId(1)).unwrap().state,
            TaskState::Completed { .. }
        ));
        // Failed is terminal too: no double-fail with a new reason.
        q.submit(spec(2, 0)).unwrap();
        q.mark_failed(TaskId(2), "first reason").unwrap();
        assert!(q.mark_failed(TaskId(2), "second reason").is_err());
        match &q.get(TaskId(2)).unwrap().state {
            TaskState::Failed { reason } => assert_eq!(reason, "first reason"),
            other => panic!("unexpected state {other:?}"),
        }
    }

    #[test]
    fn pending_index_tracks_state_transitions() {
        let mut q = TaskQueue::new();
        for (id, priority) in [(1u64, 3u32), (2, 7), (3, 7), (4, 1)] {
            q.submit(spec(id, priority)).unwrap();
        }
        assert_eq!(
            q.pending_by_priority(),
            vec![TaskId(2), TaskId(3), TaskId(1), TaskId(4)]
        );
        q.mark_running(TaskId(3), SimInstant::EPOCH).unwrap();
        assert_eq!(
            q.pending_by_priority(),
            vec![TaskId(2), TaskId(1), TaskId(4)]
        );
        q.mark_failed(TaskId(1), "boom").unwrap();
        assert_eq!(q.pending_by_priority(), vec![TaskId(2), TaskId(4)]);
        // The allocation-free iterator walks the same order.
        let scanned: Vec<TaskId> = q.iter_pending().collect();
        assert_eq!(scanned, q.pending_by_priority());
        assert_eq!(q.census().0, 2);
    }

    #[test]
    fn census_counts_states() {
        let mut q = TaskQueue::new();
        for i in 0..4 {
            q.submit(spec(i, 0)).unwrap();
        }
        q.mark_running(TaskId(0), SimInstant::EPOCH).unwrap();
        q.mark_failed(TaskId(1), "boom").unwrap();
        assert_eq!(q.census(), (2, 1, 1));
        assert_eq!(q.all_ids().len(), 4);
    }
}
