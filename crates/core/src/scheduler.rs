//! The greedy task scheduler (§III-B).
//!
//! Periodically scans the queue in `(priority desc, submission asc)` order
//! and starts every pending task whose resource claim currently fits —
//! "prioritizing tasks that meet resource requirements while maximizing
//! the anticipated benefits".

use simdc_types::{DeviceGrade, PerGrade, TaskId};

use crate::queue::TaskQueue;
use crate::resources::{ResourceClaim, ResourceManager};
use crate::spec::TaskSpec;

/// Derives a spec's resource claim: all requested unit bundles plus the
/// compute and benchmarking phones of every grade.
#[must_use]
pub fn claim_for(spec: &TaskSpec) -> ResourceClaim {
    let mut phones = PerGrade::new(0u64);
    let mut bundles = 0u64;
    for g in &spec.grades {
        bundles += g.logical_unit_bundles;
        *phones.get_mut(g.grade) += g.phones + g.benchmark_phones;
    }
    ResourceClaim {
        unit_bundles: bundles,
        phones,
    }
}

/// The greedy scheduler.
#[derive(Debug, Default)]
pub struct GreedyScheduler;

impl GreedyScheduler {
    /// Creates a scheduler.
    #[must_use]
    pub fn new() -> Self {
        GreedyScheduler
    }

    /// Picks the pending tasks to start now, freezing their claims in
    /// priority order. Tasks that do not fit are skipped (a later, smaller
    /// task may still be admitted — classic greedy backfilling).
    ///
    /// A pass walks the queue's incremental `(priority desc, submission
    /// asc)` index directly — no per-pass sort — which keeps the
    /// event-driven core cheap when every completion triggers a re-run.
    pub fn schedule(&self, queue: &TaskQueue, rm: &mut ResourceManager) -> Vec<TaskId> {
        self.schedule_filtered(queue, rm, |_| true)
    }

    /// [`GreedyScheduler::schedule`] with a second resource dimension:
    /// `cloud_fits` answers whether the elastic cloud tier can physically
    /// place the task's actor bundles *right now* (ready nodes only,
    /// fragmentation included). A task whose quantities fit the Resource
    /// Manager but whose placement would block — capacity still booting,
    /// or free units fragmented across nodes — is skipped without
    /// freezing, staying pending until a node-ready or completion event
    /// re-runs the pass. The platform derives queue pressure for the
    /// autoscaler from exactly those skipped tasks.
    pub fn schedule_filtered(
        &self,
        queue: &TaskQueue,
        rm: &mut ResourceManager,
        mut cloud_fits: impl FnMut(&TaskSpec) -> bool,
    ) -> Vec<TaskId> {
        let mut started = Vec::new();
        for id in queue.iter_pending() {
            let Some(record) = queue.get(id) else {
                continue;
            };
            let claim = claim_for(&record.spec);
            if !rm.fits(&claim) || !cloud_fits(&record.spec) {
                continue;
            }
            if rm.freeze(id, claim).is_ok() {
                started.push(id);
            }
        }
        started
    }

    /// Whether a spec could *ever* run on the given total capacity
    /// (ignoring current leases) — used to fail impossible tasks instead of
    /// starving them.
    #[must_use]
    pub fn feasible_at_all(
        &self,
        spec: &TaskSpec,
        total_bundles: u64,
        total_phones: PerGrade<u64>,
    ) -> bool {
        let claim = claim_for(spec);
        claim.unit_bundles <= total_bundles
            && DeviceGrade::ALL
                .iter()
                .all(|&g| *claim.phones.get(g) <= *total_phones.get(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GradeRequirement;
    use simdc_types::DeviceGrade;

    fn spec(id: u64, priority: u32, bundles: u64, phones: u64) -> TaskSpec {
        TaskSpec::builder(TaskId(id))
            .priority(priority)
            .grade(GradeRequirement {
                grade: DeviceGrade::High,
                total_devices: 10,
                benchmark_phones: 0,
                logical_unit_bundles: bundles,
                units_per_device: 1,
                phones,
            })
            .build()
            .unwrap()
    }

    #[test]
    fn claim_sums_across_grades() {
        let mut b = TaskSpec::builder(TaskId(1));
        b.grade(GradeRequirement {
            grade: DeviceGrade::High,
            total_devices: 10,
            benchmark_phones: 2,
            logical_unit_bundles: 40,
            units_per_device: 8,
            phones: 3,
        })
        .grade(GradeRequirement {
            grade: DeviceGrade::Low,
            total_devices: 10,
            benchmark_phones: 1,
            logical_unit_bundles: 10,
            units_per_device: 1,
            phones: 4,
        });
        let claim = claim_for(&b.build().unwrap());
        assert_eq!(claim.unit_bundles, 50);
        assert_eq!(claim.phones, PerGrade::from_parts(5, 5));
    }

    #[test]
    fn priority_wins_then_backfill() {
        let mut queue = TaskQueue::new();
        // 100-bundle capacity: the 80-bundle high-priority task starts, the
        // 50-bundle task does not fit, the 20-bundle task backfills.
        queue.submit(spec(1, 1, 50, 0)).unwrap();
        queue.submit(spec(2, 9, 80, 0)).unwrap();
        queue.submit(spec(3, 0, 20, 0)).unwrap();
        let mut rm = ResourceManager::new(100, PerGrade::new(10));
        let started = GreedyScheduler::new().schedule(&queue, &mut rm);
        assert_eq!(started, vec![TaskId(2), TaskId(3)]);
        assert_eq!(rm.free_bundles(), 0);
    }

    #[test]
    fn phone_shortage_blocks_admission() {
        let mut queue = TaskQueue::new();
        queue.submit(spec(1, 5, 10, 8)).unwrap();
        queue.submit(spec(2, 4, 10, 8)).unwrap();
        let mut rm = ResourceManager::new(100, PerGrade::from_parts(10, 0));
        let started = GreedyScheduler::new().schedule(&queue, &mut rm);
        assert_eq!(started, vec![TaskId(1)]);
        assert_eq!(rm.free_phones(DeviceGrade::High), 2);
    }

    #[test]
    fn zero_claim_specs_always_admitted() {
        // A spec asking for no bundles and no phones (pure bookkeeping
        // task) must be admitted even on a fully exhausted manager.
        let mut queue = TaskQueue::new();
        queue.submit(spec(1, 0, 100, 10)).unwrap();
        queue.submit(spec(2, 0, 0, 0)).unwrap();
        queue.submit(spec(3, 0, 0, 0)).unwrap();
        let mut rm = ResourceManager::new(100, PerGrade::from_parts(10, 0));
        let started = GreedyScheduler::new().schedule(&queue, &mut rm);
        assert_eq!(started, vec![TaskId(1), TaskId(2), TaskId(3)]);
        assert_eq!(rm.free_bundles(), 0);
        // And the claim itself is genuinely zero.
        let claim = claim_for(&spec(9, 0, 0, 0));
        assert_eq!(claim.unit_bundles, 0);
        assert_eq!(claim.phones, PerGrade::new(0));
    }

    #[test]
    fn backfills_past_oversized_head_of_queue() {
        // Head of queue (highest priority) can never fit even an idle
        // manager of this size; everything behind it still gets admitted.
        let mut queue = TaskQueue::new();
        queue.submit(spec(1, 9, 500, 0)).unwrap(); // oversized head
        queue.submit(spec(2, 5, 60, 2)).unwrap();
        queue.submit(spec(3, 1, 40, 3)).unwrap();
        let mut rm = ResourceManager::new(100, PerGrade::from_parts(10, 0));
        let started = GreedyScheduler::new().schedule(&queue, &mut rm);
        assert_eq!(started, vec![TaskId(2), TaskId(3)]);
        assert_eq!(rm.free_bundles(), 0);
        assert_eq!(rm.free_phones(DeviceGrade::High), 5);
        // The head stays pending for the platform's starvation handling.
        assert!(queue.get(TaskId(1)).unwrap().state.is_pending());
    }

    #[test]
    fn equal_priority_ties_break_by_submission_order() {
        // Capacity for exactly one of the two equal-priority tasks: the
        // earlier submission wins, regardless of id order.
        let mut queue = TaskQueue::new();
        queue.submit(spec(7, 5, 80, 0)).unwrap(); // submitted first
        queue.submit(spec(2, 5, 80, 0)).unwrap();
        let mut rm = ResourceManager::new(100, PerGrade::new(10));
        let started = GreedyScheduler::new().schedule(&queue, &mut rm);
        assert_eq!(started, vec![TaskId(7)]);
        // Higher priority still beats earlier submission.
        let mut queue = TaskQueue::new();
        queue.submit(spec(7, 5, 80, 0)).unwrap();
        queue.submit(spec(2, 6, 80, 0)).unwrap();
        let mut rm = ResourceManager::new(100, PerGrade::new(10));
        let started = GreedyScheduler::new().schedule(&queue, &mut rm);
        assert_eq!(started, vec![TaskId(2)]);
    }

    #[test]
    fn schedule_on_empty_queue_is_a_no_op() {
        let queue = TaskQueue::new();
        let mut rm = ResourceManager::new(100, PerGrade::new(10));
        assert!(GreedyScheduler::new().schedule(&queue, &mut rm).is_empty());
        assert_eq!(rm.free_bundles(), 100);
    }

    #[test]
    fn feasibility_check_uses_total_capacity() {
        let s = GreedyScheduler::new();
        let big = spec(1, 0, 500, 0);
        assert!(!s.feasible_at_all(&big, 200, PerGrade::new(10)));
        assert!(s.feasible_at_all(&big, 500, PerGrade::new(0)));
        let phone_heavy = spec(2, 0, 10, 50);
        assert!(!s.feasible_at_all(&phone_heavy, 200, PerGrade::from_parts(10, 10)));
    }
}
