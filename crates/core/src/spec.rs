//! Task design specifications (§III-A).
//!
//! A task is the core operational unit of SimDC: a unique id, a single
//! operator flow executed uniformly by every simulated device, per-grade
//! device populations with explicit resource requests, a scheduling
//! priority, an optional DeviceFlow strategy and a cloud aggregation
//! trigger.

use serde::{Deserialize, Serialize};
use simdc_deviceflow::DispatchStrategy;
use simdc_ml::TrainConfig;
use simdc_types::{DeviceGrade, Result, SimDuration, SimdcError, TaskId};

use crate::cloud::AggregationTrigger;

/// One step of a task's operator flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Operator {
    /// Load the device's local shard (charged to the download cost model).
    LoadData,
    /// Run local SGD with the task's training configuration.
    LocalTrain,
    /// Evaluate the local model on the local shard (diagnostics only).
    EvaluateLocal,
    /// Upload the update to storage and notify the cloud.
    UploadUpdate,
}

/// The ordered operator sequence every simulated device executes each
/// round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorFlow {
    ops: Vec<Operator>,
}

impl OperatorFlow {
    /// The standard federated-learning flow: load → train → upload.
    #[must_use]
    pub fn standard_fl() -> Self {
        OperatorFlow {
            ops: vec![
                Operator::LoadData,
                Operator::LocalTrain,
                Operator::UploadUpdate,
            ],
        }
    }

    /// Builds a flow from explicit operators.
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` when the flow is empty, trains without
    /// uploading, or uploads before training.
    pub fn new(ops: Vec<Operator>) -> Result<Self> {
        use SimdcError::InvalidConfig;
        if ops.is_empty() {
            return Err(InvalidConfig("operator flow must not be empty".into()));
        }
        let train_pos = ops.iter().position(|o| matches!(o, Operator::LocalTrain));
        let upload_pos = ops.iter().position(|o| matches!(o, Operator::UploadUpdate));
        match (train_pos, upload_pos) {
            (Some(t), Some(u)) if u < t => {
                Err(InvalidConfig("UploadUpdate must follow LocalTrain".into()))
            }
            (Some(_), None) => Err(InvalidConfig(
                "a training flow must end with UploadUpdate".into(),
            )),
            (None, _) => Err(InvalidConfig(
                "operator flow must contain LocalTrain".into(),
            )),
            _ => Ok(OperatorFlow { ops }),
        }
    }

    /// The operators in order.
    #[must_use]
    pub fn operators(&self) -> &[Operator] {
        &self.ops
    }

    /// Whether the flow evaluates locally (adds a small compute overhead).
    #[must_use]
    pub fn evaluates_locally(&self) -> bool {
        self.ops
            .iter()
            .any(|o| matches!(o, Operator::EvaluateLocal))
    }
}

impl Default for OperatorFlow {
    fn default() -> Self {
        OperatorFlow::standard_fl()
    }
}

/// Per-grade device population and resource request (the paper's `N`, `q`,
/// `f`, `k`, `m`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GradeRequirement {
    /// The grade.
    pub grade: DeviceGrade,
    /// Devices to simulate (`N`).
    pub total_devices: u64,
    /// Benchmarking phones reserved exclusively for performance
    /// measurement (`q`); requested *on top of* [`GradeRequirement::phones`].
    pub benchmark_phones: u64,
    /// Unit resource bundles requested in Logical Simulation (`f`).
    pub logical_unit_bundles: u64,
    /// Unit bundles per simulated device (`k`).
    pub units_per_device: u64,
    /// Computation phones requested in Device Simulation (`m`).
    pub phones: u64,
}

impl GradeRequirement {
    /// A sensible default request for `n` devices of `grade`: bundles for
    /// ten parallel actors, the paper's `k` per grade (8 for High, 1 for
    /// Low — 4 cores/12 GB vs 1 core/6 GB rounded to unit bundles), and a
    /// small phone allotment.
    #[must_use]
    pub fn sized(grade: DeviceGrade, n: u64) -> Self {
        let k = match grade {
            DeviceGrade::High => 8,
            DeviceGrade::Low => 2,
        };
        GradeRequirement {
            grade,
            total_devices: n,
            benchmark_phones: 0,
            logical_unit_bundles: k * 10,
            units_per_device: k,
            phones: 4,
        }
    }

    /// Validates the requirement.
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` for zero `k` or a benchmark count exceeding
    /// either the device population or the phone allotment.
    pub fn validate(&self) -> Result<()> {
        use SimdcError::InvalidConfig;
        if self.units_per_device == 0 {
            return Err(InvalidConfig("units_per_device (k) must be > 0".into()));
        }
        if self.benchmark_phones > self.total_devices {
            return Err(InvalidConfig(format!(
                "benchmark phones ({}) exceed devices ({})",
                self.benchmark_phones, self.total_devices
            )));
        }
        Ok(())
    }
}

/// How the task's devices are split across hybrid resources.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AllocationPolicy {
    /// Use the hybrid allocation optimizer (§IV-B).
    Optimized,
    /// Fixed split: this fraction of splittable devices goes to Logical
    /// Simulation (the paper's Type 1–5 ratios: 1.0, 0.75, 0.5, 0.25, 0).
    FixedLogicalFraction(f64),
}

impl AllocationPolicy {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` for fractions outside `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if let AllocationPolicy::FixedLogicalFraction(f) = self {
            if !(0.0..=1.0).contains(f) {
                return Err(SimdcError::InvalidConfig(format!(
                    "logical fraction must be in [0, 1], got {f}"
                )));
            }
        }
        Ok(())
    }
}

/// A complete task specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Unique task id.
    pub id: TaskId,
    /// Scheduling priority (higher runs first; the "expected benefit" the
    /// greedy scheduler maximizes).
    pub priority: u32,
    /// Rounds of the operator flow (multi-round device-cloud
    /// collaboration).
    pub rounds: u32,
    /// Per-grade populations and resource requests.
    pub grades: Vec<GradeRequirement>,
    /// The operator flow.
    pub flow: OperatorFlow,
    /// DeviceFlow strategy (None = bypass DeviceFlow, deliver directly).
    pub strategy: Option<DispatchStrategy>,
    /// Cloud aggregation trigger.
    pub trigger: AggregationTrigger,
    /// Per-round timeout if the trigger never fires.
    pub round_timeout: SimDuration,
    /// Local training hyper-parameters.
    pub train: TrainConfig,
    /// Allocation policy.
    pub allocation: AllocationPolicy,
    /// Task-level RNG seed.
    pub seed: u64,
}

impl TaskSpec {
    /// Starts a builder for task `id`.
    #[must_use]
    pub fn builder(id: TaskId) -> TaskSpecBuilder {
        TaskSpecBuilder::new(id)
    }

    /// Total devices across grades.
    #[must_use]
    pub fn total_devices(&self) -> u64 {
        self.grades.iter().map(|g| g.total_devices).sum()
    }

    /// The requirement of a grade, if present.
    #[must_use]
    pub fn grade(&self, grade: DeviceGrade) -> Option<&GradeRequirement> {
        self.grades.iter().find(|g| g.grade == grade)
    }

    /// Validates the full specification.
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` describing the first violated constraint.
    pub fn validate(&self) -> Result<()> {
        use SimdcError::InvalidConfig;
        if self.rounds == 0 {
            return Err(InvalidConfig("rounds must be > 0".into()));
        }
        if self.grades.is_empty() {
            return Err(InvalidConfig("at least one grade requirement".into()));
        }
        for (i, g) in self.grades.iter().enumerate() {
            if self.grades[..i].iter().any(|h| h.grade == g.grade) {
                return Err(InvalidConfig(format!(
                    "duplicate grade requirement for {}",
                    g.grade
                )));
            }
            g.validate()?;
        }
        if self.round_timeout.is_zero() {
            return Err(InvalidConfig("round_timeout must be positive".into()));
        }
        if let Some(s) = &self.strategy {
            s.validate()
                .map_err(|e| InvalidConfig(format!("strategy: {e}")))?;
        }
        self.trigger.validate()?;
        self.train.validate()?;
        self.allocation.validate()?;
        Ok(())
    }
}

/// Builder for [`TaskSpec`] (`C-BUILDER`).
#[derive(Debug, Clone)]
pub struct TaskSpecBuilder {
    spec: TaskSpec,
}

impl TaskSpecBuilder {
    fn new(id: TaskId) -> Self {
        TaskSpecBuilder {
            spec: TaskSpec {
                id,
                priority: 0,
                rounds: 1,
                grades: Vec::new(),
                flow: OperatorFlow::standard_fl(),
                strategy: None,
                trigger: AggregationTrigger::DeviceThreshold { min_devices: 1 },
                round_timeout: SimDuration::from_mins(30),
                train: TrainConfig::default(),
                allocation: AllocationPolicy::Optimized,
                seed: 0,
            },
        }
    }

    /// Sets the scheduling priority.
    pub fn priority(&mut self, priority: u32) -> &mut Self {
        self.spec.priority = priority;
        self
    }

    /// Sets the number of rounds.
    pub fn rounds(&mut self, rounds: u32) -> &mut Self {
        self.spec.rounds = rounds;
        self
    }

    /// Adds a grade requirement.
    pub fn grade(&mut self, requirement: GradeRequirement) -> &mut Self {
        self.spec.grades.push(requirement);
        self
    }

    /// Sets the operator flow.
    pub fn flow(&mut self, flow: OperatorFlow) -> &mut Self {
        self.spec.flow = flow;
        self
    }

    /// Routes messages through DeviceFlow with this strategy.
    pub fn strategy(&mut self, strategy: DispatchStrategy) -> &mut Self {
        self.spec.strategy = Some(strategy);
        self
    }

    /// Sets the aggregation trigger.
    pub fn trigger(&mut self, trigger: AggregationTrigger) -> &mut Self {
        self.spec.trigger = trigger;
        self
    }

    /// Sets the per-round timeout.
    pub fn round_timeout(&mut self, timeout: SimDuration) -> &mut Self {
        self.spec.round_timeout = timeout;
        self
    }

    /// Sets the training hyper-parameters.
    pub fn train(&mut self, train: TrainConfig) -> &mut Self {
        self.spec.train = train;
        self
    }

    /// Sets the allocation policy.
    pub fn allocation(&mut self, policy: AllocationPolicy) -> &mut Self {
        self.spec.allocation = policy;
        self
    }

    /// Sets the task seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.spec.seed = seed;
        self
    }

    /// Validates and builds the spec.
    ///
    /// # Errors
    ///
    /// Propagates [`TaskSpec::validate`].
    pub fn build(&self) -> Result<TaskSpec> {
        self.spec.validate()?;
        Ok(self.spec.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> TaskSpec {
        TaskSpec::builder(TaskId(1))
            .grade(GradeRequirement::sized(DeviceGrade::High, 10))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_valid_default() {
        let spec = minimal();
        assert_eq!(spec.rounds, 1);
        assert_eq!(spec.total_devices(), 10);
        assert!(spec.grade(DeviceGrade::High).is_some());
        assert!(spec.grade(DeviceGrade::Low).is_none());
    }

    #[test]
    fn flow_validation() {
        assert!(OperatorFlow::new(vec![]).is_err());
        assert!(OperatorFlow::new(vec![Operator::LoadData]).is_err());
        assert!(OperatorFlow::new(vec![Operator::LocalTrain]).is_err());
        assert!(OperatorFlow::new(vec![Operator::UploadUpdate, Operator::LocalTrain]).is_err());
        let flow = OperatorFlow::new(vec![
            Operator::LoadData,
            Operator::LocalTrain,
            Operator::EvaluateLocal,
            Operator::UploadUpdate,
        ])
        .unwrap();
        assert!(flow.evaluates_locally());
        assert_eq!(flow.operators().len(), 4);
    }

    #[test]
    fn spec_rejects_bad_rounds_and_grades() {
        let mut b = TaskSpec::builder(TaskId(1));
        b.grade(GradeRequirement::sized(DeviceGrade::High, 10));
        assert!(b.rounds(0).build().is_err());
        b.rounds(1);
        // Duplicate grade.
        b.grade(GradeRequirement::sized(DeviceGrade::High, 5));
        assert!(b.build().is_err());
    }

    #[test]
    fn grade_requirement_validation() {
        let mut g = GradeRequirement::sized(DeviceGrade::High, 10);
        g.units_per_device = 0;
        assert!(g.validate().is_err());
        let mut g = GradeRequirement::sized(DeviceGrade::High, 10);
        g.benchmark_phones = 20;
        assert!(g.validate().is_err());
        // Benchmark phones come on top of compute phones, so exceeding the
        // compute allotment is fine.
        let mut g = GradeRequirement::sized(DeviceGrade::High, 10);
        g.benchmark_phones = 5;
        g.phones = 3;
        assert!(g.validate().is_ok());
    }

    #[test]
    fn allocation_policy_validation() {
        assert!(AllocationPolicy::Optimized.validate().is_ok());
        assert!(AllocationPolicy::FixedLogicalFraction(0.75)
            .validate()
            .is_ok());
        assert!(AllocationPolicy::FixedLogicalFraction(1.5)
            .validate()
            .is_err());
        assert!(AllocationPolicy::FixedLogicalFraction(-0.1)
            .validate()
            .is_err());
    }

    #[test]
    fn spec_propagates_substrategy_validation() {
        let mut b = TaskSpec::builder(TaskId(1));
        b.grade(GradeRequirement::sized(DeviceGrade::High, 10))
            .strategy(DispatchStrategy::RealTimeAccumulated {
                thresholds: vec![],
                failure_prob: 0.0,
            });
        assert!(b.build().is_err());
        let mut b = TaskSpec::builder(TaskId(1));
        b.grade(GradeRequirement::sized(DeviceGrade::High, 10))
            .trigger(AggregationTrigger::SampleThreshold { min_samples: 0 });
        assert!(b.build().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let spec = minimal();
        let json = serde_json::to_string(&spec).unwrap();
        let back: TaskSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
