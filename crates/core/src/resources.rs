//! The Resource Manager: querying, freezing and releasing hybrid
//! heterogeneous resources (§III-B).
//!
//! The manager tracks *quantities* — unit bundles in the logical cluster
//! and phones per grade — so the task scheduler can decide admission
//! without touching the substrates; the substrates enforce the physical
//! placement when the task actually runs.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use simdc_types::{DeviceGrade, PerGrade, Result, SimdcError, TaskId};

/// Quantities a task freezes for its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResourceClaim {
    /// Unit bundles in Logical Simulation.
    pub unit_bundles: u64,
    /// Phones per grade in Device Simulation.
    pub phones: PerGrade<u64>,
}

impl ResourceClaim {
    /// Whether nothing is claimed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.unit_bundles == 0 && self.phones.iter().all(|(_, &n)| n == 0)
    }
}

/// Tracks free/total capacity and per-task leases.
#[derive(Debug, Clone)]
pub struct ResourceManager {
    total_bundles: u64,
    free_bundles: u64,
    total_phones: PerGrade<u64>,
    free_phones: PerGrade<u64>,
    leases: BTreeMap<TaskId, ResourceClaim>,
}

impl ResourceManager {
    /// Creates a manager over the given capacity.
    #[must_use]
    pub fn new(total_bundles: u64, total_phones: PerGrade<u64>) -> Self {
        ResourceManager {
            total_bundles,
            free_bundles: total_bundles,
            total_phones,
            free_phones: total_phones,
            leases: BTreeMap::new(),
        }
    }

    /// Free unit bundles.
    #[must_use]
    pub fn free_bundles(&self) -> u64 {
        self.free_bundles
    }

    /// Total unit bundles (free + frozen).
    #[must_use]
    pub fn total_bundles(&self) -> u64 {
        self.total_bundles
    }

    /// Free phones of a grade.
    #[must_use]
    pub fn free_phones(&self, grade: DeviceGrade) -> u64 {
        *self.free_phones.get(grade)
    }

    /// Total phones per grade (free + frozen).
    #[must_use]
    pub fn total_phones(&self) -> PerGrade<u64> {
        self.total_phones
    }

    /// Whether every resource is back in the pool: no lease outstanding
    /// and free capacity equal to total capacity. An idle platform must
    /// satisfy this — a `false` here means a freeze was never paired with
    /// its release (or vice versa).
    #[must_use]
    pub fn fully_free(&self) -> bool {
        self.leases.is_empty()
            && self.free_bundles == self.total_bundles
            && DeviceGrade::ALL
                .iter()
                .all(|&g| self.free_phones.get(g) == self.total_phones.get(g))
    }

    /// Resyncs the per-grade phone totals to `totals` (the fleet as the
    /// phone manager currently knows it) and recomputes free capacity as
    /// `total − frozen` (saturating at zero), where frozen is the sum of
    /// the outstanding leases. Deriving free from the leases — rather
    /// than applying a delta to the previous free count — keeps a
    /// shrink-below-frozen followed by a later grow honest: the regrown
    /// capacity only becomes free once the leases holding it release.
    pub fn set_total_phones(&mut self, totals: PerGrade<u64>) {
        let mut frozen = PerGrade::new(0u64);
        for claim in self.leases.values() {
            for grade in DeviceGrade::ALL {
                *frozen.get_mut(grade) += *claim.phones.get(grade);
            }
        }
        for grade in DeviceGrade::ALL {
            let new_total = *totals.get(grade);
            *self.free_phones.get_mut(grade) = new_total.saturating_sub(*frozen.get(grade));
            *self.total_phones.get_mut(grade) = new_total;
        }
    }

    /// Resyncs the unit-bundle total to `total` (the logical cluster's
    /// *ready* capacity as of the current scheduling pass) and recomputes
    /// free capacity as `total − frozen` (saturating at zero). Like
    /// [`ResourceManager::set_total_phones`], free is derived from the
    /// outstanding leases rather than by applying a delta, so an elastic
    /// scale-in below the frozen amount followed by a later scale-out
    /// stays honest: regrown capacity only frees once its leases release.
    pub fn set_total_bundles(&mut self, total: u64) {
        let frozen: u64 = self.leases.values().map(|c| c.unit_bundles).sum();
        self.total_bundles = total;
        self.free_bundles = total.saturating_sub(frozen);
    }

    /// Whether `claim` currently fits.
    #[must_use]
    pub fn fits(&self, claim: &ResourceClaim) -> bool {
        self.free_bundles >= claim.unit_bundles
            && DeviceGrade::ALL
                .iter()
                .all(|&g| *self.free_phones.get(g) >= *claim.phones.get(g))
    }

    /// Freezes `claim` for `task`.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::ResourceExhausted`] when the claim does not
    /// fit, and `InvalidConfig` when the task already holds a lease.
    pub fn freeze(&mut self, task: TaskId, claim: ResourceClaim) -> Result<()> {
        if self.leases.contains_key(&task) {
            return Err(SimdcError::InvalidConfig(format!(
                "task {task} already holds a resource lease"
            )));
        }
        if !self.fits(&claim) {
            return Err(SimdcError::ResourceExhausted {
                requested: format!(
                    "{} bundles, {}/{} phones",
                    claim.unit_bundles, claim.phones.high, claim.phones.low
                ),
                available: format!(
                    "{} bundles, {}/{} phones",
                    self.free_bundles, self.free_phones.high, self.free_phones.low
                ),
            });
        }
        self.free_bundles -= claim.unit_bundles;
        for grade in DeviceGrade::ALL {
            *self.free_phones.get_mut(grade) -= *claim.phones.get(grade);
        }
        self.leases.insert(task, claim);
        Ok(())
    }

    /// Releases a task's lease. Returns the claim, or `None` if the task
    /// held nothing.
    pub fn release(&mut self, task: TaskId) -> Option<ResourceClaim> {
        let claim = self.leases.remove(&task)?;
        self.free_bundles = (self.free_bundles + claim.unit_bundles).min(self.total_bundles);
        for grade in DeviceGrade::ALL {
            let free = self.free_phones.get_mut(grade);
            *free = (*free + *claim.phones.get(grade)).min(*self.total_phones.get(grade));
        }
        Some(claim)
    }

    /// Number of active leases.
    #[must_use]
    pub fn active_leases(&self) -> usize {
        self.leases.len()
    }

    /// Fraction of unit bundles currently frozen, in `[0, 1]`.
    #[must_use]
    pub fn bundle_utilization(&self) -> f64 {
        if self.total_bundles == 0 {
            return 0.0;
        }
        (self.total_bundles - self.free_bundles) as f64 / self.total_bundles as f64
    }

    /// Grows (or shrinks, saturating at what is free) the logical capacity
    /// — the dynamic scaling §III-B mentions.
    pub fn scale_bundles(&mut self, delta: i64) {
        if delta >= 0 {
            self.total_bundles += delta as u64;
            self.free_bundles += delta as u64;
        } else {
            let shrink = (-delta as u64).min(self.free_bundles);
            self.total_bundles -= shrink;
            self.free_bundles -= shrink;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager() -> ResourceManager {
        ResourceManager::new(200, PerGrade::from_parts(17, 13))
    }

    fn claim(bundles: u64, high: u64, low: u64) -> ResourceClaim {
        ResourceClaim {
            unit_bundles: bundles,
            phones: PerGrade::from_parts(high, low),
        }
    }

    #[test]
    fn freeze_and_release_round_trip() {
        let mut rm = manager();
        rm.freeze(TaskId(1), claim(80, 5, 0)).unwrap();
        assert_eq!(rm.free_bundles(), 120);
        assert_eq!(rm.free_phones(DeviceGrade::High), 12);
        assert_eq!(rm.active_leases(), 1);
        assert!((rm.bundle_utilization() - 0.4).abs() < 1e-12);
        let released = rm.release(TaskId(1)).unwrap();
        assert_eq!(released, claim(80, 5, 0));
        assert_eq!(rm.free_bundles(), 200);
        assert_eq!(rm.active_leases(), 0);
    }

    #[test]
    fn overcommit_rejected() {
        let mut rm = manager();
        assert!(rm.freeze(TaskId(1), claim(201, 0, 0)).is_err());
        assert!(rm.freeze(TaskId(1), claim(10, 18, 0)).is_err());
        assert!(rm.freeze(TaskId(1), claim(10, 0, 14)).is_err());
        assert_eq!(rm.free_bundles(), 200, "failed freeze must not leak");
    }

    #[test]
    fn double_freeze_rejected() {
        let mut rm = manager();
        rm.freeze(TaskId(1), claim(10, 0, 0)).unwrap();
        assert!(rm.freeze(TaskId(1), claim(10, 0, 0)).is_err());
    }

    #[test]
    fn release_unknown_task_is_none() {
        let mut rm = manager();
        assert!(rm.release(TaskId(9)).is_none());
    }

    #[test]
    fn concurrent_leases_share_capacity() {
        let mut rm = manager();
        rm.freeze(TaskId(1), claim(100, 8, 6)).unwrap();
        rm.freeze(TaskId(2), claim(100, 9, 7)).unwrap();
        assert_eq!(rm.free_bundles(), 0);
        assert!(rm.freeze(TaskId(3), claim(1, 0, 0)).is_err());
        rm.release(TaskId(1));
        assert!(rm.freeze(TaskId(3), claim(1, 0, 0)).is_ok());
    }

    #[test]
    fn fully_free_detects_leaks() {
        let mut rm = manager();
        assert!(rm.fully_free());
        rm.freeze(TaskId(1), claim(10, 1, 0)).unwrap();
        assert!(!rm.fully_free());
        rm.release(TaskId(1));
        assert!(rm.fully_free());
        assert_eq!(rm.total_bundles(), 200);
        assert_eq!(rm.total_phones(), PerGrade::from_parts(17, 13));
    }

    #[test]
    fn total_phone_resync_adjusts_free_capacity() {
        let mut rm = manager();
        rm.set_total_phones(PerGrade::from_parts(20, 13));
        assert_eq!(rm.free_phones(DeviceGrade::High), 20);
        assert!(rm.fully_free());
        // Shrinking below frozen capacity saturates free at zero but keeps
        // the new total for later releases.
        rm.freeze(TaskId(1), claim(0, 18, 0)).unwrap();
        rm.set_total_phones(PerGrade::from_parts(4, 13));
        assert_eq!(rm.free_phones(DeviceGrade::High), 0);
        // Growing back while the lease is still held must not mint free
        // capacity the lease already owns: free = total − frozen.
        rm.set_total_phones(PerGrade::from_parts(20, 13));
        assert_eq!(rm.free_phones(DeviceGrade::High), 2, "20 total − 18 frozen");
        rm.set_total_phones(PerGrade::from_parts(4, 13));
        rm.release(TaskId(1));
        assert_eq!(rm.free_phones(DeviceGrade::High), 4, "clamped to total");
        assert!(rm.fully_free());
    }

    #[test]
    fn elastic_scaling() {
        let mut rm = manager();
        rm.scale_bundles(100);
        assert_eq!(rm.free_bundles(), 300);
        rm.scale_bundles(-250);
        assert_eq!(rm.free_bundles(), 50);
        // Shrinking below frozen capacity saturates at free.
        rm.freeze(TaskId(1), claim(50, 0, 0)).unwrap();
        rm.scale_bundles(-100);
        assert_eq!(rm.free_bundles(), 0);
    }
}
