//! Baseline federated-learning simulators for the Fig 8 scalability
//! comparison.
//!
//! The paper compares SimDC's large-scale device simulation against
//! FedScale and FederatedScope. Neither framework is available here, so
//! this crate implements faithful *cost models* of their standalone
//! simulation modes plus the same FedAvg semantics, so both timing and
//! learning behaviour can be compared:
//!
//! * [`FedScaleSim`] — FedScale keeps data and models in memory and moves
//!   tensors between buffers when switching clients (§VI-B.4: "does not use
//!   device-cloud communication during simulations"). Per-client
//!   simulation cost is tiny and there is no per-round distribution
//!   overhead, which is why it "appears faster" while deviating most from
//!   real deployments.
//! * [`FederatedScopeSim`] — FederatedScope standalone mode simulates
//!   clients independently on a *single resource instance* and keeps
//!   device-cloud communication, so each simulated client pays a
//!   per-message cost; at large scales its single-round time converges to
//!   SimDC's (both scale linearly per device), matching Fig 8.
//!
//! Both expose `round_time(n)` for the timing comparison and `run_round`
//! for semantic-equivalence tests against the SimDC runner.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
use simdc_data::CtrDataset;
use simdc_ml::{FedAvg, KernelKind, LocalTrainer, LrModel, TrainConfig};
use simdc_types::{Result, SimDuration};

/// Common interface of the baseline simulators.
pub trait BaselineSimulator {
    /// Virtual wall time of one training round with `n` participating
    /// devices.
    fn round_time(&self, n: u64) -> SimDuration;

    /// Framework name as reported in figures.
    fn name(&self) -> &'static str;
}

/// Cost model of FedScale's standalone simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FedScaleSim {
    /// In-memory per-client simulation cost (data is already resident;
    /// only tensor swaps between buffers).
    pub per_client: SimDuration,
    /// Fixed per-round overhead (aggregation in memory).
    pub round_overhead: SimDuration,
}

impl Default for FedScaleSim {
    fn default() -> Self {
        FedScaleSim {
            per_client: SimDuration::from_millis(5),
            round_overhead: SimDuration::from_millis(500),
        }
    }
}

impl BaselineSimulator for FedScaleSim {
    fn round_time(&self, n: u64) -> SimDuration {
        self.round_overhead.saturating_add(self.per_client * n)
    }

    fn name(&self) -> &'static str {
        "FedScale"
    }
}

/// Cost model of FederatedScope's standalone simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FederatedScopeSim {
    /// Per-client simulation cost on the single resource instance,
    /// including the device-cloud message exchange it retains.
    pub per_client: SimDuration,
    /// Fixed per-round overhead (server setup, aggregation).
    pub round_overhead: SimDuration,
}

impl Default for FederatedScopeSim {
    fn default() -> Self {
        FederatedScopeSim {
            per_client: SimDuration::from_millis(80),
            round_overhead: SimDuration::from_secs(2),
        }
    }
}

impl BaselineSimulator for FederatedScopeSim {
    fn round_time(&self, n: u64) -> SimDuration {
        self.round_overhead.saturating_add(self.per_client * n)
    }

    fn name(&self) -> &'static str {
        "FederatedScope"
    }
}

/// Runs one FedAvg round over the first `n` device shards exactly the way
/// the SimDC runner does (server kernel, sample-weighted averaging), so
/// baseline and platform results are comparable algorithm-for-algorithm.
///
/// # Errors
///
/// Propagates aggregation errors (empty participant set).
pub fn run_round(
    global: &LrModel,
    dataset: &CtrDataset,
    n: usize,
    train: TrainConfig,
) -> Result<LrModel> {
    let trainer = LocalTrainer::new(train);
    let updates: Vec<_> = dataset
        .devices
        .iter()
        .take(n)
        .map(|d| trainer.train(global, &d.data, KernelKind::Server))
        .collect();
    FedAvg::aggregate(&updates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdc_data::GeneratorConfig;

    #[test]
    fn fedscale_is_fastest_everywhere() {
        let fs = FedScaleSim::default();
        let fscope = FederatedScopeSim::default();
        for n in [100u64, 1_000, 10_000, 100_000] {
            assert!(fs.round_time(n) < fscope.round_time(n), "n = {n}");
        }
    }

    #[test]
    fn round_times_scale_linearly() {
        let fscope = FederatedScopeSim::default();
        let t1 = fscope.round_time(1_000).as_secs_f64();
        let t10 = fscope.round_time(10_000).as_secs_f64();
        assert!((t10 / t1 - 10.0).abs() < 0.5, "ratio {}", t10 / t1);
    }

    #[test]
    fn names_match_the_figure_legend() {
        assert_eq!(FedScaleSim::default().name(), "FedScale");
        assert_eq!(FederatedScopeSim::default().name(), "FederatedScope");
    }

    #[test]
    fn baseline_round_matches_fedavg_semantics() {
        let data = CtrDataset::generate(&GeneratorConfig {
            n_devices: 12,
            n_test_devices: 2,
            feature_dim: 1 << 10,
            seed: 3,
            ..GeneratorConfig::default()
        });
        let global = LrModel::zeros(data.feature_dim);
        let a = run_round(&global, &data, 12, TrainConfig::default()).unwrap();
        let b = run_round(&global, &data, 12, TrainConfig::default()).unwrap();
        assert_eq!(a, b, "deterministic");
        assert_ne!(a, global, "training moved the model");
    }

    #[test]
    fn empty_participant_set_errors() {
        let data = CtrDataset::generate(&GeneratorConfig {
            n_devices: 2,
            n_test_devices: 1,
            feature_dim: 1 << 10,
            ..GeneratorConfig::default()
        });
        let global = LrModel::zeros(data.feature_dim);
        assert!(run_round(&global, &data, 0, TrainConfig::default()).is_err());
    }
}
