//! Workload scenario engine for SimDC.
//!
//! The paper's evaluation replays fixed experiments; a simulation
//! *platform* needs diverse, realistic traffic. This crate provides the
//! scenario layer:
//!
//! * [`arrival`] — composable arrival processes (Poisson, diurnal,
//!   bursty/flash-crowd, superposition) sampled by Lewis–Shedler thinning;
//! * [`template`] — bounded random [`simdc_core::TaskSpec`] generation;
//! * [`fleet`] — fleet-dynamics injectors: phone churn, stragglers and
//!   benchmark-phone outages layered onto the phone cluster;
//! * [`scenario`] — named scenarios executed through the deterministic
//!   [`simdc_simrt::Engine`] event loop, producing [`ScenarioSummary`]
//!   JSON;
//! * [`source`] — the pre-sampled [`simdc_core::SubmissionSource`]
//!   adapter pacing an arrival process + template straight into
//!   [`simdc_core::Platform::run_from_source`];
//! * [`spec`] — the declarative scenario DSL: serde-backed
//!   [`ScenarioSpec`]s (the committed JSON fixtures under
//!   `fixtures/scenarios/`), the compiler to runnable scenarios, and the
//!   greedy shrinker the fuzz harness minimizes failing specs with.
//!
//! Every stochastic choice derives from one scenario seed through named
//! [`simdc_simrt::RngStream`]s: the same seed replays the exact same
//! workload byte for byte, and a different seed yields different traffic.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use simdc_core::PlatformConfig;
//! use simdc_data::{CtrDataset, GeneratorConfig};
//! use simdc_types::SimDuration;
//! use simdc_workload::{ArrivalProcess, FleetDynamics, Scenario, TaskTemplate};
//!
//! let scenario = Scenario {
//!     name: "quickstart".into(),
//!     description: "steady light traffic".into(),
//!     horizon: SimDuration::from_mins(5),
//!     dispatch_interval: SimDuration::from_mins(2),
//!     arrivals: ArrivalProcess::Poisson { rate_per_min: 0.4 },
//!     template: TaskTemplate::default(),
//!     fleet: FleetDynamics::calm(),
//!     cluster: None,
//! };
//! let data = Arc::new(CtrDataset::generate(&GeneratorConfig {
//!     n_devices: 30,
//!     n_test_devices: 6,
//!     feature_dim: 1 << 12,
//!     ..GeneratorConfig::default()
//! }));
//! let summary = scenario.run(PlatformConfig::default(), &data, 7);
//! assert_eq!(summary.scenario, "quickstart");
//! assert_eq!(summary.completed + summary.failed, summary.submitted);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrival;
pub mod fleet;
pub mod scenario;
pub mod source;
pub mod spec;
pub mod template;

pub use arrival::ArrivalProcess;
pub use fleet::{FleetDynamics, FleetEvent};
pub use scenario::{
    budget_capped, cloud_surge, library, mega_fleet, CloudSample, CloudSummary, Scenario,
    ScenarioSummary,
};
pub use source::SampledSource;
pub use spec::{scale_arrival_rates, shrink, CompiledScenario, ScenarioSpec};
pub use template::{GradeScheme, TaskTemplate};
