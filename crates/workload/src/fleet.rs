//! Fleet-dynamics injectors: phone churn, stragglers and benchmark-phone
//! failures layered onto [`PhoneMgr`].
//!
//! The injector pre-samples crash instants from the scenario seed; the
//! scenario engine turns each into a crash event on the virtual timeline
//! and schedules the matching reboot through the engine context — fleet
//! perturbations ride the same event loop as task arrivals.

use serde::{Deserialize, Serialize};
use simdc_phone::{PhoneMgr, Provenance};
use simdc_simrt::RngStream;
use simdc_types::{PhoneId, Result, SimDuration, SimdcError};

/// A fleet perturbation on the virtual timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FleetEvent {
    /// The phone drops off ADB (crash / battery pull / network loss).
    Crash(PhoneId),
    /// The phone reboots and becomes selectable again.
    Reboot(PhoneId),
}

/// Declarative fleet-dynamics configuration of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetDynamics {
    /// Mean time between phone crashes (exponential), `None` = no churn.
    pub mean_time_between_crashes: Option<SimDuration>,
    /// How long a crashed phone stays down before rebooting.
    pub reboot_after: SimDuration,
    /// Bias crashes toward locally racked phones. [`PhoneMgr::select`]
    /// prefers local devices, so local churn is what knocks out benchmark
    /// phones mid-task.
    pub target_local: bool,
    /// Fraction of the fleet slowed down at scenario start.
    pub straggler_frac: f64,
    /// Training/startup duration multiplier applied to stragglers (≥ 1).
    pub straggler_slowdown: f64,
}

impl FleetDynamics {
    /// A calm fleet: no churn, no stragglers.
    #[must_use]
    pub fn calm() -> Self {
        FleetDynamics {
            mean_time_between_crashes: None,
            reboot_after: SimDuration::from_mins(3),
            target_local: false,
            straggler_frac: 0.0,
            straggler_slowdown: 1.0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` for a zero crash interval or reboot delay, a
    /// straggler fraction outside `[0, 1]`, or a slowdown below 1.
    pub fn validate(&self) -> Result<()> {
        use SimdcError::InvalidConfig;
        if let Some(mtbc) = self.mean_time_between_crashes {
            if mtbc.is_zero() {
                return Err(InvalidConfig(
                    "mean_time_between_crashes must be positive".into(),
                ));
            }
        }
        if self.reboot_after.is_zero() {
            return Err(InvalidConfig("reboot_after must be positive".into()));
        }
        if !(0.0..=1.0).contains(&self.straggler_frac) {
            return Err(InvalidConfig(format!(
                "straggler_frac must be in [0, 1], got {}",
                self.straggler_frac
            )));
        }
        if self.straggler_slowdown < 1.0 || !self.straggler_slowdown.is_finite() {
            return Err(InvalidConfig(format!(
                "straggler_slowdown must be >= 1, got {}",
                self.straggler_slowdown
            )));
        }
        Ok(())
    }

    /// Pre-samples the crash schedule over `[0, horizon)`: exponential
    /// inter-crash gaps, victims drawn uniformly from the (optionally
    /// local-only) fleet. Reboots are *not* scheduled here — the scenario
    /// world schedules each reboot `reboot_after` after its crash fires,
    /// so reboots ride the live event loop.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`FleetDynamics::validate`].
    #[must_use]
    pub fn sample_crashes(
        &self,
        mgr: &PhoneMgr,
        horizon: SimDuration,
        rng: &mut RngStream,
    ) -> Vec<(SimDuration, FleetEvent)> {
        self.validate().expect("fleet dynamics must be valid");
        let Some(mtbc) = self.mean_time_between_crashes else {
            return Vec::new();
        };
        let victims: Vec<PhoneId> = mgr
            .phones()
            .iter()
            .filter(|p| !self.target_local || p.provenance() == Provenance::Local)
            .map(|p| p.id())
            .collect();
        if victims.is_empty() {
            return Vec::new();
        }
        let mut schedule = Vec::new();
        let mut t = 0.0f64;
        let horizon_secs = horizon.as_secs_f64();
        let mean_secs = mtbc.as_secs_f64();
        loop {
            t += rng.exp(mean_secs);
            if t >= horizon_secs {
                return schedule;
            }
            let victim = victims[rng.index(victims.len())];
            schedule.push((SimDuration::from_secs_f64(t), FleetEvent::Crash(victim)));
        }
    }

    /// Slows down a seed-chosen fraction of the fleet by multiplying each
    /// straggler's training and framework-startup durations. Returns the
    /// number of phones slowed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`FleetDynamics::validate`].
    pub fn apply_stragglers(&self, mgr: &mut PhoneMgr, rng: &mut RngStream) -> u64 {
        self.validate().expect("fleet dynamics must be valid");
        if self.straggler_frac <= 0.0 || self.straggler_slowdown <= 1.0 {
            return 0;
        }
        let ids: Vec<PhoneId> = mgr.phones().iter().map(|p| p.id()).collect();
        let mut slowed = 0u64;
        for id in ids {
            if !rng.chance(self.straggler_frac) {
                continue;
            }
            let mut profile = mgr
                .phone(id)
                .expect("id from the same manager")
                .profile()
                .clone();
            profile.train_duration = SimDuration::from_secs_f64(
                profile.train_duration.as_secs_f64() * self.straggler_slowdown,
            );
            profile.framework_startup = SimDuration::from_secs_f64(
                profile.framework_startup.as_secs_f64() * self.straggler_slowdown,
            );
            // Through the manager, not raw device access, so the grade
            // index's effective-profile sums track the slowdown exactly.
            mgr.set_phone_profile(id, profile)
                .expect("slowed profile keeps its grade and stays valid");
            slowed += 1;
        }
        slowed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> PhoneMgr {
        PhoneMgr::paper_default(1)
    }

    #[test]
    fn calm_fleet_schedules_nothing() {
        let dynamics = FleetDynamics::calm();
        let mut rng = RngStream::named(1, "churn");
        assert!(dynamics
            .sample_crashes(&mgr(), SimDuration::from_mins(60), &mut rng)
            .is_empty());
        assert_eq!(dynamics.apply_stragglers(&mut mgr(), &mut rng), 0);
    }

    #[test]
    fn crash_schedule_matches_mean_rate() {
        let dynamics = FleetDynamics {
            mean_time_between_crashes: Some(SimDuration::from_mins(2)),
            ..FleetDynamics::calm()
        };
        let mut rng = RngStream::named(2, "churn");
        let schedule = dynamics.sample_crashes(&mgr(), SimDuration::from_mins(2_000), &mut rng);
        // ~1000 crashes expected over 2000 minutes at one per 2 minutes.
        assert!(
            (900..1_100).contains(&schedule.len()),
            "{} crashes",
            schedule.len()
        );
        for pair in schedule.windows(2) {
            assert!(pair[0].0 < pair[1].0, "crash times must increase");
        }
    }

    #[test]
    fn local_targeting_only_hits_local_phones() {
        let fleet = mgr();
        let dynamics = FleetDynamics {
            mean_time_between_crashes: Some(SimDuration::from_mins(1)),
            target_local: true,
            ..FleetDynamics::calm()
        };
        let mut rng = RngStream::named(3, "churn");
        let schedule = dynamics.sample_crashes(&fleet, SimDuration::from_mins(500), &mut rng);
        assert!(!schedule.is_empty());
        for (_, event) in &schedule {
            let FleetEvent::Crash(id) = event else {
                panic!("sample_crashes only emits crashes");
            };
            assert_eq!(
                fleet.phone(*id).unwrap().provenance(),
                Provenance::Local,
                "victim {id} is not local"
            );
        }
    }

    #[test]
    fn stragglers_get_slower_but_stay_valid() {
        let mut fleet = mgr();
        let baseline_beta = fleet.phones()[0].profile().beta();
        let dynamics = FleetDynamics {
            straggler_frac: 1.0,
            straggler_slowdown: 2.0,
            ..FleetDynamics::calm()
        };
        let mut rng = RngStream::named(4, "stragglers");
        let slowed = dynamics.apply_stragglers(&mut fleet, &mut rng);
        assert_eq!(slowed, fleet.total() as u64);
        for phone in fleet.phones() {
            assert!(phone.profile().validate().is_ok());
            assert_eq!(phone.profile().grade, phone.grade());
        }
        assert_eq!(
            fleet.phones()[0].profile().beta().as_micros(),
            baseline_beta.as_micros() * 2
        );
    }

    #[test]
    fn partial_straggler_fraction_is_deterministic() {
        let dynamics = FleetDynamics {
            straggler_frac: 0.4,
            straggler_slowdown: 3.0,
            ..FleetDynamics::calm()
        };
        let slow = |seed: u64| {
            let mut fleet = mgr();
            let mut rng = RngStream::named(seed, "stragglers");
            dynamics.apply_stragglers(&mut fleet, &mut rng);
            fleet
                .phones()
                .iter()
                .map(|p| p.profile().beta().as_micros())
                .collect::<Vec<_>>()
        };
        assert_eq!(slow(7), slow(7));
        assert_ne!(slow(7), slow(8));
        let slowed = |betas: &[u64]| {
            betas
                .iter()
                .zip(
                    mgr()
                        .phones()
                        .iter()
                        .map(|p| p.profile().beta().as_micros()),
                )
                .filter(|(&b, base)| b > *base)
                .count()
        };
        let n = slowed(&slow(7));
        assert!(n > 0 && n < 30, "expected a strict subset slowed, got {n}");
    }

    #[test]
    fn validation_rejects_bad_dynamics() {
        let zero_mtbc = FleetDynamics {
            mean_time_between_crashes: Some(SimDuration::ZERO),
            ..FleetDynamics::calm()
        };
        assert!(zero_mtbc.validate().is_err());
        let zero_reboot = FleetDynamics {
            reboot_after: SimDuration::ZERO,
            ..FleetDynamics::calm()
        };
        assert!(zero_reboot.validate().is_err());
        let bad_frac = FleetDynamics {
            straggler_frac: 1.2,
            ..FleetDynamics::calm()
        };
        assert!(bad_frac.validate().is_err());
        let speedup = FleetDynamics {
            straggler_slowdown: 0.5,
            straggler_frac: 0.5,
            ..FleetDynamics::calm()
        };
        assert!(speedup.validate().is_err());
    }
}
