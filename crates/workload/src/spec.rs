//! The declarative scenario DSL: serde-backed [`ScenarioSpec`]s, the
//! compiler to runnable [`CompiledScenario`]s, and the greedy [`shrink`]er
//! the fuzz harness minimizes failing specs with.
//!
//! All eight library scenarios ([`crate::library`]) are committed as JSON
//! fixtures under `fixtures/scenarios/` at the repository root; the
//! fixture tests assert each one compiles to a summary byte-identical to
//! its legacy Rust constructor. The spec grammar is exactly the struct
//! tree below — arrival mixes compose as [`ArrivalProcess`] trees,
//! fleet composition rides [`FleetSpec`], injector schedules ride
//! [`FleetDynamics`], and the elastic tier rides an optional
//! [`ClusterConfig`] override.
//!
//! # Compiler guarantees
//!
//! * **Byte-identity** — `compile` introduces no stochastic choice of its
//!   own: the compiled scenario replays through the same engine as a
//!   hand-written [`Scenario`], so spec + seed ⇒ byte-identical
//!   [`ScenarioSummary`] JSON, for every worker-thread count.
//! * **Typed rejection** — [`ScenarioSpec::from_json_str`] never panics
//!   on malformed input: parse errors and unknown enum variants surface
//!   as [`SimdcError::Serialization`], unknown keys and semantic
//!   violations (malformed arrival trees, zero-phone fleets, negative
//!   budgets) as [`SimdcError::InvalidConfig`] with pinned messages.
//! * **Unknown keys are errors** — a typo'd field would otherwise be
//!   silently ignored and the run would quietly diverge from the author's
//!   intent; the loader walks the raw document against the canonical
//!   re-serialization and rejects any key it does not know.
//!
//! # Examples
//!
//! ```
//! use simdc_phone::FleetSpec;
//! use simdc_workload::{library, ScenarioSpec};
//!
//! let scenario = &library()[0];
//! let spec = ScenarioSpec::from_scenario(scenario, FleetSpec::paper_default(), 7, 1);
//! // JSON round trip is lossless and loads back through the validator.
//! let reloaded = ScenarioSpec::from_json_str(&spec.to_json_string_pretty()).unwrap();
//! assert_eq!(reloaded, spec);
//! // The compiler reproduces the hand-written scenario exactly.
//! assert_eq!(reloaded.compile().unwrap().scenario, *scenario);
//! ```

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use simdc_cluster::ClusterConfig;
use simdc_core::{Platform, PlatformConfig};
use simdc_data::CtrDataset;
use simdc_phone::FleetSpec;
use simdc_types::{Result, SimDuration, SimdcError};

use crate::arrival::ArrivalProcess;
use crate::fleet::FleetDynamics;
use crate::scenario::{Scenario, ScenarioSummary};
use crate::template::TaskTemplate;

/// Worker-thread ceiling a spec may ask for — a fuzzer-friendly bound on
/// OS threads, far above anything the benches use.
pub const MAX_THREADS: usize = 64;

/// A complete, self-contained scenario description: everything a run
/// needs beyond the dataset. Field order is the JSON schema — it is
/// pinned by the committed fixtures, so reordering fields is a visible,
/// reviewed change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (doubles as the RNG stream label).
    pub name: String,
    /// One-line description for reports.
    pub description: String,
    /// Arrival horizon: tasks arrive in `[0, horizon)`; the run then
    /// drains.
    pub horizon: SimDuration,
    /// Period of the pacing dispatch event.
    pub dispatch_interval: SimDuration,
    /// Task arrival mix — a composable tree of Poisson / diurnal /
    /// bursty / superposed processes.
    pub arrivals: ArrivalProcess,
    /// Task generator.
    pub template: TaskTemplate,
    /// Injector schedule: phone churn, reboot latency and stragglers.
    pub fleet_dynamics: FleetDynamics,
    /// Elastic cloud tier override (`None` keeps the platform default).
    pub cluster: Option<ClusterConfig>,
    /// Phone-fleet composition the platform is built with.
    pub fleet: FleetSpec,
    /// Root seed: platform seed and scenario seed alike (same seed ⇒
    /// byte-identical summary JSON).
    pub seed: u64,
    /// Worker threads for sharded execution. Never changes results —
    /// summaries are byte-identical for every value — only wall-clock
    /// time; it is part of the spec so sweeps can put it on an axis.
    pub threads: usize,
}

impl ScenarioSpec {
    /// Builds the spec equivalent of a hand-written [`Scenario`] plus the
    /// platform-side knobs a run needs (the legacy constructors carry
    /// only the scenario half).
    #[must_use]
    pub fn from_scenario(scenario: &Scenario, fleet: FleetSpec, seed: u64, threads: usize) -> Self {
        ScenarioSpec {
            name: scenario.name.clone(),
            description: scenario.description.clone(),
            horizon: scenario.horizon,
            dispatch_interval: scenario.dispatch_interval,
            arrivals: scenario.arrivals.clone(),
            template: scenario.template.clone(),
            fleet_dynamics: scenario.fleet,
            cluster: scenario.cluster.clone(),
            fleet,
            seed,
            threads,
        }
    }

    /// The scenario half of the spec (no validation — use
    /// [`ScenarioSpec::compile`] for the checked path).
    #[must_use]
    pub fn to_scenario(&self) -> Scenario {
        Scenario {
            name: self.name.clone(),
            description: self.description.clone(),
            horizon: self.horizon,
            dispatch_interval: self.dispatch_interval,
            arrivals: self.arrivals.clone(),
            template: self.template.clone(),
            fleet: self.fleet_dynamics,
            cluster: self.cluster.clone(),
        }
    }

    /// Validates the spec: the scenario half (name, horizon, arrival
    /// tree, template, injectors, cluster override) plus the
    /// platform-side knobs the legacy constructors never carried.
    ///
    /// # Errors
    ///
    /// Returns [`SimdcError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        self.to_scenario().validate()?;
        if self.fleet.total() == 0 {
            return Err(SimdcError::InvalidConfig(
                "fleet must contain at least one phone".into(),
            ));
        }
        if self.threads > MAX_THREADS {
            return Err(SimdcError::InvalidConfig(format!(
                "threads must be at most {MAX_THREADS}, got {}",
                self.threads
            )));
        }
        Ok(())
    }

    /// Compiles the spec into a runnable scenario + platform config pair.
    ///
    /// # Errors
    ///
    /// Propagates [`ScenarioSpec::validate`] errors.
    pub fn compile(&self) -> Result<CompiledScenario> {
        self.validate()?;
        Ok(CompiledScenario {
            scenario: self.to_scenario(),
            config: PlatformConfig {
                fleet: self.fleet,
                seed: self.seed,
                threads: self.threads,
                ..PlatformConfig::default()
            },
        })
    }

    /// Loads a spec from JSON text with full typed rejection: parse
    /// errors, unknown keys and semantic violations all surface as
    /// errors, never panics.
    ///
    /// # Errors
    ///
    /// * [`SimdcError::Serialization`] — malformed JSON or a document
    ///   that does not deserialize (e.g. an unknown enum variant);
    /// * [`SimdcError::InvalidConfig`] — an unknown key anywhere in the
    ///   document (path-qualified, e.g. `` `$.template.bogus` ``), or a
    ///   spec failing [`ScenarioSpec::validate`].
    pub fn from_json_str(text: &str) -> Result<Self> {
        let raw: serde_json::Value =
            serde_json::from_str(text).map_err(|e| SimdcError::Serialization(e.to_string()))?;
        let spec: ScenarioSpec =
            Deserialize::from_value(&raw).map_err(|e| SimdcError::Serialization(e.to_string()))?;
        // The vendored serde ignores unknown fields; walking the raw
        // document against the canonical re-serialization recovers the
        // strictness of `deny_unknown_fields`.
        reject_unknown_keys(&raw, &spec.to_value(), "$")?;
        spec.validate()?;
        Ok(spec)
    }

    /// Serializes the spec as pretty JSON — the committed fixture format.
    ///
    /// # Panics
    ///
    /// Never panics in practice (the data model is infallible to write).
    #[must_use]
    pub fn to_json_string_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serialization is infallible")
    }

    /// Returns a copy with every rate in the arrival tree scaled by
    /// `factor` — the sweep runner's load axis.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is positive and finite.
    #[must_use]
    pub fn with_rate_scale(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "rate scale must be positive and finite, got {factor}"
        );
        scale_arrival_rates(&mut self.arrivals, factor);
        self
    }

    /// Returns a copy with the horizon scaled by `factor` (mirrors
    /// [`Scenario::scaled`] for quick-profile sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    #[must_use]
    pub fn with_horizon_scale(mut self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor must be in (0, 1], got {factor}"
        );
        self.horizon = self.horizon.mul_f64(factor);
        self
    }
}

/// A validated spec lowered to what the engine actually runs: the
/// [`Scenario`] plus the [`PlatformConfig`] it executes against.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledScenario {
    /// The scenario half (arrivals, template, injectors, cluster).
    pub scenario: Scenario,
    /// The platform half (fleet composition, seed, threads); the seed
    /// doubles as the scenario seed, exactly like the bench suite runs
    /// the library.
    pub config: PlatformConfig,
}

impl CompiledScenario {
    /// Executes the compiled scenario and returns its summary.
    #[must_use]
    pub fn run(&self, dataset: &Arc<CtrDataset>) -> ScenarioSummary {
        self.scenario
            .run(self.config.clone(), dataset, self.config.seed)
    }

    /// Like [`CompiledScenario::run`], but also hands back the drained
    /// platform so callers can interrogate the invariant oracles
    /// ([`Platform::invariant_violations`]).
    #[must_use]
    pub fn run_detailed(&self, dataset: &Arc<CtrDataset>) -> (ScenarioSummary, Platform) {
        self.scenario
            .run_detailed(self.config.clone(), dataset, self.config.seed)
    }
}

/// Scales every rate in an arrival tree by `factor`, preserving the tree
/// shape (burst multipliers and periods are shapes, not rates, and stay).
pub fn scale_arrival_rates(process: &mut ArrivalProcess, factor: f64) {
    match process {
        ArrivalProcess::Poisson { rate_per_min } => *rate_per_min *= factor,
        ArrivalProcess::Diurnal {
            mean_per_min,
            amplitude_per_min,
            ..
        } => {
            *mean_per_min *= factor;
            *amplitude_per_min *= factor;
        }
        ArrivalProcess::Bursty { base_per_min, .. } => *base_per_min *= factor,
        ArrivalProcess::Superpose(children) => {
            for child in children {
                scale_arrival_rates(child, factor);
            }
        }
    }
}

/// Walks the raw document against the canonical re-serialization of what
/// it deserialized to; any key present in the input but absent from the
/// canonical form was silently ignored by the deserializer and is
/// rejected here with its `$.`-rooted path.
fn reject_unknown_keys(
    input: &serde_json::Value,
    canonical: &serde_json::Value,
    path: &str,
) -> Result<()> {
    use serde_json::Value;
    match (input, canonical) {
        (Value::Object(input_fields), Value::Object(known_fields)) => {
            for (key, value) in input_fields {
                match known_fields.iter().find(|(known, _)| known == key) {
                    Some((_, known_value)) => {
                        reject_unknown_keys(value, known_value, &format!("{path}.{key}"))?;
                    }
                    None => {
                        return Err(SimdcError::InvalidConfig(format!(
                            "unknown key `{path}.{key}` in scenario spec"
                        )));
                    }
                }
            }
            Ok(())
        }
        (Value::Array(input_items), Value::Array(known_items)) => {
            for (index, (item, known)) in input_items.iter().zip(known_items).enumerate() {
                reject_unknown_keys(item, known, &format!("{path}[{index}]"))?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

/// Greedily minimizes a failing spec: repeatedly tries the candidate
/// simplifications of [`shrink`]'s catalog (halve the horizon, prune the
/// arrival tree, calm the fleet, drop the cluster override, shrink the
/// fleet and template, force one worker thread) and keeps any candidate
/// for which `fails` still returns `true`, until no candidate fails —
/// the returned spec is a local minimum that still exhibits the failure.
///
/// The vendored proptest stand-in generates but does not shrink, so the
/// fuzz harness calls this instead after a property fails; `fails` is
/// typically "compile, run, and check the invariant oracles".
pub fn shrink(spec: &ScenarioSpec, fails: impl Fn(&ScenarioSpec) -> bool) -> ScenarioSpec {
    let mut current = spec.clone();
    loop {
        let mut improved = false;
        for candidate in shrink_candidates(&current) {
            if fails(&candidate) {
                current = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}

/// One round of candidate simplifications, most aggressive first. Each
/// candidate changes exactly one axis, so the accepted sequence is a
/// readable delta trail from the original failure to the minimum.
fn shrink_candidates(spec: &ScenarioSpec) -> Vec<ScenarioSpec> {
    let one_min = SimDuration::from_mins(1);
    let mut candidates = Vec::new();

    if spec.horizon > one_min {
        let mut c = spec.clone();
        let halved = c.horizon.mul_f64(0.5);
        c.horizon = if halved < one_min { one_min } else { halved };
        if c.dispatch_interval > c.horizon {
            c.dispatch_interval = c.horizon;
        }
        candidates.push(c);
    }

    for arrivals in shrink_arrivals(&spec.arrivals) {
        let mut c = spec.clone();
        c.arrivals = arrivals;
        candidates.push(c);
    }

    if spec.fleet_dynamics != FleetDynamics::calm() {
        let mut c = spec.clone();
        c.fleet_dynamics = FleetDynamics::calm();
        candidates.push(c);
    }

    if spec.cluster.is_some() {
        let mut c = spec.clone();
        c.cluster = None;
        candidates.push(c);
    }

    let halved_fleet = FleetSpec {
        local: simdc_types::PerGrade::from_parts(
            spec.fleet.local.high / 2,
            spec.fleet.local.low / 2,
        ),
        msp: simdc_types::PerGrade::from_parts(spec.fleet.msp.high / 2, spec.fleet.msp.low / 2),
    };
    if halved_fleet.total() > 0 && halved_fleet != spec.fleet {
        let mut c = spec.clone();
        c.fleet = halved_fleet;
        candidates.push(c);
    }

    if spec.template.rounds != (1, 1) {
        let mut c = spec.clone();
        c.template.rounds = (1, 1);
        candidates.push(c);
    }
    if spec.template.devices_per_grade.1 > spec.template.devices_per_grade.0 {
        let mut c = spec.clone();
        c.template.devices_per_grade.1 = c.template.devices_per_grade.0;
        candidates.push(c);
    }

    if spec.threads > 1 {
        let mut c = spec.clone();
        c.threads = 1;
        candidates.push(c);
    }

    candidates
}

/// Arrival-tree simplifications: drop superpose branches (or unwrap a
/// singleton), and collapse shaped processes to plain Poisson at their
/// base rate. Iterating these converges every tree to a single Poisson
/// leaf.
fn shrink_arrivals(process: &ArrivalProcess) -> Vec<ArrivalProcess> {
    match process {
        ArrivalProcess::Superpose(children) if children.len() == 1 => vec![children[0].clone()],
        ArrivalProcess::Superpose(children) => children
            .iter()
            .enumerate()
            .map(|(drop, _)| {
                ArrivalProcess::Superpose(
                    children
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != drop)
                        .map(|(_, c)| c.clone())
                        .collect(),
                )
            })
            .chain(children.iter().cloned())
            .collect(),
        ArrivalProcess::Diurnal { mean_per_min, .. } => vec![ArrivalProcess::Poisson {
            rate_per_min: *mean_per_min,
        }],
        ArrivalProcess::Bursty { base_per_min, .. } => vec![ArrivalProcess::Poisson {
            rate_per_min: *base_per_min,
        }],
        ArrivalProcess::Poisson { .. } => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    fn steady_spec() -> ScenarioSpec {
        ScenarioSpec::from_scenario(&library()[0], FleetSpec::paper_default(), 7, 1)
    }

    #[test]
    fn json_round_trip_is_lossless_for_every_library_scenario() {
        for scenario in library() {
            let spec = ScenarioSpec::from_scenario(&scenario, FleetSpec::paper_default(), 7, 1);
            let reloaded = ScenarioSpec::from_json_str(&spec.to_json_string_pretty()).unwrap();
            assert_eq!(reloaded, spec, "{}", scenario.name);
            assert_eq!(reloaded.to_scenario(), scenario, "{}", scenario.name);
        }
    }

    #[test]
    fn compile_reproduces_the_scenario_and_platform_knobs() {
        let spec = steady_spec();
        let compiled = spec.compile().unwrap();
        assert_eq!(compiled.scenario, library()[0]);
        assert_eq!(compiled.config.seed, 7);
        assert_eq!(compiled.config.threads, 1);
        assert_eq!(compiled.config.fleet, FleetSpec::paper_default());
    }

    #[test]
    fn unknown_keys_are_rejected_with_their_path() {
        let mut json = steady_spec().to_json_string_pretty();
        json = json.replacen("\"name\"", "\"frequency\": 3,\n  \"name\"", 1);
        let err = ScenarioSpec::from_json_str(&json).unwrap_err();
        assert_eq!(
            err.to_string(),
            "invalid configuration: unknown key `$.frequency` in scenario spec"
        );
    }

    #[test]
    fn rate_scale_walks_the_whole_tree() {
        let mut tree = ArrivalProcess::Superpose(vec![
            ArrivalProcess::Poisson { rate_per_min: 1.0 },
            ArrivalProcess::Bursty {
                base_per_min: 0.5,
                burst_multiplier: 4.0,
                burst_every: SimDuration::from_mins(10),
                burst_len: SimDuration::from_mins(1),
            },
        ]);
        scale_arrival_rates(&mut tree, 2.0);
        match tree {
            ArrivalProcess::Superpose(children) => {
                assert_eq!(children[0], ArrivalProcess::Poisson { rate_per_min: 2.0 });
                match children[1] {
                    ArrivalProcess::Bursty {
                        base_per_min,
                        burst_multiplier,
                        ..
                    } => {
                        assert_eq!(base_per_min, 1.0);
                        assert_eq!(burst_multiplier, 4.0, "shape must not scale");
                    }
                    ref other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn shrink_converges_to_a_minimal_failing_spec() {
        // "Fails whenever any arrivals exist at all" — the shrinker must
        // walk everything else down to its floor without losing failure.
        let spec = ScenarioSpec::from_scenario(
            &crate::scenario::mega_fleet(),
            FleetSpec::paper_default(),
            7,
            4,
        );
        let minimal = shrink(&spec, |s| s.arrivals.peak_rate_per_min() > 0.0);
        assert!(minimal.horizon <= SimDuration::from_mins(1));
        assert!(matches!(minimal.arrivals, ArrivalProcess::Poisson { .. }));
        assert_eq!(minimal.fleet_dynamics, FleetDynamics::calm());
        assert_eq!(minimal.threads, 1);
        assert_eq!(minimal.template.rounds, (1, 1));
        assert!(minimal.fleet.total() >= 1);
    }

    #[test]
    fn validate_rejects_platform_side_violations() {
        let mut spec = steady_spec();
        spec.fleet = FleetSpec {
            local: simdc_types::PerGrade::from_parts(0, 0),
            msp: simdc_types::PerGrade::from_parts(0, 0),
        };
        assert_eq!(
            spec.validate().unwrap_err().to_string(),
            "invalid configuration: fleet must contain at least one phone"
        );
        let mut spec = steady_spec();
        spec.threads = MAX_THREADS + 1;
        assert!(spec.validate().is_err());
    }
}
