//! Named workload scenarios and the engine that executes them.
//!
//! A [`Scenario`] composes an [`ArrivalProcess`], a [`TaskTemplate`] and
//! [`FleetDynamics`] over a time horizon. [`Scenario::run`] pre-samples the
//! stochastic schedules from the scenario seed, then replays them through
//! the deterministic [`simdc_simrt::Engine`] event loop: task arrivals,
//! phone crashes and reboots are all events in one queue. The platform
//! core is itself event-driven — each arrival is admitted at its arrival
//! instant (or at the first task completion that frees its claim), and a
//! recurring dispatch event merely paces the platform's completion events
//! forward, never draining ahead of the outer timeline.
//!
//! Everything downstream of the seed is deterministic: same seed ⇒
//! byte-identical [`ScenarioSummary`] JSON; different seed ⇒ different
//! arrivals (exposed via `arrival_preview_secs`).

use std::collections::BTreeMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use simdc_cluster::{AutoscalerConfig, ClusterConfig};
use simdc_core::{Platform, PlatformConfig, TaskSpec, TaskState};
use simdc_data::CtrDataset;
use simdc_simrt::{Engine, EngineCtx, RngStream, World};
use simdc_types::{Result, SimDuration, SimInstant, SimdcError, TaskId};

use crate::arrival::ArrivalProcess;
use crate::fleet::{FleetDynamics, FleetEvent};
use crate::template::TaskTemplate;

/// A named, self-contained workload description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (doubles as the JSON key and RNG stream label).
    pub name: String,
    /// One-line description for reports.
    pub description: String,
    /// Arrival horizon: tasks arrive in `[0, horizon)`; the run then
    /// drains.
    pub horizon: SimDuration,
    /// Period of the dispatch event that paces the platform's completion
    /// events along the outer timeline (admission itself is per-arrival
    /// and per-completion, not per-dispatch).
    pub dispatch_interval: SimDuration,
    /// Task arrival process.
    pub arrivals: ArrivalProcess,
    /// Task generator.
    pub template: TaskTemplate,
    /// Fleet perturbations.
    pub fleet: FleetDynamics,
    /// Logical-cluster override: scenarios that exercise the elastic
    /// cloud tier (small initial pools, budget-capped autoscalers) carry
    /// their cluster shape here; `None` keeps whatever the caller's
    /// [`PlatformConfig`] says.
    pub cluster: Option<ClusterConfig>,
}

impl Scenario {
    /// Validates the scenario and its components.
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` for an empty name, zero horizon/interval, or
    /// any invalid component.
    pub fn validate(&self) -> Result<()> {
        use SimdcError::InvalidConfig;
        if self.name.is_empty() {
            return Err(InvalidConfig("scenario name must not be empty".into()));
        }
        if self.horizon.is_zero() {
            return Err(InvalidConfig("scenario horizon must be positive".into()));
        }
        if self.dispatch_interval.is_zero() {
            return Err(InvalidConfig("dispatch interval must be positive".into()));
        }
        self.arrivals.validate()?;
        self.template.validate()?;
        if let Some(cluster) = &self.cluster {
            cluster.validate()?;
        }
        self.fleet.validate()
    }

    /// Returns a copy with the horizon scaled by `factor` (quick-profile
    /// runs shrink scenarios this way).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor must be in (0, 1], got {factor}"
        );
        self.horizon = SimDuration::from_secs_f64(self.horizon.as_secs_f64() * factor);
        self
    }

    /// Executes the scenario against a fresh platform and returns its
    /// summary.
    ///
    /// # Panics
    ///
    /// Panics if the scenario fails [`Scenario::validate`].
    #[must_use]
    pub fn run(
        &self,
        config: PlatformConfig,
        dataset: &Arc<CtrDataset>,
        seed: u64,
    ) -> ScenarioSummary {
        self.run_detailed(config, dataset, seed).0
    }

    /// Like [`Scenario::run`], but also hands back the drained platform —
    /// for tests and tools that need post-run internals the summary
    /// deliberately omits (e.g. billed node-seconds for the cost
    /// reconciliation check).
    ///
    /// # Panics
    ///
    /// Panics if the scenario fails [`Scenario::validate`].
    #[must_use]
    pub fn run_detailed(
        &self,
        config: PlatformConfig,
        dataset: &Arc<CtrDataset>,
        seed: u64,
    ) -> (ScenarioSummary, Platform) {
        self.validate().expect("scenario must be valid");
        let mut rng = RngStream::named(seed, &format!("scenario/{}", self.name));
        let mut config = config;
        if let Some(cluster) = &self.cluster {
            config.cluster = cluster.clone();
        }
        let mut platform = Platform::new(config);

        // Pre-sample every stochastic schedule from the scenario seed.
        let offsets = self
            .arrivals
            .sample(self.horizon, &mut rng.fork("arrivals"));
        let mut template_rng = rng.fork("templates");
        let specs: Vec<TaskSpec> = offsets
            .iter()
            .enumerate()
            .map(|(i, _)| {
                self.template
                    .instantiate(TaskId(i as u64 + 1), &mut template_rng)
            })
            .collect();
        let stragglers = self
            .fleet
            .apply_stragglers(platform.phones_mut(), &mut rng.fork("stragglers"));
        let crashes =
            self.fleet
                .sample_crashes(platform.phones(), self.horizon, &mut rng.fork("churn"));

        // Replay the schedules through the deterministic event loop.
        let mut engine = Engine::new(ScenarioWorld {
            platform,
            dataset: Arc::clone(dataset),
            dispatch_interval: self.dispatch_interval,
            reboot_after: self.fleet.reboot_after,
            arrivals: BTreeMap::new(),
            submitted: Vec::new(),
            rejected: 0,
            completed: 0,
            crashes: 0,
            reboots: 0,
            cloud_series: Vec::new(),
        });
        for (offset, spec) in offsets.iter().zip(specs) {
            engine.schedule_in(*offset, Ev::Arrival(Box::new(spec)));
        }
        for (offset, event) in &crashes {
            engine.schedule_in(*offset, Ev::Fleet(*event));
        }
        engine.schedule_in(self.dispatch_interval, Ev::Dispatch);
        let outer_events = engine.run();

        let world = engine.into_world();
        summarize(self, seed, &offsets, world, stragglers, outer_events)
    }
}

/// The event alphabet of a scenario run.
enum Ev {
    /// A task arrives and is submitted to the platform queue.
    Arrival(Box<TaskSpec>),
    /// A fleet perturbation fires.
    Fleet(FleetEvent),
    /// Pacing tick: run the platform's completion events up to now (final
    /// tick drains it to idle).
    Dispatch,
}

/// Platform + bookkeeping driven by the event loop.
struct ScenarioWorld {
    platform: Platform,
    dataset: Arc<CtrDataset>,
    dispatch_interval: SimDuration,
    reboot_after: SimDuration,
    arrivals: BTreeMap<TaskId, SimInstant>,
    submitted: Vec<TaskId>,
    rejected: u64,
    completed: u64,
    crashes: u64,
    reboots: u64,
    /// Elastic-tier samples taken at every dispatch tick (plus one final
    /// post-drain sample from `summarize`).
    cloud_series: Vec<CloudSample>,
}

impl ScenarioWorld {
    /// Samples the elastic tier at `now` into the cloud time series.
    fn sample_cloud(&mut self, now: SimInstant) {
        let stats = self.platform.cluster().stats();
        self.cloud_series.push(CloudSample {
            t_secs: now.duration_since(SimInstant::EPOCH).as_secs_f64(),
            nodes: stats.nodes,
            ready: stats.ready,
            utilization: stats.utilization,
            cost: stats.cost_accrued,
        });
    }
}

impl World for ScenarioWorld {
    type Event = Ev;

    fn handle(&mut self, ctx: &mut EngineCtx<'_, Ev>, event: Ev) {
        match event {
            Ev::Arrival(spec) => {
                let id = spec.id;
                // Bring the platform up to the arrival instant with the
                // same tie discipline as `run_from_source`: completions
                // strictly before now run normally, completions at
                // exactly now only release their leases — the post-submit
                // pass sees freed capacity and the new task together, so
                // priority decides the tie.
                self.completed += self.platform.sync_to_arrival(ctx.now()) as u64;
                match self.platform.submit(*spec, Arc::clone(&self.dataset)) {
                    Ok(_) => {
                        self.arrivals.insert(id, ctx.now());
                        self.submitted.push(id);
                    }
                    Err(_) => self.rejected += 1,
                }
                self.platform.admit_now();
            }
            Ev::Fleet(FleetEvent::Crash(id)) => {
                // Through the manager APIs (not raw phone_mut), so the
                // crash lands in the availability index the instant it
                // fires rather than on the next dirty flush.
                let phones = self.platform.phones_mut();
                if phones.phone(id).is_some_and(|p| !p.is_crashed(ctx.now())) {
                    phones
                        .inject_crash(id, ctx.now())
                        .expect("victim exists in the fleet");
                    self.crashes += 1;
                    ctx.schedule_in(self.reboot_after, Ev::Fleet(FleetEvent::Reboot(id)));
                }
            }
            Ev::Fleet(FleetEvent::Reboot(id)) => {
                let phones = self.platform.phones_mut();
                if phones.phone(id).is_some_and(|p| p.is_crashed(ctx.now())) {
                    phones.reboot(id).expect("crashed phone exists");
                    self.reboots += 1;
                }
            }
            Ev::Dispatch => {
                // Pace the platform's completion events up to now; while
                // anything else (arrivals, crashes, reboots) is still on
                // the outer timeline, never run ahead of it. The tick with
                // an empty outer queue is the final drain.
                if ctx.pending() > 0 {
                    self.completed += self.platform.run_until(ctx.now()) as u64;
                    self.sample_cloud(ctx.now());
                    ctx.schedule_in(self.dispatch_interval, Ev::Dispatch);
                } else {
                    self.platform.advance_clock_to(ctx.now());
                    self.completed += self.platform.run_until_idle() as u64;
                    // No sample here: `summarize` takes the one post-drain
                    // sample, so the series does not end on a duplicate.
                }
            }
        }
    }
}

/// One sample of the elastic cloud tier on the scenario timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CloudSample {
    /// Virtual offset from the scenario start, seconds.
    pub t_secs: f64,
    /// Physical nodes (booting + ready + draining).
    pub nodes: u64,
    /// Nodes up and accepting placements.
    pub ready: u64,
    /// Ready-capacity CPU utilization, `[0, 1]`.
    pub utilization: f64,
    /// Cumulative node-time spend so far.
    pub cost: f64,
}

/// The elastic tier's story of one scenario run: lifecycle counters, the
/// final bill and the node-count/utilization/cost time series the
/// elasticity bench plots (and CI assertions read).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloudSummary {
    /// Largest physical footprint the pool ever reached.
    pub peak_nodes: u64,
    /// Ready nodes after the run drained.
    pub final_ready: u64,
    /// Nodes ever booted (including the initial set).
    pub nodes_booted: u64,
    /// Nodes ever retired.
    pub nodes_retired: u64,
    /// Node-ready events the platform processed (scale-up wake-ups).
    pub node_ready_events: u64,
    /// Total node-time spend.
    pub cost_total: f64,
    /// Samples taken at every dispatch tick plus one after the drain.
    pub series: Vec<CloudSample>,
}

/// Aggregated outcome of one scenario run — everything the summary JSON
/// contains. Field order is fixed, so same-seed runs serialize to
/// byte-identical JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSummary {
    /// Scenario name.
    pub scenario: String,
    /// Seed the run derived every stream from.
    pub seed: u64,
    /// Arrival horizon in seconds.
    pub horizon_secs: f64,
    /// Sampled arrivals within the horizon.
    pub arrivals: u64,
    /// Tasks accepted into the queue.
    pub submitted: u64,
    /// Tasks rejected at submission.
    pub rejected: u64,
    /// Tasks that ran to completion.
    pub completed: u64,
    /// Tasks that terminally failed (starved or crashed substrate).
    pub failed: u64,
    /// Phone crashes injected.
    pub crashes: u64,
    /// Phone reboots executed.
    pub reboots: u64,
    /// Phones slowed at scenario start.
    pub stragglers: u64,
    /// Discrete events processed: outer engine events (arrivals, fleet
    /// perturbations, dispatch ticks) plus platform completion events —
    /// the numerator of the scale bench's events-per-second figure.
    pub events: u64,
    /// Virtual end-to-end makespan (platform clock at drain), seconds.
    pub makespan_secs: f64,
    /// Mean queueing delay (submission → start) of completed tasks,
    /// seconds.
    pub mean_wait_secs: f64,
    /// Worst queueing delay, seconds.
    pub max_wait_secs: f64,
    /// Mean execution span (start → finish) of completed tasks, seconds.
    pub mean_run_secs: f64,
    /// Mean final-round test accuracy across completed tasks.
    pub mean_final_accuracy: f64,
    /// First arrival offsets (seconds) — a compact fingerprint proving
    /// different seeds yield different workloads.
    pub arrival_preview_secs: Vec<f64>,
    /// The elastic cloud tier's node/cost/utilization story.
    pub cloud: CloudSummary,
}

fn summarize(
    scenario: &Scenario,
    seed: u64,
    offsets: &[SimDuration],
    mut world: ScenarioWorld,
    stragglers: u64,
    outer_events: u64,
) -> (ScenarioSummary, Platform) {
    // Flush the final partial node-hour before the last sample: a run
    // ending mid-hour must still bill its tail, so `cost_total` always
    // equals billed node-seconds × the hourly rate.
    world.platform.finalize_cost();
    // One final post-drain sample, so the series always ends on the
    // settled state (surplus nodes drained or still paying cooldown).
    world.sample_cloud(world.platform.status().now);
    let cluster_stats = world.platform.cluster().stats();
    let cloud = CloudSummary {
        peak_nodes: cluster_stats.peak_nodes,
        final_ready: cluster_stats.ready,
        nodes_booted: cluster_stats.booted_total,
        nodes_retired: cluster_stats.retired_total,
        node_ready_events: world.platform.cluster_events(),
        cost_total: cluster_stats.cost_accrued,
        series: std::mem::take(&mut world.cloud_series),
    };
    let mut waits: Vec<f64> = Vec::new();
    let mut runs: Vec<f64> = Vec::new();
    let mut accuracies: Vec<f64> = Vec::new();
    let mut failed = 0u64;
    for id in &world.submitted {
        match world.platform.task_state(*id) {
            Some(TaskState::Completed {
                started_at,
                finished_at,
            }) => {
                let arrival = world.arrivals[id];
                waits.push(started_at.saturating_duration_since(arrival).as_secs_f64());
                runs.push(finished_at.duration_since(*started_at).as_secs_f64());
                if let Some(report) = world.platform.report(*id) {
                    accuracies.push(report.final_accuracy());
                }
            }
            Some(TaskState::Failed { .. }) => failed += 1,
            // A drained run leaves nothing pending/running; count any
            // leftovers as failures rather than hiding them.
            _ => failed += 1,
        }
    }
    let mean = |xs: &[f64]| {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    let summary = ScenarioSummary {
        scenario: scenario.name.clone(),
        seed,
        horizon_secs: scenario.horizon.as_secs_f64(),
        arrivals: offsets.len() as u64,
        submitted: world.submitted.len() as u64,
        rejected: world.rejected,
        completed: world.completed,
        failed,
        crashes: world.crashes,
        reboots: world.reboots,
        stragglers,
        events: outer_events + world.platform.completion_events() + world.platform.cluster_events(),
        makespan_secs: world
            .platform
            .status()
            .now
            .duration_since(SimInstant::EPOCH)
            .as_secs_f64(),
        mean_wait_secs: mean(&waits),
        max_wait_secs: waits.iter().copied().fold(0.0, f64::max),
        mean_run_secs: mean(&runs),
        mean_final_accuracy: mean(&accuracies),
        arrival_preview_secs: offsets.iter().take(8).map(|d| d.as_secs_f64()).collect(),
        cloud,
    };
    (summary, world.platform)
}

/// The built-in scenario library: the six workloads `cargo run --bin
/// scenarios` exercises. Each stresses a different axis — steady load,
/// time-varying load, flash crowds, fleet churn, stragglers and
/// benchmark-phone outages.
#[must_use]
pub fn library() -> Vec<Scenario> {
    let mins = SimDuration::from_mins;
    let base_template = TaskTemplate::default();
    vec![
        Scenario {
            name: "steady_poisson".into(),
            description: "memoryless constant-rate submissions; the capacity baseline".into(),
            horizon: mins(30),
            dispatch_interval: mins(2),
            arrivals: ArrivalProcess::Poisson { rate_per_min: 0.7 },
            template: base_template.clone(),
            fleet: FleetDynamics::calm(),
            cluster: None,
        },
        Scenario {
            name: "diurnal_cycle".into(),
            description: "sinusoidal day/night load riding one full period".into(),
            horizon: mins(40),
            dispatch_interval: mins(2),
            arrivals: ArrivalProcess::Diurnal {
                mean_per_min: 0.6,
                amplitude_per_min: 0.5,
                period: mins(40),
            },
            template: base_template.clone(),
            fleet: FleetDynamics::calm(),
            cluster: None,
        },
        Scenario {
            name: "flash_crowd".into(),
            description: "low background traffic punctuated by 8x burst windows".into(),
            horizon: mins(30),
            dispatch_interval: mins(2),
            arrivals: ArrivalProcess::Bursty {
                base_per_min: 0.25,
                burst_multiplier: 8.0,
                burst_every: mins(15),
                burst_len: mins(2),
            },
            template: base_template.clone(),
            fleet: FleetDynamics::calm(),
            cluster: None,
        },
        Scenario {
            name: "phone_churn".into(),
            description: "steady load while phones crash and reboot across the fleet".into(),
            horizon: mins(30),
            dispatch_interval: mins(2),
            arrivals: ArrivalProcess::Poisson { rate_per_min: 0.6 },
            template: base_template.clone(),
            fleet: FleetDynamics {
                mean_time_between_crashes: Some(mins(4)),
                reboot_after: mins(3),
                ..FleetDynamics::calm()
            },
            cluster: None,
        },
        Scenario {
            name: "straggler_fleet".into(),
            description: "40% of phones run 2.5x slower from the start".into(),
            horizon: mins(30),
            dispatch_interval: mins(2),
            arrivals: ArrivalProcess::Poisson { rate_per_min: 0.6 },
            template: TaskTemplate {
                // Half of each task's devices run on phones, so the slowed
                // fleet actually stretches round times.
                allocation: simdc_core::AllocationPolicy::FixedLogicalFraction(0.5),
                ..base_template.clone()
            },
            fleet: FleetDynamics {
                straggler_frac: 0.4,
                straggler_slowdown: 2.5,
                ..FleetDynamics::calm()
            },
            cluster: None,
        },
        Scenario {
            name: "benchmark_outage".into(),
            description: "benchmark-measuring tasks while local phones (the preferred \
                          benchmark pool) keep crashing"
                .into(),
            horizon: mins(30),
            dispatch_interval: mins(2),
            arrivals: ArrivalProcess::Superpose(vec![
                ArrivalProcess::Poisson { rate_per_min: 0.4 },
                ArrivalProcess::Bursty {
                    base_per_min: 0.1,
                    burst_multiplier: 6.0,
                    burst_every: mins(12),
                    burst_len: mins(2),
                },
            ]),
            template: TaskTemplate {
                benchmark_phones: 1,
                ..base_template
            },
            fleet: FleetDynamics {
                mean_time_between_crashes: Some(mins(3)),
                reboot_after: mins(4),
                target_local: true,
                ..FleetDynamics::calm()
            },
            cluster: None,
        },
        cloud_surge(),
        budget_capped(),
    ]
}

/// The million-phone scale scenario: superposed bursty arrivals of small,
/// phone-heavy tasks over a fleet sized by the *platform config* (pair it
/// with [`simdc_phone::FleetSpec::scaled_paper`] at 100k–1M phones — the
/// scenario itself is fleet-size agnostic). Light churn and a straggler
/// tail keep the availability index under continuous transition pressure;
/// every task runs its devices on the phone cluster
/// (`FixedLogicalFraction(0.0)`) and reserves one benchmark phone, so
/// `select`, `available` and `effective_profile` all sit on the task-plan
/// hot path. Low per-task bundle claims let ~50 tasks run concurrently.
///
/// The `scale` bench bin (`crates/bench`) drives this scenario and reports
/// wall-clock throughput and events per second (`BENCH_scale.json`).
#[must_use]
pub fn mega_fleet() -> Scenario {
    let mins = SimDuration::from_mins;
    Scenario {
        name: "mega_fleet".into(),
        description: "100k–1M-phone fleet under superposed bursty arrivals of phone-heavy tasks"
            .into(),
        horizon: mins(30),
        dispatch_interval: mins(1),
        arrivals: ArrivalProcess::Superpose(vec![
            ArrivalProcess::Poisson { rate_per_min: 12.0 },
            ArrivalProcess::Bursty {
                base_per_min: 2.0,
                burst_multiplier: 10.0,
                burst_every: mins(6),
                burst_len: mins(1),
            },
        ]),
        template: TaskTemplate {
            rounds: (1, 1),
            devices_per_grade: (4, 8),
            benchmark_phones: 1,
            allocation: simdc_core::AllocationPolicy::FixedLogicalFraction(0.0),
            high: crate::GradeScheme {
                unit_bundles: 4,
                units_per_device: 8,
                phones: 16,
            },
            low: crate::GradeScheme {
                unit_bundles: 2,
                units_per_device: 2,
                phones: 12,
            },
            ..TaskTemplate::default()
        },
        fleet: FleetDynamics {
            mean_time_between_crashes: Some(SimDuration::from_secs(45)),
            reboot_after: mins(2),
            straggler_frac: 0.05,
            straggler_slowdown: 2.0,
            ..FleetDynamics::calm()
        },
        cluster: None,
    }
}

/// The elastic scale-out scenario: bursty arrivals of *logical-heavy*
/// tasks (every device simulated on the cloud tier, large unit-bundle
/// claims) against the default four-node pool. Each burst stacks more
/// bundle demand than the booted capacity holds, so placement blocks,
/// the autoscaler boots nodes, blocked tasks admit at the node-ready
/// event — and the quiet stretches between bursts drain the surplus back
/// toward the floor. The summary's [`CloudSummary::series`] is the Fig
/// 8/9-style node-count-over-time story the elasticity bench plots.
#[must_use]
pub fn cloud_surge() -> Scenario {
    let mins = SimDuration::from_mins;
    Scenario {
        name: "cloud_surge".into(),
        description: "bursty logical-heavy arrivals force elastic scale-out, quiet \
                      stretches scale back in"
            .into(),
        horizon: mins(30),
        dispatch_interval: mins(1),
        arrivals: ArrivalProcess::Bursty {
            base_per_min: 0.2,
            burst_multiplier: 14.0,
            burst_every: mins(12),
            burst_len: mins(2),
        },
        template: cloud_heavy_template(),
        fleet: FleetDynamics::calm(),
        cluster: None,
    }
}

/// The cost-governed variant of [`cloud_surge`]: the same bursty
/// logical-heavy traffic, but the autoscaler carries a spend-rate budget
/// that affords six nodes — deep bursts queue behind the cap instead of
/// scaling through it, trading wait time for cost. Node count in the
/// emitted series never exceeds the budget cap.
#[must_use]
pub fn budget_capped() -> Scenario {
    let mins = SimDuration::from_mins;
    Scenario {
        name: "budget_capped".into(),
        description: "cloud_surge traffic under a 6-node hourly cost budget: queues \
                      absorb what the budget refuses to boot"
            .into(),
        horizon: mins(30),
        dispatch_interval: mins(1),
        arrivals: ArrivalProcess::Bursty {
            base_per_min: 0.2,
            burst_multiplier: 14.0,
            burst_every: mins(12),
            burst_len: mins(2),
        },
        template: cloud_heavy_template(),
        fleet: FleetDynamics::calm(),
        cluster: Some(ClusterConfig {
            autoscaler: AutoscalerConfig {
                // Nodes cost 1.0/h (CostModel default): affords 6 nodes.
                max_hourly_cost: Some(6.0),
                ..AutoscalerConfig::default()
            },
            ..ClusterConfig::default()
        }),
    }
}

/// The task population of the elastic-tier scenarios: fully logical
/// placement (`FixedLogicalFraction(1.0)` — no phone-cluster devices, so
/// cloud capacity is the only bottleneck) with unit-bundle claims big
/// enough that a burst outgrows the four initial nodes.
fn cloud_heavy_template() -> TaskTemplate {
    TaskTemplate {
        rounds: (1, 2),
        devices_per_grade: (16, 32),
        benchmark_phones: 0,
        allocation: simdc_core::AllocationPolicy::FixedLogicalFraction(1.0),
        high: crate::GradeScheme {
            unit_bundles: 64,
            units_per_device: 8,
            phones: 0,
        },
        low: crate::GradeScheme {
            unit_bundles: 32,
            units_per_device: 2,
            phones: 0,
        },
        ..TaskTemplate::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdc_data::GeneratorConfig;

    fn dataset() -> Arc<CtrDataset> {
        Arc::new(CtrDataset::generate(&GeneratorConfig {
            n_devices: 40,
            n_test_devices: 8,
            mean_records_per_device: 15.0,
            feature_dim: 1 << 12,
            seed: 55,
            ..GeneratorConfig::default()
        }))
    }

    fn tiny(name: &str) -> Scenario {
        Scenario {
            name: name.into(),
            description: "test".into(),
            horizon: SimDuration::from_mins(6),
            dispatch_interval: SimDuration::from_mins(2),
            arrivals: ArrivalProcess::Poisson { rate_per_min: 0.5 },
            template: TaskTemplate {
                rounds: (1, 2),
                devices_per_grade: (6, 12),
                ..TaskTemplate::default()
            },
            fleet: FleetDynamics::calm(),
            cluster: None,
        }
    }

    #[test]
    fn run_is_seed_deterministic_to_the_byte() {
        let scenario = tiny("determinism");
        let data = dataset();
        let a = scenario.run(PlatformConfig::default(), &data, 42);
        let b = scenario.run(PlatformConfig::default(), &data, 42);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn different_seeds_change_the_arrivals() {
        let scenario = tiny("seeds");
        let data = dataset();
        let a = scenario.run(PlatformConfig::default(), &data, 1);
        let b = scenario.run(PlatformConfig::default(), &data, 2);
        assert_ne!(
            a.arrival_preview_secs, b.arrival_preview_secs,
            "seed must steer the arrival process"
        );
    }

    #[test]
    fn tasks_arrive_queue_and_complete() {
        let scenario = tiny("lifecycle");
        let data = dataset();
        let summary = scenario.run(PlatformConfig::default(), &data, 9);
        assert!(summary.arrivals > 0, "horizon long enough for arrivals");
        assert_eq!(summary.submitted, summary.arrivals);
        assert_eq!(summary.completed + summary.failed, summary.submitted);
        assert!(summary.completed > 0);
        assert!(summary.makespan_secs > 0.0);
        assert!(summary.mean_run_secs > 0.0);
        assert!(summary.mean_final_accuracy > 0.4);
    }

    #[test]
    fn churn_injects_and_recovers_phones() {
        let mut scenario = tiny("churny");
        scenario.fleet = FleetDynamics {
            mean_time_between_crashes: Some(SimDuration::from_mins(1)),
            reboot_after: SimDuration::from_mins(1),
            ..FleetDynamics::calm()
        };
        let data = dataset();
        let summary = scenario.run(PlatformConfig::default(), &data, 3);
        assert!(summary.crashes > 0, "{summary:?}");
        assert!(summary.reboots > 0, "{summary:?}");
        assert!(summary.reboots <= summary.crashes);
    }

    #[test]
    fn straggler_scenario_slows_execution() {
        // Same name + seed ⇒ identical arrivals and task specs; only the
        // fleet differs, so the run-time delta is the straggler effect.
        let calm = tiny("paired");
        let mut slow = tiny("paired");
        slow.fleet = FleetDynamics {
            straggler_frac: 1.0,
            straggler_slowdown: 3.0,
            ..FleetDynamics::calm()
        };
        // Force phone participation — fully logical tasks would never see
        // the slowed phones.
        let half_on_phones = simdc_core::AllocationPolicy::FixedLogicalFraction(0.5);
        let calm = Scenario {
            template: TaskTemplate {
                allocation: half_on_phones,
                ..calm.template
            },
            ..calm
        };
        let slow = Scenario {
            template: TaskTemplate {
                allocation: half_on_phones,
                ..slow.template
            },
            ..slow
        };
        let data = dataset();
        let fast = calm.run(PlatformConfig::default(), &data, 17);
        let slowed = slow.run(PlatformConfig::default(), &data, 17);
        assert_eq!(slowed.stragglers, 30);
        assert!(
            slowed.mean_run_secs > fast.mean_run_secs,
            "stragglers must stretch task execution: {} vs {}",
            slowed.mean_run_secs,
            fast.mean_run_secs
        );
    }

    #[test]
    fn mega_fleet_is_byte_deterministic_over_a_scaled_fleet() {
        let scenario = mega_fleet().scaled(0.1); // 3-minute horizon
        scenario.validate().unwrap();
        let data = dataset();
        let config = || PlatformConfig {
            fleet: simdc_phone::FleetSpec::scaled_paper(1_500),
            ..PlatformConfig::default()
        };
        let a = scenario.run(config(), &data, 21);
        let b = scenario.run(config(), &data, 21);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "same seed over a 1500-phone fleet must be byte-identical"
        );
        assert!(a.submitted > 0, "{a:?}");
        assert!(a.completed > 0, "{a:?}");
        assert!(a.crashes > 0, "churn must fire at this horizon: {a:?}");
        // Every arrival, perturbation and completion is an event.
        assert!(a.events > a.arrivals + a.completed, "{a:?}");
    }

    /// Sharded-execution acceptance check: the same scenario run with a
    /// worker pool — parallel fleet construction plus batched plan-phase
    /// dispatch with the deterministic `(time, seq)` merge — produces
    /// byte-identical summary JSON for every thread count.
    #[test]
    fn thread_count_never_changes_scenario_bytes() {
        let scenario = mega_fleet().scaled(0.1);
        let data = dataset();
        let run = |threads: usize| {
            let config = PlatformConfig {
                fleet: simdc_phone::FleetSpec::scaled_paper(1_500),
                threads,
                ..PlatformConfig::default()
            };
            serde_json::to_string(&scenario.run(config, &data, 21)).unwrap()
        };
        let sequential = run(1);
        for threads in [2, 8] {
            assert_eq!(
                run(threads),
                sequential,
                "threads={threads} changed scenario bytes"
            );
        }
    }

    /// The tentpole acceptance check: one `cloud_surge` run scales the
    /// node count up during the burst and back down afterwards, asserted
    /// on the emitted time series — and blocked placements waited for
    /// capacity instead of failing.
    #[test]
    fn cloud_surge_scales_up_then_back_down_within_one_run() {
        let scenario = cloud_surge();
        let data = dataset();
        let summary = scenario.run(PlatformConfig::default(), &data, 5);
        assert!(summary.submitted > 0, "{summary:?}");
        assert_eq!(
            summary.completed + summary.failed,
            summary.submitted,
            "{summary:?}"
        );
        assert_eq!(summary.failed, 0, "blocked placement must wait, not fail");

        let cloud = &summary.cloud;
        let first = cloud.series.first().expect("series sampled");
        let peak_in_series = cloud.series.iter().map(|s| s.nodes).max().unwrap();
        let last = cloud.series.last().unwrap();
        assert!(
            peak_in_series > first.nodes,
            "burst must scale the pool out: {cloud:?}"
        );
        assert!(
            last.ready < peak_in_series,
            "quiet tail must scale back in: {cloud:?}"
        );
        assert_eq!(cloud.peak_nodes, peak_in_series);
        assert!(cloud.nodes_retired > 0, "drained nodes retired: {cloud:?}");
        assert!(cloud.node_ready_events > 0, "scale-ups woke the scheduler");
        assert!(cloud.cost_total > 0.0);
        // Cost is monotone along the series.
        for pair in cloud.series.windows(2) {
            assert!(pair[1].cost >= pair[0].cost);
        }
        // Some task actually waited on capacity (queueing is visible).
        assert!(summary.max_wait_secs > 0.0, "{summary:?}");
    }

    #[test]
    fn cloud_surge_is_byte_deterministic() {
        let scenario = cloud_surge();
        let data = dataset();
        let a = scenario.run(PlatformConfig::default(), &data, 42);
        let b = scenario.run(PlatformConfig::default(), &data, 42);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "same seed must replay the elastic tier byte for byte"
        );
    }

    #[test]
    fn budget_cap_bounds_node_count_in_the_series() {
        let scenario = budget_capped();
        let data = dataset();
        let (summary, platform) = scenario.run_detailed(PlatformConfig::default(), &data, 5);
        assert!(summary.submitted > 0);
        // Cost reconciliation: the reported total equals billed
        // node-seconds × the hourly rate within one float rounding step —
        // in particular the final partial node-hour is billed, not
        // dropped at the last whole-hour boundary.
        let rate = platform.cluster().cost().node_hourly_cost;
        let expected = platform.cluster().node_seconds() * rate / 3_600.0;
        assert!(
            (summary.cloud.cost_total - expected).abs() <= 1e-9 * expected.max(1.0),
            "cost_total {} must reconcile with node-seconds pricing {}",
            summary.cloud.cost_total,
            expected
        );
        assert!(
            summary.cloud.cost_total > 0.0,
            "the pool was up for the whole horizon"
        );
        for sample in &summary.cloud.series {
            assert!(
                sample.nodes <= 6,
                "budget allows at most 6 nodes: {sample:?}"
            );
        }
        assert_eq!(summary.cloud.peak_nodes.max(6), 6, "{:?}", summary.cloud);
        // The capped pool pays with queueing: the same traffic waits at
        // least as long as under the uncapped autoscaler.
        let uncapped = cloud_surge().run(PlatformConfig::default(), &data, 5);
        assert!(
            summary.mean_wait_secs >= uncapped.mean_wait_secs,
            "cap {} vs uncapped {}",
            summary.mean_wait_secs,
            uncapped.mean_wait_secs
        );
    }

    #[test]
    fn library_scenarios_validate() {
        let lib = library();
        assert_eq!(lib.len(), 8);
        let mut names = std::collections::BTreeSet::new();
        for scenario in &lib {
            scenario.validate().unwrap();
            assert!(names.insert(scenario.name.clone()), "duplicate name");
        }
    }

    #[test]
    fn scaled_shrinks_horizon() {
        let scenario = tiny("scaling").scaled(0.5);
        assert_eq!(scenario.horizon, SimDuration::from_mins(3));
    }
}
