//! Composable task arrival processes.
//!
//! Every process is a (possibly time-varying) Poisson process described by
//! an intensity `λ(t)` in tasks per minute. Sampling uses Lewis–Shedler
//! thinning against the peak intensity, driven by a named [`RngStream`], so
//! any two runs with the same seed produce the same arrival instants and
//! different seeds produce different ones.

use serde::{Deserialize, Serialize};
use simdc_simrt::RngStream;
use simdc_types::{Result, SimDuration, SimdcError};

/// A stochastic arrival process for task submissions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals at a constant rate.
    Poisson {
        /// Mean arrivals per minute.
        rate_per_min: f64,
    },
    /// Sinusoidal day/night modulation:
    /// `λ(t) = mean + amplitude · sin(2πt / period)`.
    Diurnal {
        /// Mean arrivals per minute.
        mean_per_min: f64,
        /// Modulation amplitude (must not exceed the mean).
        amplitude_per_min: f64,
        /// Length of one day/night cycle.
        period: SimDuration,
    },
    /// Flash-crowd traffic: a base rate multiplied by `burst_multiplier`
    /// during a recurring burst window.
    Bursty {
        /// Background arrivals per minute.
        base_per_min: f64,
        /// Rate multiplier inside a burst window.
        burst_multiplier: f64,
        /// Interval between burst starts.
        burst_every: SimDuration,
        /// Length of each burst window.
        burst_len: SimDuration,
    },
    /// Superposition of independent processes (rates add) — the
    /// composition operator.
    Superpose(Vec<ArrivalProcess>),
}

impl ArrivalProcess {
    /// The intensity `λ(t)` in arrivals per minute, `t` measured from the
    /// scenario start.
    #[must_use]
    pub fn rate_per_min_at(&self, t: SimDuration) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_per_min } => *rate_per_min,
            ArrivalProcess::Diurnal {
                mean_per_min,
                amplitude_per_min,
                period,
            } => {
                let phase = t.as_secs_f64() / period.as_secs_f64();
                (mean_per_min + amplitude_per_min * (std::f64::consts::TAU * phase).sin()).max(0.0)
            }
            ArrivalProcess::Bursty {
                base_per_min,
                burst_multiplier,
                burst_every,
                burst_len,
            } => {
                let within = t.as_micros() % burst_every.as_micros();
                if within < burst_len.as_micros() {
                    base_per_min * burst_multiplier
                } else {
                    *base_per_min
                }
            }
            ArrivalProcess::Superpose(parts) => parts.iter().map(|p| p.rate_per_min_at(t)).sum(),
        }
    }

    /// An upper bound on `λ(t)` used as the thinning envelope.
    #[must_use]
    pub fn peak_rate_per_min(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_per_min } => *rate_per_min,
            ArrivalProcess::Diurnal {
                mean_per_min,
                amplitude_per_min,
                ..
            } => mean_per_min + amplitude_per_min,
            ArrivalProcess::Bursty {
                base_per_min,
                burst_multiplier,
                ..
            } => base_per_min * burst_multiplier.max(1.0),
            ArrivalProcess::Superpose(parts) => {
                parts.iter().map(ArrivalProcess::peak_rate_per_min).sum()
            }
        }
    }

    /// Validates rates and windows.
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` for non-positive/non-finite rates, an
    /// amplitude exceeding the mean, degenerate burst windows, or an empty
    /// superposition.
    pub fn validate(&self) -> Result<()> {
        use SimdcError::InvalidConfig;
        let finite_positive = |v: f64, what: &str| -> Result<()> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(InvalidConfig(format!("{what} must be positive, got {v}")))
            }
        };
        match self {
            ArrivalProcess::Poisson { rate_per_min } => {
                finite_positive(*rate_per_min, "poisson rate")
            }
            ArrivalProcess::Diurnal {
                mean_per_min,
                amplitude_per_min,
                period,
            } => {
                finite_positive(*mean_per_min, "diurnal mean rate")?;
                if !amplitude_per_min.is_finite() || *amplitude_per_min < 0.0 {
                    return Err(InvalidConfig(format!(
                        "diurnal amplitude must be non-negative, got {amplitude_per_min}"
                    )));
                }
                if amplitude_per_min > mean_per_min {
                    return Err(InvalidConfig(format!(
                        "diurnal amplitude ({amplitude_per_min}) exceeds mean ({mean_per_min})"
                    )));
                }
                if period.is_zero() {
                    return Err(InvalidConfig("diurnal period must be positive".into()));
                }
                Ok(())
            }
            ArrivalProcess::Bursty {
                base_per_min,
                burst_multiplier,
                burst_every,
                burst_len,
            } => {
                finite_positive(*base_per_min, "bursty base rate")?;
                finite_positive(*burst_multiplier, "burst multiplier")?;
                if burst_every.is_zero() || burst_len.is_zero() || burst_len > burst_every {
                    return Err(InvalidConfig(
                        "burst window must satisfy 0 < burst_len <= burst_every".into(),
                    ));
                }
                Ok(())
            }
            ArrivalProcess::Superpose(parts) => {
                if parts.is_empty() {
                    return Err(InvalidConfig("superposition must not be empty".into()));
                }
                parts.iter().try_for_each(ArrivalProcess::validate)
            }
        }
    }

    /// Samples the arrival offsets (from the scenario start) within
    /// `[0, horizon)` using Lewis–Shedler thinning. Offsets come back
    /// strictly increasing.
    ///
    /// # Panics
    ///
    /// Panics if the process fails [`ArrivalProcess::validate`] — sampling
    /// an invalid process would spin forever or divide by zero.
    #[must_use]
    pub fn sample(&self, horizon: SimDuration, rng: &mut RngStream) -> Vec<SimDuration> {
        self.validate().expect("arrival process must be valid");
        let peak = self.peak_rate_per_min();
        let mut arrivals = Vec::new();
        let mut t_min = 0.0f64; // minutes since scenario start
        let horizon_min = horizon.as_mins_f64();
        loop {
            // Exponential(peak) inter-arrival for the envelope process.
            t_min += rng.exp(1.0 / peak);
            if t_min >= horizon_min {
                return arrivals;
            }
            let at = SimDuration::from_secs_f64(t_min * 60.0);
            if rng.uniform() * peak < self.rate_per_min_at(at) {
                arrivals.push(at);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mins(m: u64) -> SimDuration {
        SimDuration::from_mins(m)
    }

    #[test]
    fn poisson_rate_matches_empirical_count() {
        let p = ArrivalProcess::Poisson { rate_per_min: 2.0 };
        let mut rng = RngStream::named(7, "arrivals");
        let arrivals = p.sample(mins(1_000), &mut rng);
        let per_min = arrivals.len() as f64 / 1_000.0;
        assert!((per_min - 2.0).abs() < 0.15, "empirical rate {per_min}");
    }

    #[test]
    fn arrivals_are_strictly_increasing_and_within_horizon() {
        let p = ArrivalProcess::Poisson { rate_per_min: 5.0 };
        let mut rng = RngStream::named(3, "arrivals");
        let horizon = mins(60);
        let arrivals = p.sample(horizon, &mut rng);
        for pair in arrivals.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        assert!(arrivals.iter().all(|&a| a < horizon));
    }

    #[test]
    fn same_seed_reproduces_different_seed_diverges() {
        let p = ArrivalProcess::Diurnal {
            mean_per_min: 1.0,
            amplitude_per_min: 0.8,
            period: mins(30),
        };
        let run = |seed| p.sample(mins(120), &mut RngStream::named(seed, "arrivals"));
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn diurnal_rate_oscillates_and_never_goes_negative() {
        let p = ArrivalProcess::Diurnal {
            mean_per_min: 1.0,
            amplitude_per_min: 1.0,
            period: mins(40),
        };
        let quarter = mins(10); // sin peak
        let three_quarters = mins(30); // sin trough
        assert!((p.rate_per_min_at(quarter) - 2.0).abs() < 1e-9);
        assert!(p.rate_per_min_at(three_quarters).abs() < 1e-9);
        assert!((p.rate_per_min_at(SimDuration::ZERO) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bursty_rate_spikes_inside_window() {
        let p = ArrivalProcess::Bursty {
            base_per_min: 0.5,
            burst_multiplier: 10.0,
            burst_every: mins(20),
            burst_len: mins(2),
        };
        assert!((p.rate_per_min_at(SimDuration::from_mins(1)) - 5.0).abs() < 1e-9);
        assert!((p.rate_per_min_at(SimDuration::from_mins(10)) - 0.5).abs() < 1e-9);
        // Window recurs.
        assert!((p.rate_per_min_at(SimDuration::from_mins(21)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn superposition_adds_rates() {
        let p = ArrivalProcess::Superpose(vec![
            ArrivalProcess::Poisson { rate_per_min: 1.0 },
            ArrivalProcess::Poisson { rate_per_min: 2.5 },
        ]);
        assert!((p.rate_per_min_at(SimDuration::ZERO) - 3.5).abs() < 1e-9);
        assert!((p.peak_rate_per_min() - 3.5).abs() < 1e-9);
        let mut rng = RngStream::named(5, "arrivals");
        let arrivals = p.sample(mins(500), &mut rng);
        let per_min = arrivals.len() as f64 / 500.0;
        assert!((per_min - 3.5).abs() < 0.25, "empirical rate {per_min}");
    }

    #[test]
    fn validation_rejects_bad_processes() {
        assert!(ArrivalProcess::Poisson { rate_per_min: 0.0 }
            .validate()
            .is_err());
        assert!(ArrivalProcess::Poisson {
            rate_per_min: f64::NAN
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Diurnal {
            mean_per_min: 1.0,
            amplitude_per_min: 2.0,
            period: mins(10),
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Bursty {
            base_per_min: 1.0,
            burst_multiplier: 2.0,
            burst_every: mins(1),
            burst_len: mins(5),
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Superpose(vec![]).validate().is_err());
        // Nested validation propagates.
        assert!(
            ArrivalProcess::Superpose(vec![ArrivalProcess::Poisson { rate_per_min: -1.0 }])
                .validate()
                .is_err()
        );
    }

    #[test]
    fn serde_round_trip() {
        let p = ArrivalProcess::Superpose(vec![
            ArrivalProcess::Poisson { rate_per_min: 1.0 },
            ArrivalProcess::Bursty {
                base_per_min: 0.2,
                burst_multiplier: 6.0,
                burst_every: mins(15),
                burst_len: mins(2),
            },
        ]);
        let json = serde_json::to_string(&p).unwrap();
        let back: ArrivalProcess = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
