//! Pre-sampled workload → [`SubmissionSource`] adapter.
//!
//! [`SampledSource`] turns an [`ArrivalProcess`] + [`TaskTemplate`] pair
//! into the submission stream [`simdc_core::Platform::run_from_source`]
//! drains: every arrival instant and task spec is sampled up front from
//! one seed, so the stream is deterministic and its pacing (non-decreasing
//! instants) is guaranteed by construction. With the event-driven platform
//! core, feeding a `SampledSource` to `run_from_source` admits each
//! arrival at the first completion instant that frees its claim — no
//! dispatch-interval quantization at all.

use std::sync::Arc;

use simdc_core::{SubmissionSource, TaskSpec};
use simdc_data::CtrDataset;
use simdc_simrt::RngStream;
use simdc_types::{SimDuration, SimInstant, TaskId};

use crate::arrival::ArrivalProcess;
use crate::template::TaskTemplate;

/// A deterministic, pre-sampled submission stream.
pub struct SampledSource {
    items: std::vec::IntoIter<(SimInstant, TaskSpec, Arc<CtrDataset>)>,
    total: usize,
}

impl SampledSource {
    /// Samples the full stream from `seed`: arrival offsets in
    /// `[0, horizon)` from `arrivals`, one spec per arrival from
    /// `template` (task ids `1..`), every task sharing `dataset`.
    #[must_use]
    pub fn sample(
        arrivals: &ArrivalProcess,
        template: &TaskTemplate,
        horizon: SimDuration,
        dataset: &Arc<CtrDataset>,
        seed: u64,
    ) -> Self {
        let mut rng = RngStream::named(seed, "workload/source");
        let offsets = arrivals.sample(horizon, &mut rng.fork("arrivals"));
        let mut template_rng = rng.fork("templates");
        let items: Vec<(SimInstant, TaskSpec, Arc<CtrDataset>)> = offsets
            .iter()
            .enumerate()
            .map(|(i, offset)| {
                (
                    SimInstant::EPOCH + *offset,
                    template.instantiate(TaskId(i as u64 + 1), &mut template_rng),
                    Arc::clone(dataset),
                )
            })
            .collect();
        let total = items.len();
        SampledSource {
            items: items.into_iter(),
            total,
        }
    }

    /// Builds a source from an explicit schedule (must be sorted by
    /// instant; `run_from_source` panics on out-of-order arrivals).
    #[must_use]
    pub fn from_schedule(items: Vec<(SimInstant, TaskSpec, Arc<CtrDataset>)>) -> Self {
        let total = items.len();
        SampledSource {
            items: items.into_iter(),
            total,
        }
    }

    /// Total number of submissions sampled (drained or not).
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }
}

impl SubmissionSource for SampledSource {
    fn next_submission(&mut self) -> Option<(SimInstant, TaskSpec, Arc<CtrDataset>)> {
        self.items.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdc_core::{Platform, PlatformConfig};
    use simdc_data::GeneratorConfig;

    fn dataset() -> Arc<CtrDataset> {
        Arc::new(CtrDataset::generate(&GeneratorConfig {
            n_devices: 30,
            n_test_devices: 6,
            mean_records_per_device: 12.0,
            feature_dim: 1 << 12,
            seed: 21,
            ..GeneratorConfig::default()
        }))
    }

    fn small_template() -> TaskTemplate {
        TaskTemplate {
            rounds: (1, 2),
            devices_per_grade: (6, 10),
            ..TaskTemplate::default()
        }
    }

    #[test]
    fn sampled_arrivals_are_non_decreasing() {
        let mut source = SampledSource::sample(
            &ArrivalProcess::Poisson { rate_per_min: 2.0 },
            &small_template(),
            SimDuration::from_mins(10),
            &dataset(),
            11,
        );
        let mut last = SimInstant::EPOCH;
        let mut n = 0;
        while let Some((at, spec, _)) = source.next_submission() {
            assert!(at >= last, "arrivals must be paced forward");
            assert_eq!(spec.id, TaskId(n + 1), "ids follow arrival order");
            last = at;
            n += 1;
        }
        assert!(n > 0, "ten minutes at 2/min should produce arrivals");
        assert_eq!(n as usize, source.total());
    }

    #[test]
    fn same_seed_samples_the_same_stream() {
        let make = || {
            SampledSource::sample(
                &ArrivalProcess::Poisson { rate_per_min: 1.0 },
                &small_template(),
                SimDuration::from_mins(8),
                &dataset(),
                5,
            )
        };
        let (mut a, mut b) = (make(), make());
        loop {
            match (a.next_submission(), b.next_submission()) {
                (None, None) => break,
                (Some((ta, sa, _)), Some((tb, sb, _))) => {
                    assert_eq!(ta, tb);
                    assert_eq!(sa, sb);
                }
                other => panic!("streams diverged: {:?}", other.0.map(|x| x.0)),
            }
        }
    }

    #[test]
    fn platform_drains_a_sampled_source() {
        let data = dataset();
        let mut source = SampledSource::sample(
            &ArrivalProcess::Poisson { rate_per_min: 0.8 },
            &small_template(),
            SimDuration::from_mins(6),
            &data,
            9,
        );
        let total = source.total();
        let mut platform = Platform::new(PlatformConfig::default());
        let stats = platform.run_from_source(&mut source);
        assert_eq!(stats.submitted + stats.rejected, total);
        assert_eq!(stats.completed, stats.submitted);
    }
}
