//! Task templates: randomized but bounded [`TaskSpec`] generation.
//!
//! A template describes a *population* of tasks — ranges for rounds,
//! per-grade device counts and priorities plus a fixed resource-request
//! scheme per grade — and stamps out concrete specs from an [`RngStream`].
//! Same stream state ⇒ same spec, which is what keeps whole scenarios
//! seed-deterministic.

use serde::{Deserialize, Serialize};
use simdc_core::{AggregationTrigger, AllocationPolicy, GradeRequirement, TaskSpec};
use simdc_ml::TrainConfig;
use simdc_simrt::RngStream;
use simdc_types::{DeviceGrade, Result, SimDuration, SimdcError, TaskId};

/// Per-grade resource-request scheme (the paper's `f`, `k`, `m` knobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GradeScheme {
    /// Unit bundles requested in Logical Simulation (`f`).
    pub unit_bundles: u64,
    /// Unit bundles per simulated device (`k`).
    pub units_per_device: u64,
    /// Computation phones requested (`m`).
    pub phones: u64,
}

impl GradeScheme {
    /// The default High-grade scheme (mirrors the §VI-B experiments at a
    /// size that lets two tasks run concurrently on the paper platform).
    #[must_use]
    pub fn high_default() -> Self {
        GradeScheme {
            unit_bundles: 48,
            units_per_device: 8,
            phones: 4,
        }
    }

    /// The default Low-grade scheme.
    #[must_use]
    pub fn low_default() -> Self {
        GradeScheme {
            unit_bundles: 24,
            units_per_device: 2,
            phones: 3,
        }
    }
}

/// A generator of task specifications.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskTemplate {
    /// Inclusive range of federated rounds per task.
    pub rounds: (u32, u32),
    /// Inclusive range of simulated devices per participating grade.
    pub devices_per_grade: (u64, u64),
    /// Priorities are drawn uniformly from `0..priority_levels`.
    pub priority_levels: u32,
    /// Benchmark phones requested per participating grade.
    pub benchmark_phones: u64,
    /// Probability that a task spans both grades (otherwise one grade is
    /// picked uniformly).
    pub both_grades_prob: f64,
    /// Resource scheme for High-grade participation.
    pub high: GradeScheme,
    /// Resource scheme for Low-grade participation.
    pub low: GradeScheme,
    /// Per-round timeout stamped on every generated spec.
    pub round_timeout: SimDuration,
    /// Hybrid allocation policy stamped on every generated spec
    /// (`Optimized` routes small tasks fully logical; a fixed fraction
    /// forces phone-cluster participation, which is what lets fleet
    /// perturbations bite).
    pub allocation: AllocationPolicy,
}

impl Default for TaskTemplate {
    fn default() -> Self {
        TaskTemplate {
            rounds: (1, 3),
            devices_per_grade: (8, 24),
            priority_levels: 10,
            benchmark_phones: 0,
            both_grades_prob: 0.5,
            high: GradeScheme::high_default(),
            low: GradeScheme::low_default(),
            round_timeout: SimDuration::from_mins(240),
            allocation: AllocationPolicy::Optimized,
        }
    }
}

impl TaskTemplate {
    /// Validates the template's ranges.
    ///
    /// # Errors
    ///
    /// Returns `InvalidConfig` for inverted ranges, zero rounds/devices,
    /// zero priority levels or a probability outside `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        use SimdcError::InvalidConfig;
        if self.rounds.0 == 0 || self.rounds.0 > self.rounds.1 {
            return Err(InvalidConfig(format!(
                "rounds range must satisfy 1 <= lo <= hi, got {:?}",
                self.rounds
            )));
        }
        if self.devices_per_grade.0 == 0 || self.devices_per_grade.0 > self.devices_per_grade.1 {
            return Err(InvalidConfig(format!(
                "device range must satisfy 1 <= lo <= hi, got {:?}",
                self.devices_per_grade
            )));
        }
        if self.priority_levels == 0 {
            return Err(InvalidConfig("priority_levels must be > 0".into()));
        }
        if !(0.0..=1.0).contains(&self.both_grades_prob) {
            return Err(InvalidConfig(format!(
                "both_grades_prob must be in [0, 1], got {}",
                self.both_grades_prob
            )));
        }
        if self.high.units_per_device == 0 || self.low.units_per_device == 0 {
            return Err(InvalidConfig("units_per_device (k) must be > 0".into()));
        }
        if self.round_timeout.is_zero() {
            return Err(InvalidConfig("round_timeout must be positive".into()));
        }
        self.allocation.validate()
    }

    /// Stamps out one concrete spec for `id`.
    ///
    /// # Panics
    ///
    /// Panics if the template fails [`TaskTemplate::validate`] (generated
    /// specs from a valid template always pass [`TaskSpec::validate`]).
    #[must_use]
    pub fn instantiate(&self, id: TaskId, rng: &mut RngStream) -> TaskSpec {
        self.validate().expect("task template must be valid");
        let draw =
            |rng: &mut RngStream, lo: u64, hi: u64| lo + rng.index((hi - lo + 1) as usize) as u64;
        let rounds = draw(rng, u64::from(self.rounds.0), u64::from(self.rounds.1)) as u32;
        let priority = rng.index(self.priority_levels as usize) as u32;
        let grades: Vec<DeviceGrade> = if rng.chance(self.both_grades_prob) {
            vec![DeviceGrade::High, DeviceGrade::Low]
        } else if rng.chance(0.5) {
            vec![DeviceGrade::High]
        } else {
            vec![DeviceGrade::Low]
        };

        let mut builder = TaskSpec::builder(id);
        builder
            .priority(priority)
            .rounds(rounds)
            .round_timeout(self.round_timeout)
            .allocation(self.allocation)
            .train(TrainConfig {
                learning_rate: 0.3,
                epochs: 3,
            })
            .seed(rand::RngCore::next_u64(rng));
        let mut total_devices = 0u64;
        for grade in &grades {
            let n = draw(rng, self.devices_per_grade.0, self.devices_per_grade.1);
            total_devices += n;
            let scheme = match grade {
                DeviceGrade::High => self.high,
                DeviceGrade::Low => self.low,
            };
            builder.grade(GradeRequirement {
                grade: *grade,
                total_devices: n,
                benchmark_phones: self.benchmark_phones.min(n),
                logical_unit_bundles: scheme.unit_bundles,
                units_per_device: scheme.units_per_device,
                phones: scheme.phones,
            });
        }
        builder.trigger(AggregationTrigger::DeviceThreshold {
            min_devices: total_devices,
        });
        builder.build().expect("template-generated spec is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_specs_are_valid_and_in_range() {
        let template = TaskTemplate::default();
        let mut rng = RngStream::named(11, "template");
        for i in 0..50u64 {
            let spec = template.instantiate(TaskId(i), &mut rng);
            assert!(spec.validate().is_ok());
            assert!((1..=3).contains(&spec.rounds));
            assert!(spec.priority < 10);
            assert!(!spec.grades.is_empty() && spec.grades.len() <= 2);
            for g in &spec.grades {
                assert!((8..=24).contains(&g.total_devices));
            }
        }
    }

    #[test]
    fn instantiation_is_deterministic_per_stream_state() {
        let template = TaskTemplate::default();
        let mut a = RngStream::named(4, "template");
        let mut b = RngStream::named(4, "template");
        for i in 0..10u64 {
            assert_eq!(
                template.instantiate(TaskId(i), &mut a),
                template.instantiate(TaskId(i), &mut b)
            );
        }
        let mut c = RngStream::named(5, "template");
        let differs = (0..10u64).any(|i| {
            template.instantiate(TaskId(i), &mut c)
                != template.instantiate(TaskId(i), &mut RngStream::named(4, "template"))
        });
        assert!(differs, "different seeds should generate different specs");
    }

    #[test]
    fn single_grade_template_stays_single() {
        let template = TaskTemplate {
            both_grades_prob: 0.0,
            ..TaskTemplate::default()
        };
        let mut rng = RngStream::named(8, "template");
        for i in 0..20u64 {
            assert_eq!(template.instantiate(TaskId(i), &mut rng).grades.len(), 1);
        }
        let template = TaskTemplate {
            both_grades_prob: 1.0,
            ..TaskTemplate::default()
        };
        for i in 0..20u64 {
            assert_eq!(template.instantiate(TaskId(i), &mut rng).grades.len(), 2);
        }
    }

    #[test]
    fn benchmark_phones_clamped_to_devices() {
        let template = TaskTemplate {
            benchmark_phones: 100,
            devices_per_grade: (2, 4),
            ..TaskTemplate::default()
        };
        let mut rng = RngStream::named(9, "template");
        let spec = template.instantiate(TaskId(1), &mut rng);
        for g in &spec.grades {
            assert!(g.benchmark_phones <= g.total_devices);
        }
    }

    #[test]
    fn validation_rejects_bad_templates() {
        let bad_rounds = TaskTemplate {
            rounds: (0, 3),
            ..TaskTemplate::default()
        };
        assert!(bad_rounds.validate().is_err());
        let inverted = TaskTemplate {
            rounds: (3, 1),
            ..TaskTemplate::default()
        };
        assert!(inverted.validate().is_err());
        let no_devices = TaskTemplate {
            devices_per_grade: (0, 4),
            ..TaskTemplate::default()
        };
        assert!(no_devices.validate().is_err());
        let bad_prob = TaskTemplate {
            both_grades_prob: 1.5,
            ..TaskTemplate::default()
        };
        assert!(bad_prob.validate().is_err());
        let no_priorities = TaskTemplate {
            priority_levels: 0,
            ..TaskTemplate::default()
        };
        assert!(no_priorities.validate().is_err());
    }
}
