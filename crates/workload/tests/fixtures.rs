//! The scenario-fixture contract: all eight library scenarios live as
//! committed JSON specs under `fixtures/scenarios/` at the repository
//! root, and each fixture compiles to a run summary byte-identical to its
//! legacy Rust constructor (kept for one release as the oracle).
//!
//! Regenerate after an intentional schema or library change with
//! `SIMDC_WRITE_FIXTURES=1 cargo test -p simdc-workload --test fixtures`
//! — the sync test then fails until the rewritten fixtures are committed,
//! so drift is always a reviewed diff.

use std::path::PathBuf;
use std::sync::Arc;

use simdc_data::{CtrDataset, GeneratorConfig};
use simdc_phone::FleetSpec;
use simdc_workload::{library, ScenarioSpec};

/// The seed every fixture carries (the workspace's default platform
/// seed); tests that want another seed override the field after loading.
const FIXTURE_SEED: u64 = 0x51AD_C0DE;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../fixtures/scenarios")
}

fn fixture_path(name: &str) -> PathBuf {
    fixture_dir().join(format!("{name}.json"))
}

fn canonical_fixture(scenario: &simdc_workload::Scenario) -> (PathBuf, String) {
    let spec = ScenarioSpec::from_scenario(scenario, FleetSpec::paper_default(), FIXTURE_SEED, 1);
    let mut json = spec.to_json_string_pretty();
    json.push('\n');
    (fixture_path(&scenario.name), json)
}

fn dataset() -> Arc<CtrDataset> {
    Arc::new(CtrDataset::generate(&GeneratorConfig {
        n_devices: 40,
        n_test_devices: 8,
        mean_records_per_device: 15.0,
        feature_dim: 1 << 12,
        seed: 55,
        ..GeneratorConfig::default()
    }))
}

/// Every committed fixture is byte-identical to the canonical
/// serialization of its legacy constructor — the JSON schema (field
/// names, order, value encoding) cannot drift without a reviewed diff.
#[test]
fn fixtures_stay_in_sync_with_the_legacy_constructors() {
    let write = std::env::var_os("SIMDC_WRITE_FIXTURES").is_some();
    for scenario in library() {
        let (path, expected) = canonical_fixture(&scenario);
        if write {
            std::fs::write(&path, &expected).expect("write fixture");
        }
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
        assert_eq!(
            committed,
            expected,
            "fixture {} drifted from the legacy constructor; regenerate with \
             SIMDC_WRITE_FIXTURES=1 and review the diff",
            path.display()
        );
    }
}

/// Each fixture loads through the strict loader, validates, and compiles
/// to exactly the scenario the legacy constructor builds.
#[test]
fn fixtures_compile_to_the_legacy_scenarios() {
    let scenarios = library();
    assert_eq!(scenarios.len(), 8, "fixture set tracks the library");
    for scenario in &scenarios {
        let text = std::fs::read_to_string(fixture_path(&scenario.name)).expect("fixture exists");
        let spec = ScenarioSpec::from_json_str(&text).expect("fixture loads cleanly");
        let compiled = spec.compile().expect("fixture compiles");
        assert_eq!(
            compiled.scenario, *scenario,
            "compiled {} diverges from its constructor",
            scenario.name
        );
        assert_eq!(compiled.config.seed, FIXTURE_SEED);
        assert_eq!(compiled.config.fleet, FleetSpec::paper_default());
    }
}

/// The byte-identity oracle: running a fixture-compiled scenario produces
/// summary JSON byte-identical to running the legacy constructor with the
/// same platform knobs. (Both sides shrink their horizon the same way to
/// keep the test fast; the compiler is horizon-agnostic.)
#[test]
fn fixture_runs_are_byte_identical_to_constructor_runs() {
    let data = dataset();
    for scenario in library() {
        let text = std::fs::read_to_string(fixture_path(&scenario.name)).expect("fixture exists");
        let spec = ScenarioSpec::from_json_str(&text).expect("fixture loads cleanly");
        let compiled = spec.with_horizon_scale(0.25).compile().unwrap();
        let from_fixture = compiled.run(&data);

        let legacy = scenario.scaled(0.25).run(
            simdc_core::PlatformConfig {
                fleet: FleetSpec::paper_default(),
                seed: FIXTURE_SEED,
                threads: 1,
                ..simdc_core::PlatformConfig::default()
            },
            &data,
            FIXTURE_SEED,
        );
        assert_eq!(
            serde_json::to_string(&from_fixture).unwrap(),
            serde_json::to_string(&legacy).unwrap(),
            "fixture-compiled {} diverged from the legacy constructor run",
            from_fixture.scenario
        );
    }
}
