//! Table-driven contract test for [`ScenarioSpec::from_json_str`]
//! rejection: every malformed or invalid document surfaces as a typed
//! error with a pinned `Display` message — never a panic. The messages
//! are part of the public surface (CI logs, sweep tooling) and changing
//! one is a reviewed diff here.

use simdc_workload::ScenarioSpec;

fn steady() -> String {
    std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../fixtures/scenarios/steady_poisson.json"
    ))
    .expect("steady_poisson fixture")
}

fn diurnal() -> String {
    std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../fixtures/scenarios/diurnal_cycle.json"
    ))
    .expect("diurnal_cycle fixture")
}

fn budget_capped() -> String {
    std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../fixtures/scenarios/budget_capped.json"
    ))
    .expect("budget_capped fixture")
}

/// Patches `from -> to` exactly once; panics if the needle is missing so
/// a fixture edit cannot silently turn a case into a no-op.
fn patch(text: &str, from: &str, to: &str) -> String {
    assert!(text.contains(from), "patch needle `{from}` not in fixture");
    text.replacen(from, to, 1)
}

#[test]
fn every_malformed_spec_yields_its_pinned_error() {
    let cases: Vec<(&str, String, &str)> = vec![
        (
            "malformed json",
            "{ not json".into(),
            "serialization error: json error: expected `\"` at byte 2",
        ),
        (
            "unknown arrival variant",
            patch(&steady(), "\"Poisson\"", "\"Pareto\""),
            "serialization error: serde error: field `arrivals`: serde error: \
             unknown variant `Pareto` of enum ArrivalProcess",
        ),
        (
            "negative poisson rate",
            patch(&steady(), "\"rate_per_min\": 0.7", "\"rate_per_min\": -1.0"),
            "invalid configuration: poisson rate must be positive, got -1",
        ),
        (
            "diurnal amplitude above mean",
            patch(&diurnal(), "\"mean_per_min\": 0.6", "\"mean_per_min\": 0.4"),
            "invalid configuration: diurnal amplitude (0.5) exceeds mean (0.4)",
        ),
        (
            "zero-phone fleet",
            patch(
                &steady(),
                "\"local\": {\n      \"high\": 4,\n      \"low\": 6\n    },\n    \
                 \"msp\": {\n      \"high\": 13,\n      \"low\": 7\n    }",
                "\"local\": {\n      \"high\": 0,\n      \"low\": 0\n    },\n    \
                 \"msp\": {\n      \"high\": 0,\n      \"low\": 0\n    }",
            ),
            "invalid configuration: fleet must contain at least one phone",
        ),
        (
            "negative autoscaler budget",
            patch(
                &budget_capped(),
                "\"max_hourly_cost\": 6",
                "\"max_hourly_cost\": -3",
            ),
            "invalid configuration: max_hourly_cost must be positive and finite, got -3",
        ),
        (
            "unknown top-level key",
            patch(
                &steady(),
                "{\n  \"name\"",
                "{\n  \"frequency\": 3,\n  \"name\"",
            ),
            "invalid configuration: unknown key `$.frequency` in scenario spec",
        ),
        (
            "unknown nested key",
            patch(
                &steady(),
                "\"template\": {\n    \"rounds\"",
                "\"template\": {\n    \"bogus\": true,\n    \"rounds\"",
            ),
            "invalid configuration: unknown key `$.template.bogus` in scenario spec",
        ),
        (
            "too many threads",
            patch(&steady(), "\"threads\": 1", "\"threads\": 65"),
            "invalid configuration: threads must be at most 64, got 65",
        ),
    ];
    for (label, text, expected) in cases {
        let err = ScenarioSpec::from_json_str(&text)
            .expect_err(&format!("case `{label}` should be rejected"));
        assert_eq!(err.to_string(), expected, "case `{label}`");
    }
}

/// The loader stays total on garbage: a sweep of truncations of a valid
/// fixture never panics — every prefix parses or errors cleanly.
#[test]
fn truncated_documents_error_instead_of_panicking() {
    let full = steady();
    for end in (0..full.len()).step_by(37) {
        let prefix = &full[..end];
        let _ = ScenarioSpec::from_json_str(prefix);
    }
    assert!(ScenarioSpec::from_json_str(&full).is_ok());
}
