//! Scenario fuzzer: samples bounded random [`ScenarioSpec`]s and asserts
//! the platform's invariant-oracle catalog (see ARCHITECTURE.md,
//! "Scenario DSL & invariant oracles") after every run:
//!
//! 1. freeze/release pairing — every bundle and phone is free again at
//!    idle, and no lease outlives the drain;
//! 2. capacity bounds — free never exceeds total (enforced continuously
//!    by debug asserts inside the event loop, so a violation aborts the
//!    run it happens in, not just the post-run check);
//! 3. no terminal-state clobber — completed/failed tasks are never
//!    transitioned again;
//! 4. billing reconciliation — reported cloud cost equals accumulated
//!    node-seconds times the hourly rate;
//! 5. thread-count invariance — `threads = 1` and `threads = 4` produce
//!    byte-identical summary JSON for the same spec.
//!
//! The generator is deterministic ([`TestRng::deterministic`]), so a
//! failure reproduces exactly; the companion shrinker test proves an
//! injected terminal-clobber fault is caught and minimized.

use std::sync::Arc;

use proptest::prelude::*;
use proptest::{BoxedStrategy, Just, TestRng};
use simdc_data::{CtrDataset, GeneratorConfig};
use simdc_phone::FleetSpec;
use simdc_types::{PerGrade, SimDuration};
use simdc_workload::{
    budget_capped, shrink, ArrivalProcess, FleetDynamics, ScenarioSpec, TaskTemplate,
};

/// Accepted random specs per fuzz run (the PR's floor is 64).
const CASES: usize = 64;

fn dataset() -> Arc<CtrDataset> {
    Arc::new(CtrDataset::generate(&GeneratorConfig {
        n_devices: 40,
        n_test_devices: 8,
        mean_records_per_device: 15.0,
        feature_dim: 1 << 12,
        seed: 55,
        ..GeneratorConfig::default()
    }))
}

/// Depth-≤1 arrival trees with small rates, every variant reachable.
fn arrivals() -> BoxedStrategy<ArrivalProcess> {
    prop_oneof![
        (0.2f64..1.2).prop_map(|rate_per_min| ArrivalProcess::Poisson { rate_per_min }),
        ((0.4f64..1.0), (0.0f64..0.9), (2u64..5)).prop_map(|(mean, frac, mins)| {
            ArrivalProcess::Diurnal {
                mean_per_min: mean,
                amplitude_per_min: mean * frac,
                period: SimDuration::from_mins(mins),
            }
        }),
        ((0.2f64..0.8), (2.0f64..4.0)).prop_map(|(base_per_min, burst_multiplier)| {
            ArrivalProcess::Bursty {
                base_per_min,
                burst_multiplier,
                burst_every: SimDuration::from_mins(3),
                burst_len: SimDuration::from_mins(1),
            }
        }),
        ((0.2f64..0.6), (0.2f64..0.6)).prop_map(|(a, b)| {
            ArrivalProcess::Superpose(vec![
                ArrivalProcess::Poisson { rate_per_min: a },
                ArrivalProcess::Poisson { rate_per_min: b },
            ])
        }),
    ]
    .boxed()
}

/// Mostly-default templates with small task shapes so every run is fast.
fn templates() -> BoxedStrategy<TaskTemplate> {
    ((1u32..3), (1u64..4), (2u64..7), (0.0f64..1.0))
        .prop_map(
            |(rounds_max, dev_high, dev_low, both_grades_prob)| TaskTemplate {
                rounds: (1, rounds_max),
                devices_per_grade: (dev_high, dev_low),
                both_grades_prob,
                ..TaskTemplate::default()
            },
        )
        .boxed()
}

/// Calm, churning or straggler-laced fleets.
fn fleet_dynamics() -> BoxedStrategy<FleetDynamics> {
    prop_oneof![
        Just(FleetDynamics::calm()),
        (2u64..5).prop_map(|mins| FleetDynamics {
            mean_time_between_crashes: Some(SimDuration::from_mins(mins)),
            ..FleetDynamics::calm()
        }),
        (0.1f64..0.4).prop_map(|straggler_frac| FleetDynamics {
            straggler_frac,
            straggler_slowdown: 1.5,
            ..FleetDynamics::calm()
        }),
    ]
    .boxed()
}

/// Bounded random specs: short horizons, small fleets, optionally the
/// budget-capped library cluster so the billing oracle sees real cost.
fn specs() -> BoxedStrategy<ScenarioSpec> {
    let cluster = prop_oneof![Just(None), Just(budget_capped().cluster),];
    (
        (2u64..5),
        arrivals(),
        templates(),
        fleet_dynamics(),
        cluster,
        ((1usize..4), (1usize..4), (1usize..4), (1usize..4)),
        (0u64..1_000_000),
    )
        .prop_map(
            |(
                horizon_mins,
                arrivals,
                template,
                fleet_dynamics,
                cluster,
                (lh, ll, mh, ml),
                seed,
            )| {
                ScenarioSpec {
                    name: "fuzz_case".into(),
                    description: "bounded random spec".into(),
                    horizon: SimDuration::from_mins(horizon_mins),
                    dispatch_interval: SimDuration::from_mins(1),
                    arrivals,
                    template,
                    fleet_dynamics,
                    cluster,
                    fleet: FleetSpec {
                        local: PerGrade::from_parts(lh, ll),
                        msp: PerGrade::from_parts(mh, ml),
                    },
                    seed,
                    threads: 1,
                }
            },
        )
        .boxed()
}

/// The fuzz loop: 64 accepted specs, all five oracles per spec.
#[test]
fn random_specs_uphold_every_platform_oracle() {
    let data = dataset();
    let strategy = specs();
    let mut rng = TestRng::deterministic();
    let mut accepted = 0usize;
    let mut draws = 0usize;
    while accepted < CASES {
        draws += 1;
        assert!(draws < CASES * 20, "generator rejects too often");
        let Some(spec) = strategy.generate(&mut rng) else {
            continue;
        };
        if spec.validate().is_err() {
            continue;
        }
        accepted += 1;

        let (summary, platform) = spec
            .compile()
            .expect("validated spec compiles")
            .run_detailed(&data);
        // Oracles 1–4 — lease pairing, capacity bounds, terminal
        // clobber, billing — over the drained platform.
        let violations = platform.invariant_violations();
        assert!(
            violations.is_empty(),
            "case {accepted} violated invariants: {violations:?}\nspec: {}",
            spec.to_json_string_pretty()
        );

        // Oracle 5: thread-count byte-invariance.
        let mut threaded = spec.clone();
        threaded.threads = 4;
        let summary4 = threaded.compile().unwrap().run(&data);
        assert_eq!(
            serde_json::to_string(&summary).unwrap(),
            serde_json::to_string(&summary4).unwrap(),
            "case {accepted}: threads=4 diverged from threads=1\nspec: {}",
            spec.to_json_string_pretty()
        );
    }
}

/// Fault-injection round trip: a deliberately injected terminal-state
/// clobber must (a) be caught by the oracle and (b) shrink to a minimal
/// spec that still reproduces it — proving the shrinker preserves the
/// failure while stripping every accidental feature of the original.
#[test]
fn injected_terminal_clobber_is_caught_and_shrunk() {
    let data = dataset();
    let fails = |spec: &ScenarioSpec| {
        let Ok(compiled) = spec.compile() else {
            return false;
        };
        let (_, mut platform) = compiled.run_detailed(&data);
        platform.inject_terminal_clobber_fault();
        platform
            .invariant_violations()
            .iter()
            .any(|v| matches!(v, simdc_core::InvariantViolation::TerminalClobber { .. }))
    };

    // A deliberately over-featured starting point: cloud tier, a
    // superposed bursty arrival tree, churn, stragglers, two worker
    // threads — everything the shrinker should strip. The base rates
    // stay high enough that every simplification still submits tasks,
    // so the clobber fault has terminal states to collide with.
    let mut original = ScenarioSpec::from_scenario(
        &simdc_workload::budget_capped(),
        FleetSpec::paper_default(),
        0xFA_17,
        2,
    );
    original.arrivals = ArrivalProcess::Superpose(vec![
        ArrivalProcess::Bursty {
            base_per_min: 3.0,
            burst_multiplier: 4.0,
            burst_every: SimDuration::from_mins(3),
            burst_len: SimDuration::from_mins(1),
        },
        ArrivalProcess::Poisson { rate_per_min: 1.0 },
    ]);
    original.fleet_dynamics = FleetDynamics {
        mean_time_between_crashes: Some(SimDuration::from_mins(4)),
        straggler_frac: 0.2,
        straggler_slowdown: 1.5,
        ..FleetDynamics::calm()
    };
    assert!(
        original.cluster.is_some(),
        "starting spec carries a cloud tier"
    );
    assert!(fails(&original), "fault injection must trip the oracle");

    let minimal = shrink(&original, fails);
    assert!(fails(&minimal), "shrinking must preserve the failure");
    assert!(
        matches!(minimal.arrivals, ArrivalProcess::Poisson { .. }),
        "bursty arrivals are incidental to the fault"
    );
    assert!(minimal.cluster.is_none(), "the cloud tier is incidental");
    assert_eq!(minimal.threads, 1, "thread count is incidental");
    assert_eq!(
        minimal.fleet_dynamics,
        FleetDynamics::calm(),
        "churn and stragglers are incidental"
    );
    assert!(
        minimal.horizon < original.horizon,
        "the shrinker tightens the horizon"
    );
    // The one thing shrinking must keep: at least one task reaching a
    // terminal state for the injected clobber to collide with.
    let (summary, _) = minimal.compile().unwrap().run_detailed(&data);
    assert!(summary.completed + summary.failed > 0);
}
