//! Cross-build byte-identity pins for the determinism-critical scenarios.
//!
//! The in-module scenario tests assert that *two runs in the same build*
//! agree byte for byte; this suite goes further and pins a digest of the
//! summary JSON, so a change that is internally consistent but alters the
//! bytes — e.g. swapping an ordered map for a hash map on a
//! determinism-relevant path, exactly what `simlint` rule D1 guards —
//! fails here even though both runs of the new build still match each
//! other.
//!
//! If a PR changes simulation behavior *on purpose*, update the pinned
//! digests below (the assertion message prints the observed value) and
//! say why in the PR description, the same contract as the golden
//! fixtures under `crates/bench/tests/golden/`.

use std::sync::Arc;

use simdc_core::PlatformConfig;
use simdc_data::{CtrDataset, GeneratorConfig};
use simdc_workload::{cloud_surge, mega_fleet};

/// FNV-1a 64-bit, dependency-free and stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn dataset() -> Arc<CtrDataset> {
    Arc::new(CtrDataset::generate(&GeneratorConfig {
        n_devices: 40,
        n_test_devices: 8,
        mean_records_per_device: 15.0,
        feature_dim: 1 << 12,
        seed: 55,
        ..GeneratorConfig::default()
    }))
}

#[test]
fn mega_fleet_summary_digest_is_pinned() {
    let scenario = mega_fleet().scaled(0.1);
    let config = PlatformConfig {
        fleet: simdc_phone::FleetSpec::scaled_paper(1_500),
        ..PlatformConfig::default()
    };
    let summary = scenario.run(config, &dataset(), 21);
    let json = serde_json::to_string(&summary).expect("summary serializes");
    assert_eq!(
        fnv1a(json.as_bytes()),
        MEGA_FLEET_DIGEST,
        "mega_fleet summary bytes changed; if intentional, re-pin the digest"
    );
}

#[test]
fn cloud_surge_summary_digest_is_pinned() {
    let scenario = cloud_surge();
    let summary = scenario.run(PlatformConfig::default(), &dataset(), 42);
    let json = serde_json::to_string(&summary).expect("summary serializes");
    assert_eq!(
        fnv1a(json.as_bytes()),
        CLOUD_SURGE_DIGEST,
        "cloud_surge summary bytes changed; if intentional, re-pin the digest"
    );
}

/// Pinned over the BTreeMap-converted (PR 6) platform state; stable since.
const MEGA_FLEET_DIGEST: u64 = 6_374_329_799_801_503_195;
/// Re-pinned when autoscaler reclaim started waking the platform: reclaim
/// wake events change `node_ready_events` counts (and downstream cost
/// accounting) on purpose. See the autoscaler's reclaimed-drain tests.
const CLOUD_SURGE_DIGEST: u64 = 3_823_498_095_159_712_412;
