//! Pins the `ScenarioSummary` JSON schema — field names, nesting and
//! declaration order — against a committed golden fixture, so sweep
//! artifacts stay diffable across PRs: a renamed, reordered or added
//! field fails here until `fixtures/scenarios/scenario_summary.schema.json`
//! is regenerated (`SIMDC_WRITE_FIXTURES=1`) and the diff reviewed.
//!
//! The fixture stores key *paths*, not values, so it never churns with
//! behavior changes — only with schema changes.

use std::path::PathBuf;

use serde::Serialize;
use serde_json::Value;
use simdc_workload::{CloudSample, CloudSummary, ScenarioSummary};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../fixtures/scenarios/scenario_summary.schema.json")
}

/// A fully populated summary: every `Vec` holds one element so nested
/// schemas (the cloud series) appear in the walk.
fn sample_summary() -> ScenarioSummary {
    ScenarioSummary {
        scenario: "schema_probe".into(),
        seed: 7,
        horizon_secs: 60.0,
        arrivals: 2,
        submitted: 2,
        rejected: 0,
        completed: 1,
        failed: 1,
        crashes: 0,
        reboots: 0,
        stragglers: 0,
        events: 9,
        makespan_secs: 61.5,
        mean_wait_secs: 0.5,
        max_wait_secs: 1.0,
        mean_run_secs: 30.0,
        mean_final_accuracy: 0.5,
        arrival_preview_secs: vec![1.25],
        cloud: CloudSummary {
            peak_nodes: 4,
            final_ready: 4,
            nodes_booted: 4,
            nodes_retired: 0,
            node_ready_events: 0,
            cost_total: 0.1,
            series: vec![CloudSample {
                t_secs: 60.0,
                nodes: 4,
                ready: 4,
                utilization: 0.25,
                cost: 0.1,
            }],
        },
    }
}

/// Collects every key path of the serialized document, in serialization
/// order — `cloud.series[].nodes` style. Order is part of the schema:
/// the vendored serde preserves declaration order, which is what keeps
/// same-seed artifacts byte-diffable.
fn key_paths(value: &Value, prefix: &str, out: &mut Vec<String>) {
    match value {
        Value::Object(fields) => {
            for (key, child) in fields {
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                out.push(path.clone());
                key_paths(child, &path, out);
            }
        }
        Value::Array(items) => {
            if let Some(first) = items.first() {
                key_paths(first, &format!("{prefix}[]"), out);
            }
        }
        _ => {}
    }
}

#[test]
fn scenario_summary_schema_matches_the_golden_fixture() {
    let mut paths = Vec::new();
    key_paths(&sample_summary().to_value(), "", &mut paths);
    let mut expected = serde_json::to_string_pretty(&paths).unwrap();
    expected.push('\n');

    let path = golden_path();
    if std::env::var_os("SIMDC_WRITE_FIXTURES").is_some() {
        std::fs::write(&path, &expected).expect("write schema golden");
    }
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("schema golden {} unreadable: {e}", path.display()));
    assert_eq!(
        committed, expected,
        "ScenarioSummary schema drifted; regenerate the golden with \
         SIMDC_WRITE_FIXTURES=1 and review the diff"
    );
}

#[test]
fn schema_walk_sees_the_load_bearing_fields() {
    let mut paths = Vec::new();
    key_paths(&sample_summary().to_value(), "", &mut paths);
    for expected in [
        "scenario",
        "seed",
        "cloud",
        "cloud.cost_total",
        "cloud.series[].utilization",
    ] {
        assert!(paths.iter().any(|p| p == expected), "missing {expected}");
    }
    // Declaration order is preserved: `scenario` leads, `cloud` trails.
    assert_eq!(paths.first().map(String::as_str), Some("scenario"));
    assert_eq!(
        paths.iter().position(|p| p == "cloud").unwrap(),
        paths.iter().position(|p| p == "seed").unwrap() + 17,
        "cloud block sits after the scalar block"
    );
}
