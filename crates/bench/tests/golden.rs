//! Golden-trace regression tests.
//!
//! `table1` and `fig5` run at `--quick` scale with the default seed and
//! their JSON results are byte-compared against fixtures committed under
//! `tests/golden/`. Any change to the simulation pipeline that silently
//! shifts experiment outputs — a reordered RNG draw, a tweaked profile
//! constant, a float reassociation — fails here instead of drifting into
//! the paper comparison unnoticed.
//!
//! When an output change is *intended*, regenerate the fixtures:
//!
//! ```sh
//! cargo run --release --bin table1 -- --quick --out crates/bench/tests/golden
//! cargo run --release --bin fig5   -- --quick --out crates/bench/tests/golden
//! mv crates/bench/tests/golden/table1.json crates/bench/tests/golden/table1_quick.json
//! mv crates/bench/tests/golden/fig5.json   crates/bench/tests/golden/fig5_quick.json
//! ```
//!
//! and call the drift out in the PR.
//!
//! Note on the event-driven platform core: rebuilding the platform loop
//! (completions as events, per-completion admission) left these fixtures
//! byte-identical on purpose. Both experiments submit a single task to an
//! idle platform, so admission still happens at the same clock instant,
//! and the runner's plan→commit split preserves the exact operation and
//! RNG-draw order of the old single-shot execution. Multi-task queueing
//! delays did change (they shrank — that was the point), but nothing
//! golden-pinned measures those.

use simdc_bench::ExpOptions;

fn golden_check(name: &str, fixture: &str, run: impl FnOnce(&ExpOptions)) {
    let out_dir = std::env::temp_dir().join(format!("simdc-golden-{name}-{}", std::process::id()));
    let opts = ExpOptions {
        quick: true,
        out_dir: out_dir.clone(),
        ..ExpOptions::default()
    };
    run(&opts);
    let produced = std::fs::read_to_string(out_dir.join(format!("{name}.json")))
        .unwrap_or_else(|e| panic!("{name} wrote no result: {e}"));
    std::fs::remove_dir_all(&out_dir).ok();
    assert_eq!(
        produced, fixture,
        "{name} --quick output drifted from tests/golden/{name}_quick.json; \
         if the change is intended, regenerate the fixture (see module docs)"
    );
}

#[test]
fn table1_quick_matches_golden_fixture() {
    golden_check("table1", include_str!("golden/table1_quick.json"), |opts| {
        simdc_bench::exp::table1::run(opts);
    });
}

#[test]
fn fig5_quick_matches_golden_fixture() {
    golden_check("fig5", include_str!("golden/fig5_quick.json"), |opts| {
        simdc_bench::exp::fig5::run(opts);
    });
}
