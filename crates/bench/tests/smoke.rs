//! Smoke test for the experiment registry.
//!
//! Runs every figure/table experiment in `exp::ALL` — the same slice the
//! `run_all` binary iterates — at the `--quick` scale (few devices, 1–2
//! rounds) so the registry cannot silently rot: a panic, a missing output
//! file or malformed JSON in any experiment fails `cargo test` long before
//! anyone re-renders the paper's evaluation.

use simdc_bench::{exp, ExpOptions};

#[test]
fn quick_registry_runs_and_writes_parseable_results() {
    let out_dir = std::env::temp_dir().join(format!("simdc-bench-smoke-{}", std::process::id()));
    let opts = ExpOptions {
        seed: 7,
        quick: true,
        out_dir: out_dir.clone(),
        // Keep the registry smoke cheap: the scale experiment runs at a
        // small (but still index-exercising) fleet.
        fleet: Some(1_000),
        ..ExpOptions::default()
    };

    assert!(
        !exp::ALL.is_empty(),
        "experiment registry must not be empty"
    );
    for (name, run) in exp::ALL {
        run(&opts);
        let path = out_dir.join(format!("{name}.json"));
        let content = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("experiment {name} wrote no result file: {e}"));
        serde_json::from_str::<serde_json::Value>(&content)
            .unwrap_or_else(|e| panic!("experiment {name} wrote malformed JSON: {e}"));
    }

    std::fs::remove_dir_all(&out_dir).ok();
}
