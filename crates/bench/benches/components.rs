//! Criterion micro-benchmarks of SimDC's performance-critical components:
//! the DES event loop, the allocation optimizer, the AUC discretizer,
//! DeviceFlow dispatch throughput, local training and ADB parsing.
//!
//! These benches establish that the platform itself scales (the §VI-B.4
//! "easily scalable" claim): simulating 100k devices must take wall-time
//! seconds, not hours.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use simdc_cluster::{ClusterConfig, CostModel, JobSpec, LogicalCluster};
use simdc_core::alloc::{optimize, GradeAllocParams};
use simdc_data::{CtrDataset, GeneratorConfig};
use simdc_deviceflow::{discretize, DeviceFlow, DispatchStrategy, FlowHarness, TrafficFunction};
use simdc_ml::{KernelKind, LocalTrainer, LrModel, TrainConfig};
use simdc_simrt::{Engine, EngineCtx, RngStream, World};
use simdc_types::{
    DeviceGrade, DeviceId, Message, MessageId, PerGrade, ResourceBundle, RoundId, SimDuration,
    SimInstant, StorageKey, TaskId,
};

fn des_event_loop(c: &mut Criterion) {
    struct Relay {
        remaining: u64,
    }
    impl World for Relay {
        type Event = ();
        fn handle(&mut self, ctx: &mut EngineCtx<'_, ()>, (): ()) {
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.schedule_in(SimDuration::from_micros(1), ());
            }
        }
    }
    let mut group = c.benchmark_group("des_event_loop");
    for &n in &[10_000u64, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut engine = Engine::new(Relay { remaining: n });
                engine.schedule_in(SimDuration::ZERO, ());
                engine.run()
            });
        });
    }
    group.finish();
}

fn allocation_optimizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc_optimize");
    for &n in &[1_000u64, 100_000, 10_000_000] {
        let params = [
            GradeAllocParams {
                total_devices: n,
                benchmark: 5,
                unit_bundles: 120,
                units_per_device: 8,
                phones: 12,
                alpha: SimDuration::from_secs(20),
                beta: SimDuration::from_secs_f64(16.2),
                lambda: SimDuration::from_secs(30),
            },
            GradeAllocParams {
                total_devices: n,
                benchmark: 5,
                unit_bundles: 80,
                units_per_device: 2,
                phones: 8,
                alpha: SimDuration::from_secs(26),
                beta: SimDuration::from_secs_f64(21.6),
                lambda: SimDuration::from_secs(45),
            },
        ];
        group.bench_with_input(BenchmarkId::from_parameter(n), &params, |b, params| {
            b.iter(|| optimize(params).unwrap());
        });
    }
    group.finish();
}

fn auc_discretizer(c: &mut Criterion) {
    let (function, domain) = TrafficFunction::right_tailed_normal(1.0);
    c.bench_function("discretize_10k_msgs", |b| {
        b.iter(|| discretize(&function, &domain, SimDuration::from_secs(60), 10_000, 700).unwrap());
    });
}

fn deviceflow_throughput(c: &mut Criterion) {
    let msg = |i: u64| {
        Message::model_update(
            MessageId(i),
            TaskId(1),
            DeviceId(i),
            RoundId(0),
            1,
            StorageKey::for_update(TaskId(1), RoundId(0), DeviceId(i)),
            SimInstant::EPOCH,
        )
    };
    c.bench_function("deviceflow_dispatch_10k", |b| {
        b.iter(|| {
            let mut flow = DeviceFlow::new();
            flow.register_task(TaskId(1), DispatchStrategy::immediate())
                .unwrap();
            let mut harness = FlowHarness::new(flow, RngStream::from_seed(1));
            harness.round_started(TaskId(1), RoundId(0));
            for i in 0..10_000 {
                harness.ingest_at(SimInstant::EPOCH, msg(i));
            }
            harness.run();
            harness.delivered_messages()
        });
    });
}

fn local_training(c: &mut Criterion) {
    let data = CtrDataset::generate(&GeneratorConfig {
        n_devices: 1,
        n_test_devices: 1,
        mean_records_per_device: 200.0,
        feature_dim: 1 << 16,
        seed: 1,
        ..GeneratorConfig::default()
    });
    let shard = &data.devices[0].data;
    let global = LrModel::zeros(data.feature_dim);
    let trainer = LocalTrainer::new(TrainConfig::default());
    let mut group = c.benchmark_group("local_train_200ex_10ep");
    for kernel in [KernelKind::Server, KernelKind::Mobile] {
        group.bench_function(format!("{kernel:?}"), |b| {
            b.iter(|| trainer.train(&global, shard, kernel));
        });
    }
    group.finish();
}

fn cluster_plan_100k(c: &mut Criterion) {
    c.bench_function("cluster_plan_100k_devices", |b| {
        b.iter(|| {
            let mut cluster = LogicalCluster::new(ClusterConfig {
                node_template: ResourceBundle::cores_gib(200, 300),
                initial_nodes: 1,
                max_nodes: 1,
                cost: CostModel {
                    jitter_frac: 0.0,
                    compute_per_device: PerGrade::new(SimDuration::from_secs(16)),
                    ..CostModel::default()
                },
                ..ClusterConfig::default()
            });
            let job = JobSpec {
                task: TaskId(1),
                round: RoundId(0),
                grade: DeviceGrade::High,
                devices: (0..100_000).map(DeviceId).collect(),
                unit_bundles: 200,
                units_per_device: 1,
                payload_mib: 4.0,
            };
            let mut rng = RngStream::from_seed(2);
            cluster.submit_job(&job, &mut rng).unwrap().makespan
        });
    });
}

fn adb_round_trip(c: &mut Criterion) {
    use simdc_phone::{PhoneMgr, RunPlan};
    use simdc_types::PhoneId;
    let mut mgr = PhoneMgr::paper_default(3);
    let plan = RunPlan::new(
        TaskId(1),
        PhoneId(0),
        SimInstant::EPOCH,
        &[SimDuration::from_secs(16)],
        &[],
    )
    .unwrap();
    mgr.submit_run(PhoneId(0), plan).unwrap();
    let t = SimInstant::EPOCH + SimDuration::from_secs(35);
    c.bench_function("phone_poll_full_battery", |b| {
        b.iter(|| mgr.poll(PhoneId(0), t).unwrap());
    });
}

criterion_group!(
    benches,
    des_event_loop,
    allocation_optimizer,
    auc_discretizer,
    deviceflow_throughput,
    local_training,
    cluster_plan_100k,
    adb_round_trip
);
criterion_main!(benches);
