//! Regenerates the paper's table1 (see `simdc_bench::exp::table1`).

fn main() {
    let opts = simdc_bench::ExpOptions::from_args();
    simdc_bench::exp::table1::run(&opts);
}
