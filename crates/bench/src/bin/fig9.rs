//! Regenerates the paper's fig9 (see `simdc_bench::exp::fig9`).

fn main() {
    let opts = simdc_bench::ExpOptions::from_args();
    simdc_bench::exp::fig9::run(&opts);
}
