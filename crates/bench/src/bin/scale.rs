//! Scale bench: the `mega_fleet` scenario over a 100k–1M-phone fleet,
//! swept over a worker-thread axis — reporting events/sec, the wall-clock
//! speedup curve and the host's CPU count (`BENCH_scale.json`), and
//! asserting the summaries stay byte-identical across thread counts.
//!
//! ```sh
//! cargo run --release -p simdc-bench --bin scale            # 100k phones
//! cargo run --release -p simdc-bench --bin scale -- --fleet 1000000 --threads 8
//! cargo run -p simdc-bench --bin scale -- --quick --fleet 500   # debug: parity armed
//! ```

use simdc_bench::ExpOptions;

fn main() {
    let opts = ExpOptions::from_args();
    simdc_bench::exp::scale::run(&opts);
}
