//! Scale bench: the `mega_fleet` scenario over a 100k–1M-phone fleet,
//! reporting events/sec and wall-clock throughput (`BENCH_scale.json`).
//!
//! ```sh
//! cargo run --release -p simdc-bench --bin scale            # 100k phones
//! cargo run --release -p simdc-bench --bin scale -- --fleet 1000000
//! cargo run -p simdc-bench --bin scale -- --quick --fleet 500   # debug: parity armed
//! ```

use simdc_bench::ExpOptions;

fn main() {
    let opts = ExpOptions::from_args();
    simdc_bench::exp::scale::run(&opts);
}
