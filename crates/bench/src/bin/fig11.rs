//! Regenerates the paper's fig11 (see `simdc_bench::exp::fig11`).

fn main() {
    let opts = simdc_bench::ExpOptions::from_args();
    simdc_bench::exp::fig11::run(&opts);
}
