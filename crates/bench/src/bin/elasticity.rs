//! Elasticity bench: autoscaled cloud tier under bursty logical-heavy
//! load (`BENCH_elasticity.json`).

fn main() {
    let opts = simdc_bench::ExpOptions::from_args();
    simdc_bench::exp::elasticity::run(&opts);
}
