//! Runs the workload scenario suite (see `exp::scenarios`).
//!
//! `results/scenarios.json` holds one summary per scenario; two runs with
//! the same `--seed` are byte-identical, which CI checks with a plain
//! `diff`.

fn main() {
    let opts = simdc_bench::ExpOptions::from_args();
    simdc_bench::exp::scenarios::run(&opts);
}
