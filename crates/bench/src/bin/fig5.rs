//! Regenerates the paper's fig5 (see `simdc_bench::exp::fig5`).

fn main() {
    let opts = simdc_bench::ExpOptions::from_args();
    simdc_bench::exp::fig5::run(&opts);
}
