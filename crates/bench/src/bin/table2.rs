//! Regenerates the paper's table2 (see `simdc_bench::exp::table2`).

fn main() {
    let opts = simdc_bench::ExpOptions::from_args();
    simdc_bench::exp::table2::run(&opts);
}
