//! Regenerates the paper's fig10 (see `simdc_bench::exp::fig10`).

fn main() {
    let opts = simdc_bench::ExpOptions::from_args();
    simdc_bench::exp::fig10::run(&opts);
}
