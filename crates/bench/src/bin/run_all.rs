//! Regenerates every table and figure of the paper's evaluation in one go.
//!
//! Results land in `results/*.json`; the printed tables mirror the paper's
//! layout. Pass `--quick` for a fast smoke profile.

fn main() {
    let opts = simdc_bench::ExpOptions::from_args();
    println!(
        "=== SimDC experiment suite (seed {}, quick: {}) ===\n",
        opts.seed, opts.quick
    );
    simdc_bench::exp::table1::run(&opts);
    simdc_bench::exp::fig5::run(&opts);
    simdc_bench::exp::fig6::run(&opts);
    simdc_bench::exp::fig7::run(&opts);
    simdc_bench::exp::fig8::run(&opts);
    simdc_bench::exp::fig9::run(&opts);
    simdc_bench::exp::fig10::run(&opts);
    simdc_bench::exp::table2::run(&opts);
    simdc_bench::exp::fig11::run(&opts);
    println!("\nAll results written to {}/", opts.out_dir.display());
}
