//! Regenerates every table and figure of the paper's evaluation in one go.
//!
//! Results land in `results/*.json`; the printed tables mirror the paper's
//! layout. Pass `--quick` for a fast smoke profile.

fn main() {
    let opts = simdc_bench::ExpOptions::from_args();
    println!(
        "=== SimDC experiment suite (seed {}, quick: {}) ===\n",
        opts.seed, opts.quick
    );
    for (_, run) in simdc_bench::exp::ALL {
        run(&opts);
    }
    println!("\nAll results written to {}/", opts.out_dir.display());
}
