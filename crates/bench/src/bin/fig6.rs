//! Regenerates the paper's fig6 (see `simdc_bench::exp::fig6`).

fn main() {
    let opts = simdc_bench::ExpOptions::from_args();
    simdc_bench::exp::fig6::run(&opts);
}
