//! Regenerates the paper's fig8 (see `simdc_bench::exp::fig8`).

fn main() {
    let opts = simdc_bench::ExpOptions::from_args();
    simdc_bench::exp::fig8::run(&opts);
}
