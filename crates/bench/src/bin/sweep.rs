//! Runs the scenario parameter sweep (see `exp::sweep`).
//!
//! Writes one `results/SWEEP_<cell>.json` per grid cell plus the
//! aggregate `results/BENCH_sweep.json` manifest; two runs with the same
//! `--seed` are byte-identical, which CI checks with a plain `diff -r`.

fn main() {
    let opts = simdc_bench::ExpOptions::from_args();
    simdc_bench::exp::sweep::run(&opts);
}
