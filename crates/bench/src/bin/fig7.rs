//! Regenerates the paper's fig7 (see `simdc_bench::exp::fig7`).

fn main() {
    let opts = simdc_bench::ExpOptions::from_args();
    simdc_bench::exp::fig7::run(&opts);
}
