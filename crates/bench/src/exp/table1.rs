//! Table I — physical performance metrics measured during simulation.
//!
//! Simulates 500 High + 500 Low devices with 5 benchmarking phones per
//! grade and reports the benchmark phones' per-stage power (mAh), duration
//! (min) and communication (KB) for the initial training round, exactly
//! like the paper's Table I.

use std::sync::Arc;

use serde::Serialize;
use simdc_core::{Platform, PlatformConfig, RunnerConfig};
use simdc_phone::Stage;
use simdc_types::{DeviceGrade, TaskId};

use crate::{f, render_table, ExpOptions};

/// One aggregated Table-I row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Device grade.
    pub grade: String,
    /// Stage number (1-5).
    pub stage: usize,
    /// Stage label.
    pub label: String,
    /// Mean power across benchmark phones, mAh.
    pub power_mah: f64,
    /// Mean duration, minutes.
    pub duration_min: f64,
    /// Mean communication, KB (training stage only, like the paper).
    pub comm_kb: Option<f64>,
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics if the platform rejects the standard spec (a bug, not an input
/// error).
pub fn run(opts: &ExpOptions) -> Vec<Row> {
    let n_per_grade = if opts.quick { 60 } else { 500 };
    let data = Arc::new(super::standard_dataset(200, opts.seed));
    let mut platform = Platform::new(PlatformConfig {
        runner: RunnerConfig {
            measure_benchmarks: true,
            ..RunnerConfig::default()
        },
        seed: opts.seed,
        ..PlatformConfig::default()
    });
    let spec = super::two_grade_spec(1, n_per_grade, 5);
    platform.submit(spec, data).expect("submit table1 task");
    platform.run_until_idle();
    let report = platform.report(TaskId(1)).expect("task completed");

    let order = [
        Stage::NoApk,
        Stage::ApkLaunch,
        Stage::Training,
        Stage::PostTraining,
        Stage::ApkClosed,
    ];
    let mut rows = Vec::new();
    for grade in DeviceGrade::ALL {
        let reports: Vec<_> = report
            .benchmark_reports
            .iter()
            .filter(|r| r.grade == grade)
            .collect();
        assert!(!reports.is_empty(), "benchmark phones measured for {grade}");
        for (i, stage) in order.iter().enumerate() {
            let metrics: Vec<_> = reports.iter().filter_map(|r| r.stage(*stage)).collect();
            if metrics.is_empty() {
                continue;
            }
            let n = metrics.len() as f64;
            let power = metrics.iter().map(|m| m.power_mah).sum::<f64>() / n;
            let duration = metrics.iter().map(|m| m.duration_min).sum::<f64>() / n;
            let comm = metrics.iter().map(|m| m.comm_kb).sum::<f64>() / n;
            rows.push(Row {
                grade: grade.to_string(),
                stage: i + 1,
                label: stage.label().to_owned(),
                power_mah: power,
                duration_min: duration,
                comm_kb: (*stage == Stage::Training).then_some(comm),
            });
        }
    }

    let table = render_table(
        &[
            "Grade",
            "Stage",
            "Power (mAh)",
            "Duration (min)",
            "Commu (KB)",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.grade.clone(),
                    format!("{} {}", r.stage, r.label),
                    f(r.power_mah, 2),
                    f(r.duration_min, 2),
                    r.comm_kb.map_or(String::new(), |c| f(c, 2)),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("Table I — measurement of physical performance metrics during simulation\n{table}");
    opts.write_json("table1", &rows);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_table1_shape() {
        let opts = ExpOptions {
            quick: true,
            out_dir: std::env::temp_dir().join("simdc-table1-test"),
            ..ExpOptions::default()
        };
        let rows = run(&opts);
        assert_eq!(rows.len(), 10, "5 stages × 2 grades");
        // High consumes less power than Low in every stage.
        for i in 0..5 {
            assert!(
                rows[i].power_mah < rows[i + 5].power_mah,
                "stage {}: High {} vs Low {}",
                i + 1,
                rows[i].power_mah,
                rows[i + 5].power_mah
            );
        }
        // Training durations track β (0.27 vs 0.36 min).
        assert!((rows[2].duration_min - 0.27).abs() < 0.03);
        assert!((rows[7].duration_min - 0.36).abs() < 0.03);
        // Communication ≈ 33.1 KB in the training stage.
        assert!((rows[2].comm_kb.unwrap() - 33.1).abs() < 3.0);
        std::fs::remove_dir_all(&opts.out_dir).ok();
    }
}
