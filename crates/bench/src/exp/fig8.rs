//! Fig 8 — scalability of popular simulators: single-round time of SimDC
//! vs FedScale-like and FederatedScope-like baselines, 100 → 100,000
//! devices on a 200-core cluster.
//!
//! The paper's shape: below ~1,000 devices SimDC is *slower* (its actors
//! pay placement-group setup and per-round data/model downloads, and
//! results flow through shared storage and cloud messaging — the realism
//! overhead); at ≥10,000 devices SimDC and FederatedScope converge, while
//! FedScale stays fastest because it skips device-cloud communication
//! entirely.

use serde::Serialize;
use simdc_baselines::{BaselineSimulator, FedScaleSim, FederatedScopeSim};
use simdc_cluster::{ClusterConfig, CostModel, JobSpec, LogicalCluster};
use simdc_simrt::RngStream;
use simdc_types::{DeviceGrade, DeviceId, PerGrade, ResourceBundle, RoundId, SimDuration, TaskId};

use crate::{f, render_table, ExpOptions};

/// One `(framework, scale)` measurement.
#[derive(Debug, Clone, Serialize)]
pub struct Point {
    /// Framework name.
    pub framework: String,
    /// Number of simulated devices.
    pub devices: u64,
    /// Single-round time, seconds.
    pub round_secs: f64,
}

/// Cloud-side per-round overhead of SimDC (storage sync + DeviceFlow +
/// aggregation service), added on top of the cluster makespan.
const CLOUD_OVERHEAD: SimDuration = SimDuration::from_millis(2_500);

/// SimDC single-round time at scale `n` on a 200-core logical cluster
/// (single grade, one unit bundle per device, as in §VI-B.4).
fn simdc_round_time(n: u64, seed: u64) -> SimDuration {
    let config = ClusterConfig {
        // One big 200-core pool; no elastic growth — Fig 8 fixes capacity.
        node_template: ResourceBundle::cores_gib(200, 300),
        initial_nodes: 1,
        max_nodes: 1,
        cost: CostModel {
            jitter_frac: 0.0,
            compute_per_device: PerGrade::new(SimDuration::from_secs(16)),
            ..CostModel::default()
        },
        ..ClusterConfig::default()
    };
    let mut cluster = LogicalCluster::new(config);
    let job = JobSpec {
        task: TaskId(1),
        round: RoundId(0),
        grade: DeviceGrade::High,
        devices: (0..n).map(DeviceId).collect(),
        unit_bundles: 200,
        units_per_device: 1,
        payload_mib: 4.0,
    };
    let mut rng = RngStream::named(seed, "fig8");
    let plan = cluster.submit_job(&job, &mut rng).expect("job fits");
    plan.makespan.saturating_add(CLOUD_OVERHEAD)
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics if the fixed-capacity cluster rejects a job (a bug).
pub fn run(opts: &ExpOptions) -> Vec<Point> {
    let scales: &[u64] = if opts.quick {
        &[100, 1_000, 10_000]
    } else {
        &[100, 316, 1_000, 3_162, 10_000, 31_623, 100_000]
    };
    let fedscale = FedScaleSim::default();
    let fedscope = FederatedScopeSim::default();

    let mut points = Vec::new();
    for &n in scales {
        points.push(Point {
            framework: "SimDC".into(),
            devices: n,
            round_secs: simdc_round_time(n, opts.seed).as_secs_f64(),
        });
        points.push(Point {
            framework: fedscale.name().into(),
            devices: n,
            round_secs: fedscale.round_time(n).as_secs_f64(),
        });
        points.push(Point {
            framework: fedscope.name().into(),
            devices: n,
            round_secs: fedscope.round_time(n).as_secs_f64(),
        });
    }

    let table = render_table(
        &["Devices", "SimDC (s)", "FedScale (s)", "FederatedScope (s)"],
        &scales
            .iter()
            .map(|&n| {
                let t = |name: &str| {
                    points
                        .iter()
                        .find(|p| p.devices == n && p.framework == name)
                        .expect("both frameworks measured at every scale")
                        .round_secs
                };
                vec![
                    n.to_string(),
                    f(t("SimDC"), 1),
                    f(t("FedScale"), 1),
                    f(t("FederatedScope"), 1),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("Fig 8 — scalability of popular simulators (single-round time)\n{table}");
    opts.write_json("fig8", &points);
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(points: &[Point], name: &str, n: u64) -> f64 {
        points
            .iter()
            .find(|p| p.framework == name && p.devices == n)
            .unwrap()
            .round_secs
    }

    #[test]
    fn shape_matches_paper() {
        let opts = ExpOptions {
            quick: false,
            out_dir: std::env::temp_dir().join("simdc-fig8-test"),
            ..ExpOptions::default()
        };
        let points = run(&opts);
        // Below 1k devices SimDC is slower than both baselines.
        for n in [100u64, 316] {
            assert!(get(&points, "SimDC", n) > get(&points, "FedScale", n));
            assert!(get(&points, "SimDC", n) > get(&points, "FederatedScope", n));
        }
        // At ≥10k devices SimDC and FederatedScope are comparable
        // (within 2×) while FedScale stays far below both.
        for n in [10_000u64, 100_000] {
            let simdc = get(&points, "SimDC", n);
            let fscope = get(&points, "FederatedScope", n);
            let fscale = get(&points, "FedScale", n);
            let ratio = simdc / fscope;
            assert!((0.5..2.0).contains(&ratio), "n={n}: ratio {ratio}");
            assert!(fscale < 0.2 * simdc, "FedScale stays fastest at {n}");
        }
        // Everything grows with scale.
        assert!(get(&points, "SimDC", 100_000) > get(&points, "SimDC", 100));
        std::fs::remove_dir_all(&opts.out_dir).ok();
    }
}
