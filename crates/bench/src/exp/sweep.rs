//! Parameter-sweep runner — scenario matrices over the declarative spec
//! layer.
//!
//! Expands a [`SweepGrid`] (base [`ScenarioSpec`] × seeds × arrival-rate
//! scales × thread counts) into one compiled run per cell, writing one
//! `SWEEP_<cell>.json` summary per cell plus the aggregate
//! `BENCH_sweep.json` manifest CI archives and `diff`s across two runs.
//! The thread axis is a built-in determinism gate: summaries within a
//! (seed, rate-scale) group must be byte-identical across thread counts,
//! and the runner panics if they are not.

use std::sync::Arc;

use serde::Serialize;
use simdc_phone::FleetSpec;
use simdc_workload::{library, ScenarioSpec, ScenarioSummary};

use crate::{f, render_table, ExpOptions};

/// A parameter grid over one base spec: the cartesian product of every
/// axis, expanded by [`SweepGrid::cells`] in deterministic order
/// (seed-major, then rate scale, then threads).
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Spec every cell derives from (its seed/threads fields are
    /// overridden per cell).
    pub base: ScenarioSpec,
    /// Root-seed axis.
    pub seeds: Vec<u64>,
    /// Arrival-rate multipliers applied via
    /// [`ScenarioSpec::with_rate_scale`].
    pub rate_scales: Vec<f64>,
    /// Worker-thread axis — never changes summaries, only wall-clock.
    pub threads: Vec<usize>,
}

/// One expanded grid cell, ready to compile and run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Artifact stem: `<base>_s<seed>_r<scale>_t<threads>`.
    pub name: String,
    /// Rate-scale-axis value this cell was expanded with.
    pub rate_scale: f64,
    /// Fully parameterized spec (seed, rates and threads applied). Its
    /// `name` excludes the thread suffix, so summaries stay byte-equal
    /// across the thread axis.
    pub spec: ScenarioSpec,
}

/// Thread-axis-free cell tag, e.g. `steady_poisson_s7_r0p50`.
fn group_name(base: &str, seed: u64, rate_scale: f64) -> String {
    format!("{base}_s{seed}_r{:.2}", rate_scale).replace('.', "p")
}

impl SweepGrid {
    /// Expands the grid into cells, seed-major then rate then threads —
    /// the order is part of the artifact contract (CI diffs the
    /// aggregate manifest across runs).
    #[must_use]
    pub fn cells(&self) -> Vec<SweepCell> {
        let mut cells = Vec::new();
        for &seed in &self.seeds {
            for &rate_scale in &self.rate_scales {
                let group = group_name(&self.base.name, seed, rate_scale);
                for &threads in &self.threads {
                    let mut spec = self.base.clone().with_rate_scale(rate_scale);
                    spec.name = group.clone();
                    spec.seed = seed;
                    spec.threads = threads;
                    cells.push(SweepCell {
                        name: format!("{group}_t{threads}"),
                        rate_scale,
                        spec,
                    });
                }
            }
        }
        cells
    }
}

/// One row of the aggregate `BENCH_sweep.json` manifest.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CellRecord {
    /// Cell artifact stem (also the `SWEEP_<cell>.json` file stem).
    pub cell: String,
    /// Seed-axis value.
    pub seed: u64,
    /// Rate-scale-axis value.
    pub rate_scale: f64,
    /// Thread-axis value.
    pub threads: usize,
    /// The cell's run summary.
    pub summary: ScenarioSummary,
}

/// Runs the default sweep: the steady-Poisson library scenario over
/// 2 seeds × 2 rate scales × {1, 4} threads.
///
/// # Panics
///
/// Panics if any (seed, rate-scale) group is not byte-identical across
/// the thread axis — that would be a determinism regression, and the
/// sweep doubles as its gate.
pub fn run(opts: &ExpOptions) -> Vec<CellRecord> {
    // Quick mode shrinks the horizon; the grid shape is fixed.
    let horizon_scale = if opts.quick { 0.2 } else { 1.0 };
    let base = ScenarioSpec::from_scenario(&library()[0], FleetSpec::paper_default(), opts.seed, 1)
        .with_horizon_scale(horizon_scale);
    let grid = SweepGrid {
        base,
        seeds: vec![opts.seed, opts.seed + 1],
        rate_scales: vec![0.5, 1.0],
        threads: vec![1, 4],
    };
    let data = Arc::new(super::standard_dataset(120, opts.seed));

    let mut records = Vec::new();
    for cell in grid.cells() {
        let summary = cell
            .spec
            .compile()
            .expect("sweep cells derive from a validated library scenario")
            .run(&data);
        opts.write_json(&format!("SWEEP_{}", cell.name), &summary);
        records.push(CellRecord {
            cell: cell.name,
            seed: cell.spec.seed,
            rate_scale: cell.rate_scale,
            threads: cell.spec.threads,
            summary,
        });
    }

    // Thread-axis determinism gate: within a (seed, rate) group every
    // summary must serialize to the same bytes.
    for chunk in records.chunks(grid.threads.len()) {
        let first = serde_json::to_string(&chunk[0].summary).expect("serialize summary");
        for other in &chunk[1..] {
            assert_eq!(
                first,
                serde_json::to_string(&other.summary).expect("serialize summary"),
                "thread axis changed results in sweep group {}",
                chunk[0].summary.scenario
            );
        }
    }

    let table = render_table(
        &["Cell", "Seed", "Rate", "Thr", "Tasks", "Done", "Wait (s)"],
        &records
            .iter()
            .map(|r| {
                vec![
                    r.cell.clone(),
                    r.seed.to_string(),
                    f(r.rate_scale, 2),
                    r.threads.to_string(),
                    r.summary.submitted.to_string(),
                    r.summary.completed.to_string(),
                    f(r.summary.mean_wait_secs, 1),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("Scenario sweep — seed × rate × thread grid over the spec layer\n{table}");
    opts.write_json("BENCH_sweep", &records);
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_expansion_is_deterministic_and_complete() {
        let base = ScenarioSpec::from_scenario(&library()[0], FleetSpec::paper_default(), 7, 1);
        let grid = SweepGrid {
            base,
            seeds: vec![7, 8],
            rate_scales: vec![0.5, 1.0],
            threads: vec![1, 4],
        };
        let cells = grid.cells();
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0].name, "steady_poisson_s7_r0p50_t1");
        assert_eq!(cells[7].name, "steady_poisson_s8_r1p00_t4");
        // The thread suffix stays out of the spec name, so thread-axis
        // runs produce byte-identical summaries.
        assert_eq!(cells[0].spec.name, cells[1].spec.name);
        assert_eq!(cells, grid.cells(), "expansion is deterministic");
        for cell in &cells {
            cell.spec.validate().expect("expanded cells stay valid");
        }
    }

    #[test]
    fn quick_sweep_writes_one_artifact_per_cell_and_is_reproducible() {
        let out_dir = std::env::temp_dir().join(format!("simdc-sweep-{}", std::process::id()));
        let opts = ExpOptions {
            quick: true,
            seed: 7,
            out_dir: out_dir.clone(),
            ..ExpOptions::default()
        };
        let first = run(&opts);
        assert_eq!(first.len(), 8, "2 seeds x 2 rates x 2 thread counts");
        let manifest = std::fs::read_to_string(out_dir.join("BENCH_sweep.json")).unwrap();
        for record in &first {
            assert!(out_dir.join(format!("SWEEP_{}.json", record.cell)).exists());
        }
        // Higher arrival rate never means fewer submissions per seed.
        assert!(first[2].summary.submitted >= first[0].summary.submitted);
        let second = run(&opts);
        let manifest_again = std::fs::read_to_string(out_dir.join("BENCH_sweep.json")).unwrap();
        assert_eq!(first, second);
        assert_eq!(manifest, manifest_again, "same seed must be byte-identical");
        std::fs::remove_dir_all(&out_dir).ok();
    }
}
