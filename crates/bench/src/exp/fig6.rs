//! Fig 6 — accuracy difference of hybrid heterogeneous computing relative
//! to a conventional all-server benchmark, across allocation ratios and
//! scales.
//!
//! Types 1–5 put (100%, 75%, 50%, 25%, 0%) of the devices in Logical
//! Simulation (PyMNN-analog `f64` kernel) and the rest on phones
//! (MNN-analog `f32` kernel). The benchmark is the same FedAvg computed
//! entirely with the server kernel. The paper's claim: |ΔACC| < 0.5 %
//! everywhere.

use std::sync::Arc;

use serde::Serialize;
use simdc_baselines::run_round;
use simdc_core::{AllocationPolicy, Platform, PlatformConfig, RunnerConfig};
use simdc_ml::{evaluate, LrModel};

use crate::{f, render_table, ExpOptions};

/// One measured cell of Fig 6.
#[derive(Debug, Clone, Serialize)]
pub struct Cell {
    /// Devices per grade.
    pub scale: u64,
    /// Allocation type 1–5.
    pub alloc_type: usize,
    /// Logical fraction of that type.
    pub logical_fraction: f64,
    /// Hybrid test accuracy.
    pub hybrid_acc: f64,
    /// All-server benchmark accuracy.
    pub benchmark_acc: f64,
    /// Difference in percentage points.
    pub acc_diff_pct: f64,
}

const FRACTIONS: [f64; 5] = [1.0, 0.75, 0.5, 0.25, 0.0];

/// Runs the experiment.
///
/// # Panics
///
/// Panics on platform rejection of the generated specs.
pub fn run(opts: &ExpOptions) -> Vec<Cell> {
    let scales: &[u64] = if opts.quick {
        &[4, 20]
    } else {
        &[4, 20, 100, 500]
    };
    let rounds = if opts.quick { 4 } else { 10 };
    // One shard per device at the largest scale (2 × 500), so hybrid and
    // benchmark train the identical participant multiset. The test set must
    // be large enough that a single flipped prediction moves accuracy by
    // far less than the 0.5% bound under scrutiny.
    let data = Arc::new(simdc_data::CtrDataset::generate(
        &simdc_data::GeneratorConfig {
            n_devices: 2 * scales.iter().max().copied().unwrap_or(500) as usize,
            n_test_devices: 150,
            mean_records_per_device: 20.0,
            feature_dim: 1 << 12,
            ctr_alpha: 2.0,
            ctr_beta: 2.0,
            seed: opts.seed,
            ..simdc_data::GeneratorConfig::default()
        },
    ));

    let mut cells = Vec::new();
    let mut next_task = 1u64;
    for &scale in scales {
        // Benchmark: plain all-server FedAvg over the same population.
        let participants = (2 * scale) as usize;
        let mut bench_model = LrModel::zeros(data.feature_dim);
        for _ in 0..rounds {
            bench_model = run_round(
                &bench_model,
                &data,
                participants.min(data.devices.len()),
                super::visible_train_config(),
            )
            .expect("benchmark aggregation");
        }
        let benchmark_acc = evaluate(&bench_model, &data.test).accuracy;

        for (idx, &frac) in FRACTIONS.iter().enumerate() {
            let mut platform = Platform::new(PlatformConfig {
                runner: RunnerConfig {
                    measure_benchmarks: false,
                    ..RunnerConfig::default()
                },
                seed: opts.seed,
                ..PlatformConfig::default()
            });
            let mut spec = super::two_grade_spec(next_task, scale, 0);
            next_task += 1;
            spec.rounds = rounds;
            spec.allocation = AllocationPolicy::FixedLogicalFraction(frac);
            let id = spec.id;
            platform
                .submit(spec, data.clone())
                .expect("submit fig6 task");
            platform.run_until_idle();
            let report = platform.report(id).expect("task completed");
            let hybrid_acc = report.final_accuracy();
            cells.push(Cell {
                scale,
                alloc_type: idx + 1,
                logical_fraction: frac,
                hybrid_acc,
                benchmark_acc,
                acc_diff_pct: (hybrid_acc - benchmark_acc) * 100.0,
            });
        }
    }

    let table = render_table(
        &[
            "Scale",
            "Type",
            "Logical %",
            "Hybrid ACC",
            "Benchmark ACC",
            "ΔACC (%)",
        ],
        &cells
            .iter()
            .map(|c| {
                vec![
                    format!("({0},{0})", c.scale),
                    format!("Type {}", c.alloc_type),
                    f(c.logical_fraction * 100.0, 0),
                    f(c.hybrid_acc, 4),
                    f(c.benchmark_acc, 4),
                    f(c.acc_diff_pct, 3),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("Fig 6 — accuracy difference vs scale across allocation types\n{table}");
    opts.write_json("fig6", &cells);
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acc_differences_stay_below_half_percent() {
        let opts = ExpOptions {
            quick: true,
            out_dir: std::env::temp_dir().join("simdc-fig6-test"),
            ..ExpOptions::default()
        };
        let cells = run(&opts);
        assert_eq!(cells.len(), 2 * 5);
        for c in &cells {
            assert!(
                c.acc_diff_pct.abs() < 0.5,
                "type {} at scale {}: ΔACC {}%",
                c.alloc_type,
                c.scale,
                c.acc_diff_pct
            );
        }
        // Type 1 (all-logical, all-server kernel) is essentially identical
        // to the benchmark: same kernel and participants, the only wiggle
        // room is f64 summation order inside FedAvg.
        for c in cells.iter().filter(|c| c.alloc_type == 1) {
            assert!(c.acc_diff_pct.abs() < 0.05, "{c:?}");
        }
        std::fs::remove_dir_all(&opts.out_dir).ok();
    }
}
