//! Scale bench — the `mega_fleet` scenario against a 100k-phone fleet,
//! swept over a worker-thread axis.
//!
//! This is the experiment that *measures* (rather than asserts) the two
//! per-fleet-size optimizations in the platform core: the grade-indexed
//! availability accounting in `PhoneMgr` (per-task cost O(k log F)
//! instead of a fleet rescan) and the sharded execution path (parallel
//! fleet construction plus batched plan-phase dispatch behind
//! `PlatformConfig::threads`). It drives the
//! [`simdc_workload::mega_fleet`] scenario — superposed bursty arrivals of
//! phone-heavy tasks, light churn, a straggler tail — over a fleet scaled
//! with [`FleetSpec::scaled_paper`], once per thread count, and reports
//! wall-clock throughput per point: simulation events per second,
//! completed tasks per second, the virtual-time speedup, and the
//! wall-clock speedup relative to the sequential run.
//!
//! Every point of the sweep must produce **byte-identical** summary JSON
//! — the deterministic-merge contract — and this bench hard-asserts it
//! (that's the CI byte-equality diff for `--threads 1` vs `--threads 4`:
//! both points run here, in release and in debug with assertions armed).
//! `host_cpus` is recorded next to the curve so a flat speedup on a
//! 1-CPU runner reads as what it is, not as a regression.
//!
//! The default fleet is 100,000 phones (`--fleet N` overrides, up to the
//! ROADMAP's million); `--quick` drops to a 2,000-phone smoke size with a
//! shortened horizon. `--threads N` raises the top of the thread axis
//! (default 4); the axis is the powers of two up to and including N.

use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;
use simdc_core::PlatformConfig;
use simdc_phone::FleetSpec;
use simdc_workload::{mega_fleet, Scenario, ScenarioSummary};

use crate::{f, render_table, ExpOptions};

/// Default fleet size of the full-scale run.
pub const FULL_FLEET: usize = 100_000;
/// Fleet size of `--quick` smoke runs.
pub const QUICK_FLEET: usize = 2_000;
/// Default top of the worker-thread axis (`--threads N` overrides).
pub const DEFAULT_MAX_THREADS: usize = 4;

/// Wall-clock throughput figures (not seed-deterministic).
#[derive(Debug, Clone, Serialize)]
pub struct ScaleTiming {
    /// End-to-end wall time of the scenario run, including fleet
    /// construction, seconds.
    pub wall_secs: f64,
    /// Simulation events processed per wall-clock second.
    pub events_per_sec: f64,
    /// Tasks completed per wall-clock second.
    pub tasks_per_sec: f64,
    /// Virtual seconds simulated per wall-clock second.
    pub virtual_per_wall: f64,
}

/// One point of the thread sweep: a full scenario run at `threads`
/// workers, with its wall-clock timing and its speedup relative to the
/// sequential point.
#[derive(Debug, Clone, Serialize)]
pub struct ThreadPoint {
    /// Worker threads (`1` = the classic sequential path).
    pub threads: usize,
    /// Wall-clock throughput of this run.
    pub timing: ScaleTiming,
    /// `wall_secs(threads=1) / wall_secs(this)` — > 1 means faster. On a
    /// host with fewer CPUs than `threads` this hovers near (or below)
    /// 1.0; read it against `host_cpus`.
    pub speedup: f64,
}

/// The `BENCH_scale.json` payload: a deterministic scenario summary, the
/// host's parallelism, and the wall-clock speedup curve measured over the
/// thread axis.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleResult {
    /// Phones in the simulated fleet.
    pub fleet_size: usize,
    /// CPUs the host exposes — the honest denominator of `speedup`.
    pub host_cpus: usize,
    /// Seed-deterministic scenario outcome (same seed ⇒ byte-identical;
    /// asserted equal across every point of the sweep).
    pub summary: ScenarioSummary,
    /// The speedup curve, one point per thread count, ascending.
    pub sweep: Vec<ThreadPoint>,
}

fn run_once(
    scenario: &Scenario,
    fleet_size: usize,
    threads: usize,
    data: &Arc<simdc_data::CtrDataset>,
    seed: u64,
) -> (ScenarioSummary, ScaleTiming) {
    let config = PlatformConfig {
        fleet: FleetSpec::scaled_paper(fleet_size),
        seed,
        threads,
        ..PlatformConfig::default()
    };
    // Wall-clock throughput is this bench's product (clippy.toml bans
    // `Instant::now` in simulation code; `crates/bench` is harness).
    #[allow(clippy::disallowed_methods)]
    let started = Instant::now();
    let summary = scenario.run(config, data, seed);
    let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
    let timing = ScaleTiming {
        wall_secs,
        events_per_sec: summary.events as f64 / wall_secs,
        tasks_per_sec: summary.completed as f64 / wall_secs,
        virtual_per_wall: summary.makespan_secs / wall_secs,
    };
    (summary, timing)
}

/// The thread axis: powers of two up to and including `max`.
fn thread_axis(max: usize) -> Vec<usize> {
    let max = max.max(1);
    let mut axis = vec![1];
    let mut t = 2;
    while t < max {
        axis.push(t);
        t *= 2;
    }
    if max > 1 {
        axis.push(max);
    }
    axis
}

/// Runs the scale bench — one scenario run per thread count — and writes
/// `BENCH_scale.json`.
///
/// # Panics
///
/// Panics if the `mega_fleet` scenario fails validation (a library bug),
/// or if any threaded run's summary differs byte-for-byte from the
/// sequential run's — the deterministic-merge contract.
pub fn run(opts: &ExpOptions) -> ScaleResult {
    let fleet_size = opts
        .fleet
        .unwrap_or(if opts.quick { QUICK_FLEET } else { FULL_FLEET });
    let scenario = if opts.quick {
        mega_fleet().scaled(0.1)
    } else {
        mega_fleet()
    };
    scenario.validate().expect("mega_fleet must be valid");
    let data = Arc::new(super::standard_dataset(64, opts.seed));
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    let axis = thread_axis(opts.threads.unwrap_or(DEFAULT_MAX_THREADS));
    let mut sweep: Vec<ThreadPoint> = Vec::with_capacity(axis.len());
    let mut summary: Option<ScenarioSummary> = None;
    let mut sequential_json = String::new();
    let mut sequential_wall = 0.0f64;
    for &threads in &axis {
        let (run_summary, timing) = run_once(&scenario, fleet_size, threads, &data, opts.seed);
        let json = serde_json::to_string(&run_summary).expect("summary serializes");
        if let Some(_first) = &summary {
            assert_eq!(
                json, sequential_json,
                "threads={threads} changed the scenario bytes — deterministic merge broken"
            );
        } else {
            sequential_json = json;
            sequential_wall = timing.wall_secs;
            summary = Some(run_summary);
        }
        sweep.push(ThreadPoint {
            threads,
            speedup: sequential_wall / timing.wall_secs.max(1e-9),
            timing,
        });
    }
    let summary = summary.expect("axis is never empty");

    let result = ScaleResult {
        fleet_size,
        host_cpus,
        summary,
        sweep,
    };

    let rows: Vec<Vec<String>> = result
        .sweep
        .iter()
        .map(|p| {
            vec![
                result.fleet_size.to_string(),
                p.threads.to_string(),
                result.summary.submitted.to_string(),
                result.summary.completed.to_string(),
                result.summary.events.to_string(),
                f(p.timing.wall_secs, 2),
                f(p.timing.events_per_sec, 1),
                f(p.speedup, 2),
            ]
        })
        .collect();
    let table = render_table(
        &[
            "Fleet", "Threads", "Tasks", "Done", "Events", "Wall (s)", "Events/s", "Speedup",
        ],
        &rows,
    );
    println!(
        "Scale bench — mega_fleet over a grade-indexed {fleet_size}-phone fleet \
         (host: {host_cpus} CPUs; summaries byte-identical across the sweep)\n{table}"
    );
    opts.write_json("BENCH_scale", &result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_axis_is_powers_of_two_capped_at_max() {
        assert_eq!(thread_axis(1), vec![1]);
        assert_eq!(thread_axis(2), vec![1, 2]);
        assert_eq!(thread_axis(4), vec![1, 2, 4]);
        assert_eq!(thread_axis(6), vec![1, 2, 4, 6]);
        assert_eq!(thread_axis(8), vec![1, 2, 4, 8]);
        assert_eq!(thread_axis(0), vec![1]);
    }

    #[test]
    fn quick_scale_run_sweeps_threads_over_thousands_of_phones() {
        let out_dir = std::env::temp_dir().join(format!("simdc-scale-{}", std::process::id()));
        let opts = ExpOptions {
            quick: true,
            seed: 11,
            out_dir: out_dir.clone(),
            fleet: Some(1_200),
            threads: Some(2),
        };
        let result = run(&opts);
        assert_eq!(result.fleet_size, 1_200);
        assert!(result.host_cpus >= 1);
        assert!(result.summary.submitted > 0, "{result:?}");
        assert!(result.summary.completed > 0, "{result:?}");
        // One point per thread count, sequential first, speedup defined
        // relative to it. (`run` itself asserts byte-equality.)
        assert_eq!(
            result.sweep.iter().map(|p| p.threads).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert!((result.sweep[0].speedup - 1.0).abs() < 1e-9);
        assert!(result.sweep.iter().all(|p| p.timing.events_per_sec > 0.0));
        assert!(result.sweep[0].timing.virtual_per_wall > 1.0, "{result:?}");
        let json = std::fs::read_to_string(out_dir.join("BENCH_scale.json")).unwrap();
        assert!(json.contains("host_cpus"));
        assert!(json.contains("speedup"));
        // The scenario summary (not the wall timing) is deterministic.
        let again = run(&opts);
        assert_eq!(result.summary, again.summary);
        std::fs::remove_dir_all(&out_dir).ok();
    }
}
