//! Scale bench — the `mega_fleet` scenario against a 100k-phone fleet.
//!
//! This is the experiment that *measures* (rather than asserts) the
//! grade-indexed availability accounting in `PhoneMgr`: it drives the
//! [`simdc_workload::mega_fleet`] scenario — superposed bursty arrivals of
//! phone-heavy tasks, light churn, a straggler tail — over a fleet scaled
//! with [`FleetSpec::scaled_paper`], and reports wall-clock throughput:
//! simulation events per second, completed tasks per second and the
//! virtual-time speedup. Before the index, `select`/`available`/
//! `effective_profile` rescanned the fleet per task per grade, so
//! events/sec collapsed as the fleet grew; with the index the per-task
//! cost is O(k log F) and fleet size only pays at construction.
//!
//! The default fleet is 100,000 phones (`--fleet N` overrides, up to the
//! ROADMAP's million); `--quick` drops to a 2,000-phone smoke size with a
//! shortened horizon — CI runs that at a small fleet in both release
//! (throughput numbers) and debug (the index-parity assertion stays
//! armed). The scenario summary inside the result is byte-deterministic
//! per seed; the surrounding timing block is wall-clock and is not.

use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;
use simdc_core::PlatformConfig;
use simdc_phone::FleetSpec;
use simdc_workload::{mega_fleet, ScenarioSummary};

use crate::{f, render_table, ExpOptions};

/// Default fleet size of the full-scale run.
pub const FULL_FLEET: usize = 100_000;
/// Fleet size of `--quick` smoke runs.
pub const QUICK_FLEET: usize = 2_000;

/// Wall-clock throughput figures (not seed-deterministic).
#[derive(Debug, Clone, Serialize)]
pub struct ScaleTiming {
    /// End-to-end wall time of the scenario run, including fleet
    /// construction, seconds.
    pub wall_secs: f64,
    /// Simulation events processed per wall-clock second.
    pub events_per_sec: f64,
    /// Tasks completed per wall-clock second.
    pub tasks_per_sec: f64,
    /// Virtual seconds simulated per wall-clock second.
    pub virtual_per_wall: f64,
}

/// The `BENCH_scale.json` payload: a deterministic scenario summary plus
/// the wall-clock throughput measured around it.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleResult {
    /// Phones in the simulated fleet.
    pub fleet_size: usize,
    /// Seed-deterministic scenario outcome (same seed ⇒ byte-identical).
    pub summary: ScenarioSummary,
    /// Wall-clock throughput of this particular run.
    pub timing: ScaleTiming,
}

/// Runs the scale bench and writes `BENCH_scale.json`.
///
/// # Panics
///
/// Panics if the `mega_fleet` scenario fails validation (a library bug).
pub fn run(opts: &ExpOptions) -> ScaleResult {
    let fleet_size = opts
        .fleet
        .unwrap_or(if opts.quick { QUICK_FLEET } else { FULL_FLEET });
    let scenario = if opts.quick {
        mega_fleet().scaled(0.1)
    } else {
        mega_fleet()
    };
    scenario.validate().expect("mega_fleet must be valid");
    let data = Arc::new(super::standard_dataset(64, opts.seed));
    let config = PlatformConfig {
        fleet: FleetSpec::scaled_paper(fleet_size),
        seed: opts.seed,
        ..PlatformConfig::default()
    };

    // Wall-clock throughput is this bench's product (clippy.toml bans
    // `Instant::now` in simulation code; `crates/bench` is harness).
    #[allow(clippy::disallowed_methods)]
    let started = Instant::now();
    let summary = scenario.run(config, &data, opts.seed);
    let wall_secs = started.elapsed().as_secs_f64().max(1e-9);

    let timing = ScaleTiming {
        wall_secs,
        events_per_sec: summary.events as f64 / wall_secs,
        tasks_per_sec: summary.completed as f64 / wall_secs,
        virtual_per_wall: summary.makespan_secs / wall_secs,
    };
    let result = ScaleResult {
        fleet_size,
        summary,
        timing,
    };

    let table = render_table(
        &[
            "Fleet", "Tasks", "Done", "Crash", "Events", "Wall (s)", "Events/s", "Virt x",
        ],
        &[vec![
            result.fleet_size.to_string(),
            result.summary.submitted.to_string(),
            result.summary.completed.to_string(),
            result.summary.crashes.to_string(),
            result.summary.events.to_string(),
            f(result.timing.wall_secs, 2),
            f(result.timing.events_per_sec, 1),
            f(result.timing.virtual_per_wall, 0),
        ]],
    );
    println!(
        "Scale bench — mega_fleet scenario over a grade-indexed {fleet_size}-phone fleet\n{table}"
    );
    opts.write_json("BENCH_scale", &result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_run_reports_throughput_over_thousands_of_phones() {
        let out_dir = std::env::temp_dir().join(format!("simdc-scale-{}", std::process::id()));
        let opts = ExpOptions {
            quick: true,
            seed: 11,
            out_dir: out_dir.clone(),
            fleet: Some(1_200),
        };
        let result = run(&opts);
        assert_eq!(result.fleet_size, 1_200);
        assert!(result.summary.submitted > 0, "{result:?}");
        assert!(result.summary.completed > 0, "{result:?}");
        assert!(result.timing.events_per_sec > 0.0);
        assert!(result.timing.virtual_per_wall > 1.0, "{result:?}");
        let json = std::fs::read_to_string(out_dir.join("BENCH_scale.json")).unwrap();
        assert!(json.contains("events_per_sec"));
        // The scenario summary (not the wall timing) is deterministic.
        let again = run(&opts);
        assert_eq!(result.summary, again.summary);
        std::fs::remove_dir_all(&out_dir).ok();
    }
}
