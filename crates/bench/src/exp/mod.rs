//! One module per table/figure of the paper's evaluation (§VI).
//!
//! Each module exposes `run(&ExpOptions)`, prints the paper-table analog to
//! stdout and writes a machine-readable JSON result under `results/`.
//! `EXPERIMENTS.md` records the paper-vs-measured comparison.

pub mod elasticity;
pub mod fig10;
pub mod fig11;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod scale;
pub mod scenarios;
pub mod sweep;
pub mod table1;
pub mod table2;

use crate::ExpOptions;
use simdc_core::{AggregationTrigger, GradeRequirement, TaskSpec};
use simdc_data::{CtrDataset, GeneratorConfig};
use simdc_types::{DeviceGrade, SimDuration, TaskId};

/// Entry point of one experiment: runs it and writes its JSON result.
pub type ExpRunner = fn(&ExpOptions);

/// Every experiment of the paper's evaluation, in presentation order.
///
/// The single source of truth for "what does the suite contain": the
/// `run_all` binary and the registry smoke test both iterate this slice,
/// so a new experiment module is either wired in here (and thereby run,
/// smoke-tested and listed) or it does not exist as far as the suite is
/// concerned. The name doubles as the JSON result stem under `--out`.
pub const ALL: &[(&str, ExpRunner)] = &[
    ("table1", |opts| {
        table1::run(opts);
    }),
    ("fig5", |opts| {
        fig5::run(opts);
    }),
    ("fig6", |opts| {
        fig6::run(opts);
    }),
    ("fig7", |opts| {
        fig7::run(opts);
    }),
    ("fig8", |opts| {
        fig8::run(opts);
    }),
    ("fig9", |opts| {
        fig9::run(opts);
    }),
    ("fig10", |opts| {
        fig10::run(opts);
    }),
    ("table2", |opts| {
        table2::run(opts);
    }),
    ("fig11", |opts| {
        fig11::run(opts);
    }),
    ("scenarios", |opts| {
        scenarios::run(opts);
    }),
    // The scale bench goes beyond the paper: mega_fleet throughput over a
    // grade-indexed 100k+-phone fleet (quick mode shrinks the fleet). The
    // name doubles as the JSON stem, so the suite emits BENCH_scale.json.
    ("BENCH_scale", |opts| {
        scale::run(opts);
    }),
    // The elasticity bench certifies the cloud tier's scale-out /
    // scale-in behavior and emits its node/cost/utilization time series
    // (BENCH_elasticity.json, archived by CI).
    ("BENCH_elasticity", |opts| {
        elasticity::run(opts);
    }),
    // The sweep runner expands a seed × rate × thread grid over the
    // declarative scenario layer, one SWEEP_<cell>.json per cell plus
    // the BENCH_sweep.json manifest (archived and diffed by CI); its
    // thread axis doubles as a determinism gate.
    ("BENCH_sweep", |opts| {
        sweep::run(opts);
    }),
];

/// Standard two-grade dataset used by the platform experiments.
///
/// Uses a balanced per-device CTR prior (`Beta(2, 2)`) so that test
/// accuracy is an informative learning signal rather than being dominated
/// by the majority class — the paper's accuracy-based figures (6, 9, 11)
/// all need visible learning dynamics.
#[must_use]
pub fn standard_dataset(n_devices: usize, seed: u64) -> CtrDataset {
    CtrDataset::generate(&GeneratorConfig {
        n_devices,
        n_test_devices: (n_devices / 10).clamp(5, 200),
        mean_records_per_device: 20.0,
        feature_dim: 1 << 12,
        ctr_alpha: 2.0,
        ctr_beta: 2.0,
        seed,
        ..GeneratorConfig::default()
    })
}

/// Local training hyper-parameters that show learning progress within ~10
/// federated rounds on 20-example shards (the paper's 1e-3 × 10 epochs is
/// calibrated for its 2M-record Avazu subset).
#[must_use]
pub fn visible_train_config() -> simdc_ml::TrainConfig {
    simdc_ml::TrainConfig {
        learning_rate: 0.3,
        epochs: 5,
    }
}

/// The standard two-grade task of the §VI-B experiments: `n` devices per
/// grade, `q` benchmark phones per grade, paper-like resource requests.
#[must_use]
pub fn two_grade_spec(id: u64, n_per_grade: u64, benchmark_per_grade: u64) -> TaskSpec {
    let total = 2 * n_per_grade;
    TaskSpec::builder(TaskId(id))
        .rounds(1)
        .grade(GradeRequirement {
            grade: DeviceGrade::High,
            total_devices: n_per_grade,
            benchmark_phones: benchmark_per_grade,
            logical_unit_bundles: 48,
            units_per_device: 8,
            phones: 12,
        })
        .grade(GradeRequirement {
            grade: DeviceGrade::Low,
            total_devices: n_per_grade,
            benchmark_phones: benchmark_per_grade,
            logical_unit_bundles: 24,
            units_per_device: 2,
            phones: 8,
        })
        .trigger(AggregationTrigger::DeviceThreshold { min_devices: total })
        .round_timeout(SimDuration::from_mins(240))
        .train(visible_train_config())
        .build()
        .expect("standard spec is valid")
}
