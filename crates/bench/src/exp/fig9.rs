//! Fig 9 — impact of device-behavior traffic curves on cloud aggregation.
//!
//! Non-IID scenario: devices with higher CTR transmit faster; per-round
//! response delays follow a right-tailed normal `|N(0, σ)|`, σ ∈ {1, 2, 3}
//! (scaled to minutes). Two cloud configurations:
//!
//! * **(a) sample-threshold aggregation** in a fixed 20-minute window — a
//!   tighter curve (σ = 1) completes more aggregation rounds and reaches a
//!   lower training loss;
//! * **(b) scheduled aggregation** — per round, a tighter curve lets more
//!   samples arrive before the deadline, so train accuracy per round is
//!   higher.

use serde::Serialize;
use simdc_core::cloud::{resolve_round, AggregationTrigger};
use simdc_data::{ctr_correlated_delays, CtrDataset, Dataset, GeneratorConfig};
use simdc_ml::{evaluate, FedAvg, KernelKind, LocalTrainer, LrModel};
use simdc_simrt::RngStream;
use simdc_types::{Message, MessageId, RoundId, SimDuration, SimInstant, StorageKey, TaskId};

use crate::{f, render_table, ExpOptions};

/// Results of both panels.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9 {
    /// Panel (a): per σ, `(minutes, loss)` at each completed aggregation.
    pub threshold_loss: Vec<SigmaSeries>,
    /// Panel (b): per σ, train accuracy after each scheduled round.
    pub scheduled_accuracy: Vec<SigmaSeries>,
}

/// One σ's series.
#[derive(Debug, Clone, Serialize)]
pub struct SigmaSeries {
    /// The traffic-curve σ.
    pub sigma: f64,
    /// `(x, y)` points: (minutes, loss) for panel (a), (round, accuracy)
    /// for panel (b).
    pub points: Vec<(f64, f64)>,
}

struct Scenario {
    data: CtrDataset,
    train_eval: Dataset,
}

fn scenario(opts: &ExpOptions, n_devices: usize) -> Scenario {
    let data = CtrDataset::generate(&GeneratorConfig {
        n_devices,
        n_test_devices: 50,
        mean_records_per_device: 20.0,
        feature_dim: 1 << 12,
        // Balanced labels: accuracy/loss must show learning dynamics.
        ctr_alpha: 2.0,
        ctr_beta: 2.0,
        seed: opts.seed,
        ..GeneratorConfig::default()
    });
    // Pooled training sample for "train accuracy" reporting.
    let train_eval: Dataset = data
        .devices
        .iter()
        .take(100)
        .flat_map(|d| d.data.iter().cloned())
        .collect();
    Scenario { data, train_eval }
}

/// One federated round with CTR-correlated delays: trains every device,
/// stamps each update with its arrival time, resolves the trigger and
/// aggregates what made it. Returns `(new_global, aggregated_at,
/// included_updates, weighted_loss)`.
#[allow(clippy::too_many_arguments)]
fn delayed_round(
    global: &LrModel,
    scn: &Scenario,
    sigma: f64,
    round_start: SimInstant,
    round: RoundId,
    trigger: AggregationTrigger,
    timeout: SimDuration,
    trainer: &LocalTrainer,
    rng: &mut RngStream,
) -> (LrModel, SimInstant, usize, f64) {
    let delays = ctr_correlated_delays(&scn.data.devices, sigma, SimDuration::from_secs(60), rng);
    let mut deliveries: Vec<(SimInstant, Message, simdc_ml::LocalUpdate)> = scn
        .data
        .devices
        .iter()
        .zip(&delays)
        .map(|(dev, &(id, delay))| {
            let update = trainer.train(global, &dev.data, KernelKind::Server);
            let at = round_start + delay;
            let msg = Message::model_update(
                MessageId(id.0),
                TaskId(1),
                id,
                round,
                update.n_samples,
                StorageKey::for_update(TaskId(1), round, id),
                at,
            );
            (at, msg, update)
        })
        .collect();
    deliveries.sort_by_key(|(at, m, _)| (*at, m.id));

    let timeline: Vec<(SimInstant, Message)> = deliveries
        .iter()
        .map(|(at, m, _)| (*at, m.clone()))
        .collect();
    let outcome = resolve_round(trigger, round_start, &timeline, timeout);
    let included: Vec<simdc_ml::LocalUpdate> = deliveries
        .iter()
        .filter(|(_, m, _)| outcome.included.iter().any(|inc| inc.id == m.id))
        .map(|(_, _, u)| u.clone())
        .collect();
    let loss = FedAvg::weighted_loss(&included);
    let new_global = if included.is_empty() {
        global.clone()
    } else {
        FedAvg::aggregate(&included).expect("non-empty aggregate")
    };
    (new_global, outcome.aggregated_at, included.len(), loss)
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics on internal aggregation errors.
pub fn run(opts: &ExpOptions) -> Fig9 {
    let n_devices = if opts.quick { 200 } else { 1_000 };
    let scn = scenario(opts, n_devices);
    let trainer = LocalTrainer::new(super::visible_train_config());
    let sigmas = [1.0, 2.0, 3.0];

    // Panel (a): sample-threshold aggregation in a 20-minute window.
    let window = SimDuration::from_mins(20);
    let threshold = AggregationTrigger::SampleThreshold {
        min_samples: (n_devices as u64) * 20 / 2, // ~half the population's samples
    };
    let mut threshold_loss = Vec::new();
    for &sigma in &sigmas {
        let mut rng = RngStream::named(opts.seed, &format!("fig9a/{sigma}"));
        let mut global = LrModel::zeros(scn.data.feature_dim);
        let mut now = SimInstant::EPOCH;
        let deadline = SimInstant::EPOCH + window;
        let mut points = Vec::new();
        let mut round = RoundId::FIRST;
        while now < deadline {
            let (next_global, agg_at, included, loss) = delayed_round(
                &global, &scn, sigma, now, round, threshold, window, &trainer, &mut rng,
            );
            if agg_at > deadline || included == 0 {
                break;
            }
            global = next_global;
            now = agg_at;
            round = round.next();
            points.push((agg_at.as_secs_f64() / 60.0, loss));
        }
        threshold_loss.push(SigmaSeries { sigma, points });
    }

    // Panel (b): scheduled aggregation, fixed rounds.
    let rounds = if opts.quick { 5 } else { 10 };
    let period = SimDuration::from_secs(90);
    let mut scheduled_accuracy = Vec::new();
    for &sigma in &sigmas {
        let mut rng = RngStream::named(opts.seed, &format!("fig9b/{sigma}"));
        let mut global = LrModel::zeros(scn.data.feature_dim);
        let mut now = SimInstant::EPOCH;
        let mut points = Vec::new();
        for r in 0..rounds {
            let (next_global, agg_at, _, _) = delayed_round(
                &global,
                &scn,
                sigma,
                now,
                RoundId(r),
                AggregationTrigger::Scheduled { period },
                period * 2,
                &trainer,
                &mut rng,
            );
            global = next_global;
            now = agg_at;
            let acc = evaluate(&global, &scn.train_eval).accuracy;
            points.push((f64::from(r + 1), acc));
        }
        scheduled_accuracy.push(SigmaSeries { sigma, points });
    }

    let result = Fig9 {
        threshold_loss,
        scheduled_accuracy,
    };

    let rows_a: Vec<Vec<String>> = result
        .threshold_loss
        .iter()
        .map(|s| {
            vec![
                format!("σ={}", s.sigma),
                s.points.len().to_string(),
                s.points.last().map_or("-".into(), |&(_, l)| f(l, 4)),
            ]
        })
        .collect();
    println!(
        "Fig 9(a) — sample-threshold aggregation in a 20-min window\n{}",
        render_table(&["Curve", "Rounds completed", "Final loss"], &rows_a)
    );
    let rows_b: Vec<Vec<String>> = result
        .scheduled_accuracy
        .iter()
        .map(|s| {
            vec![
                format!("σ={}", s.sigma),
                s.points.last().map_or("-".into(), |&(_, a)| f(a, 4)),
            ]
        })
        .collect();
    println!(
        "Fig 9(b) — scheduled aggregation train accuracy (final round)\n{}",
        render_table(&["Curve", "Final train ACC"], &rows_b)
    );
    opts.write_json("fig9", &result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tighter_curves_aggregate_more_and_learn_better() {
        let opts = ExpOptions {
            quick: true,
            out_dir: std::env::temp_dir().join("simdc-fig9-test"),
            ..ExpOptions::default()
        };
        let result = run(&opts);
        // (a) σ=1 completes at least as many rounds as σ=3 and ends with a
        // loss no worse.
        let rounds = |i: usize| result.threshold_loss[i].points.len();
        assert!(
            rounds(0) >= rounds(2),
            "σ=1 {} vs σ=3 {}",
            rounds(0),
            rounds(2)
        );
        assert!(rounds(0) >= 2, "σ=1 completes multiple rounds");
        let final_loss = |i: usize| result.threshold_loss[i].points.last().unwrap().1;
        assert!(final_loss(0) <= final_loss(2) + 0.02);
        // (b) σ=1 final train accuracy ≥ σ=3's.
        let final_acc = |i: usize| result.scheduled_accuracy[i].points.last().unwrap().1;
        assert!(
            final_acc(0) >= final_acc(2) - 0.005,
            "σ=1 {} vs σ=3 {}",
            final_acc(0),
            final_acc(2)
        );
        std::fs::remove_dir_all(&opts.out_dir).ok();
    }
}
