//! Elasticity bench — the cost-vs-scale story of the elastic cloud tier.
//!
//! Drives the two cloud-contention scenarios ([`simdc_workload::cloud_surge`]
//! and [`simdc_workload::budget_capped`]) and emits their node-count /
//! utilization / cost time series to `BENCH_elasticity.json` — the data
//! behind the paper's Fig 8/Fig 9 framing that elastic capacity trades
//! money for queueing delay. The uncapped run shows the pool surging with
//! each arrival burst and draining back between them; the budget-capped
//! run shows the same traffic held at six nodes with the overflow
//! absorbed as wait time.
//!
//! Everything inside each scenario summary (including the series) is
//! byte-deterministic per seed; CI diffs a same-seed double run and
//! archives the JSON as a workflow artifact.

use std::sync::Arc;

use serde::Serialize;
use simdc_core::PlatformConfig;
use simdc_workload::{budget_capped, cloud_surge, Scenario, ScenarioSummary};

use crate::{f, render_table, ExpOptions};

/// The `BENCH_elasticity.json` payload: one entry per elastic scenario.
#[derive(Debug, Clone, Serialize)]
pub struct ElasticityResult {
    /// Seed every stream derived from.
    pub seed: u64,
    /// Per-scenario outcomes, in run order (uncapped, then budget-capped).
    pub scenarios: Vec<ScenarioSummary>,
}

/// Runs the elasticity bench and writes `BENCH_elasticity.json`.
///
/// # Panics
///
/// Panics if a library scenario fails validation (a library bug), or if
/// the uncapped run never scaled out / never scaled back in — the bench
/// exists to certify exactly that behavior, so a flat series is a
/// regression, not a result.
pub fn run(opts: &ExpOptions) -> ElasticityResult {
    let scale = if opts.quick { 0.5 } else { 1.0 };
    let scenarios: Vec<Scenario> = [cloud_surge(), budget_capped()]
        .into_iter()
        .map(|s| if opts.quick { s.scaled(scale) } else { s })
        .collect();
    let data = Arc::new(super::standard_dataset(64, opts.seed));

    let mut summaries = Vec::with_capacity(scenarios.len());
    for scenario in &scenarios {
        scenario.validate().expect("library scenario must be valid");
        let config = PlatformConfig {
            seed: opts.seed,
            ..PlatformConfig::default()
        };
        summaries.push(scenario.run(config, &data, opts.seed));
    }

    // The bench's own acceptance: the uncapped pool surged and drained.
    let surge = &summaries[0].cloud;
    let first_nodes = surge.series.first().map_or(0, |s| s.nodes);
    assert!(
        surge.peak_nodes > first_nodes,
        "cloud_surge never scaled out: {surge:?}"
    );
    assert!(
        surge
            .series
            .last()
            .is_some_and(|s| s.ready < surge.peak_nodes),
        "cloud_surge never scaled back in: {surge:?}"
    );

    let rows: Vec<Vec<String>> = summaries
        .iter()
        .map(|s| {
            vec![
                s.scenario.clone(),
                s.submitted.to_string(),
                s.completed.to_string(),
                s.cloud.peak_nodes.to_string(),
                s.cloud.final_ready.to_string(),
                s.cloud.nodes_booted.to_string(),
                s.cloud.nodes_retired.to_string(),
                f(s.cloud.cost_total, 2),
                f(s.mean_wait_secs, 1),
                f(s.max_wait_secs, 1),
            ]
        })
        .collect();
    let table = render_table(
        &[
            "Scenario", "Tasks", "Done", "Peak", "Final", "Booted", "Retired", "Cost", "Wait (s)",
            "Max wait",
        ],
        &rows,
    );
    println!("Elasticity bench — autoscaled cloud tier under bursty logical-heavy load\n{table}");

    let result = ElasticityResult {
        seed: opts.seed,
        scenarios: summaries,
    };
    opts.write_json("BENCH_elasticity", &result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_elasticity_run_emits_the_scaling_story() {
        let out_dir = std::env::temp_dir().join(format!("simdc-elastic-{}", std::process::id()));
        let opts = ExpOptions {
            quick: true,
            seed: 5,
            out_dir: out_dir.clone(),
            fleet: None,
            ..ExpOptions::default()
        };
        let result = run(&opts);
        assert_eq!(result.scenarios.len(), 2);
        let surge = &result.scenarios[0];
        let capped = &result.scenarios[1];
        assert_eq!(surge.scenario, "cloud_surge");
        assert_eq!(capped.scenario, "budget_capped");
        // The cap binds where the uncapped run was free to grow.
        assert!(capped.cloud.peak_nodes <= 6, "{:?}", capped.cloud);
        assert!(!surge.cloud.series.is_empty());
        let json = std::fs::read_to_string(out_dir.join("BENCH_elasticity.json")).unwrap();
        assert!(json.contains("peak_nodes"));
        assert!(json.contains("\"series\""));
        // Summaries (series included) are deterministic per seed.
        let again = run(&opts);
        assert_eq!(result.scenarios, again.scenarios);
        std::fs::remove_dir_all(&out_dir).ok();
    }
}
