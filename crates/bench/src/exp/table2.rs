//! Table II — similarity between user-defined traffic curves and
//! DeviceFlow's actual dispatch amounts (Pearson correlation > 0.99 for
//! every curve the paper lists).

use serde::Serialize;
use simdc_deviceflow::{discretize, Domain, TrafficFunction};
use simdc_types::SimDuration;

use crate::{f, render_table, ExpOptions};

/// One Table-II row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Curve label as printed in the paper.
    pub curve: String,
    /// Function domain.
    pub domain: (f64, f64),
    /// Pearson correlation between planned dispatch amounts and the curve.
    pub correlation: f64,
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics if a fixture curve fails discretization (a bug).
pub fn run(opts: &ExpOptions) -> Vec<Row> {
    let volume = if opts.quick { 2_000 } else { 10_000 };
    let six_pi = 6.0 * std::f64::consts::PI;
    let cases: Vec<(String, TrafficFunction, Domain)> = vec![
        (
            "N(0, 1)".into(),
            TrafficFunction::Normal { sigma: 1.0 },
            Domain::new(-4.0, 4.0).expect("valid domain"),
        ),
        (
            "N(0, 2)".into(),
            TrafficFunction::Normal { sigma: 2.0 },
            Domain::new(-4.0, 4.0).expect("valid domain"),
        ),
        (
            "sin(t)+1".into(),
            TrafficFunction::SinPlus1,
            Domain::new(0.0, six_pi).expect("valid domain"),
        ),
        (
            "cos(t)+1".into(),
            TrafficFunction::CosPlus1,
            Domain::new(0.0, six_pi).expect("valid domain"),
        ),
        (
            "2^t".into(),
            TrafficFunction::Exp2,
            Domain::new(0.0, 3.0).expect("valid domain"),
        ),
        (
            "10^t".into(),
            TrafficFunction::Exp10,
            Domain::new(0.0, 3.0).expect("valid domain"),
        ),
    ];

    let rows: Vec<Row> = cases
        .into_iter()
        .map(|(label, function, domain)| {
            let plan = discretize(&function, &domain, SimDuration::from_secs(60), volume, 700)
                .expect("fixture curves discretize");
            Row {
                curve: label,
                domain: (domain.start, domain.end),
                correlation: plan.correlation_with(&function, &domain),
            }
        })
        .collect();

    let table = render_table(
        &[
            "User-defined traffic curve",
            "Domain",
            "Correlation coefficient",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.curve.clone(),
                    format!("[{}, {}]", f(r.domain.0, 2), f(r.domain.1, 2)),
                    f(r.correlation, 3),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("Table II — user-defined curves vs actual dispatch\n{table}");
    opts.write_json("table2", &rows);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_correlations_exceed_0_99() {
        let opts = ExpOptions {
            quick: false,
            out_dir: std::env::temp_dir().join("simdc-table2-test"),
            ..ExpOptions::default()
        };
        let rows = run(&opts);
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(
                row.correlation > 0.99,
                "{}: r = {}",
                row.curve,
                row.correlation
            );
        }
        std::fs::remove_dir_all(&opts.out_dir).ok();
    }
}
