//! Fig 10 — rule-based dispatch strategies end to end.
//!
//! (a/b) specific time-point dispatching: bursts at user-set points, with
//! the single-threaded rate cap spilling overflow into subsequent seconds;
//! the cloud's cumulative intake forms the staircase of Fig 10(b).
//! (c/d) specific time-interval dispatching: a right-tailed `N(0,1)` curve
//! scaled to 1 minute / 10,000 messages; per-second send amounts track the
//! curve and the cloud receives all 10,000 within the interval.

use serde::Serialize;
use simdc_deviceflow::{
    DeviceFlow, DispatchStrategy, Dropout, FlowHarness, TimePointRule, TimeSpec, TrafficFunction,
};
use simdc_simrt::{pearson_correlation, RngStream};
use simdc_types::{
    DeviceId, Message, MessageId, RoundId, SimDuration, SimInstant, StorageKey, TaskId,
};

use crate::{f, render_table, ExpOptions};

/// The four panels.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10 {
    /// (a) `(second, amount)` sends of the time-point strategy.
    pub point_sends: Vec<(f64, u64)>,
    /// (b) `(second, cumulative received)` at the cloud.
    pub point_cumulative: Vec<(f64, u64)>,
    /// (c) `(second, amount)` sends of the time-interval strategy.
    pub interval_sends: Vec<(f64, u64)>,
    /// (d) `(second, cumulative received)` at the cloud.
    pub interval_cumulative: Vec<(f64, u64)>,
    /// Pearson r between (c) and the user curve.
    pub interval_correlation: f64,
}

fn message(i: u64, at: SimInstant) -> Message {
    Message::model_update(
        MessageId(i),
        TaskId(1),
        DeviceId(i),
        RoundId(0),
        1,
        StorageKey::for_update(TaskId(1), RoundId(0), DeviceId(i)),
        at,
    )
}

/// `(second, amount)` series: per-event sends and the cumulative intake.
type SendSeries = (Vec<(f64, u64)>, Vec<(f64, u64)>);

fn run_strategy(strategy: DispatchStrategy, volume: u64, seed: u64) -> SendSeries {
    let mut flow = DeviceFlow::new();
    flow.register_task(TaskId(1), strategy)
        .expect("valid strategy");
    let mut harness = FlowHarness::new(flow, RngStream::named(seed, "fig10"));
    let t0 = SimInstant::EPOCH;
    for i in 0..volume {
        harness.ingest_at(t0, message(i, t0));
    }
    harness.round_completed_at(t0 + SimDuration::from_micros(1), TaskId(1), RoundId(0));
    harness.run();

    let sends: Vec<(f64, u64)> = harness
        .delivered()
        .iter()
        .map(|b| (b.at.as_secs_f64(), b.messages.len() as u64))
        .collect();
    let mut cumulative = Vec::with_capacity(sends.len());
    let mut total = 0u64;
    for &(t, n) in &sends {
        total += n;
        cumulative.push((t, total));
    }
    (sends, cumulative)
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics on invalid strategies (a bug in the fixture).
pub fn run(opts: &ExpOptions) -> Fig10 {
    let volume = if opts.quick { 3_000 } else { 10_000 };

    // (a/b): three bursts at 10/25/40 s; the middle one exceeds the 700/s
    // cap so it spills into following seconds.
    let point = DispatchStrategy::TimePoints {
        points: vec![
            TimePointRule {
                at: TimeSpec::Relative(SimDuration::from_secs(10)),
                count: volume / 5,
                dropout: Dropout::NONE,
            },
            TimePointRule {
                at: TimeSpec::Relative(SimDuration::from_secs(25)),
                count: volume / 2,
                dropout: Dropout::NONE,
            },
            TimePointRule {
                at: TimeSpec::Relative(SimDuration::from_secs(40)),
                count: volume - volume / 5 - volume / 2,
                dropout: Dropout::NONE,
            },
        ],
    };
    let (point_sends, point_cumulative) = run_strategy(point, volume, opts.seed);

    // (c/d): right-tailed N(0,1) scaled to a 1-minute interval.
    let (function, domain) = TrafficFunction::right_tailed_normal(1.0);
    let interval = DispatchStrategy::TimeInterval {
        function: function.clone(),
        domain,
        start: TimeSpec::Relative(SimDuration::ZERO),
        interval: SimDuration::from_secs(60),
        dropout: Dropout::NONE,
    };
    let (interval_sends, interval_cumulative) = run_strategy(interval, volume, opts.seed + 1);

    let xs: Vec<f64> = interval_sends
        .iter()
        .map(|&(t, _)| function.eval(domain.lerp(t / 60.0)))
        .collect();
    let ys: Vec<f64> = interval_sends.iter().map(|&(_, n)| n as f64).collect();
    let interval_correlation = pearson_correlation(&xs, &ys);

    let result = Fig10 {
        point_sends,
        point_cumulative,
        interval_sends,
        interval_cumulative,
        interval_correlation,
    };

    println!("Fig 10 — rule-based dispatch strategies");
    let rows: Vec<Vec<String>> = vec![
        vec![
            "time-point".into(),
            result.point_sends.len().to_string(),
            result
                .point_cumulative
                .last()
                .map_or(0, |&(_, n)| n)
                .to_string(),
        ],
        vec![
            "time-interval".into(),
            result.interval_sends.len().to_string(),
            result
                .interval_cumulative
                .last()
                .map_or(0, |&(_, n)| n)
                .to_string(),
        ],
    ];
    println!(
        "{}",
        render_table(&["Mechanism", "Dispatch events", "Total received"], &rows)
    );
    println!(
        "  interval dispatch ↔ N(0,1) curve correlation: r = {}",
        f(result.interval_correlation, 4)
    );
    opts.write_json("fig10", &result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panels_match_paper_shape() {
        let opts = ExpOptions {
            quick: false,
            out_dir: std::env::temp_dir().join("simdc-fig10-test"),
            ..ExpOptions::default()
        };
        let r = run(&opts);

        // (a) sends cluster around the three points, capped at 700.
        assert!(r.point_sends.iter().all(|&(_, n)| n <= 700));
        // The 5,000-message burst at t=25 spills over several seconds
        // (Fig 10(b): "receives the full messages over a period spanning
        // the designated time point and subsequent certain intervals").
        let spill: Vec<_> = r
            .point_sends
            .iter()
            .filter(|&&(t, _)| (25.0..35.0).contains(&t))
            .collect();
        assert!(spill.len() >= 7, "5000 msgs / 700 per s: {}", spill.len());
        // (b) everything arrives.
        assert_eq!(r.point_cumulative.last().unwrap().1, 10_000);

        // (c) tracks the curve.
        assert!(
            r.interval_correlation > 0.99,
            "r = {}",
            r.interval_correlation
        );
        // (d) full volume within the minute (+ small spill tolerance).
        assert_eq!(r.interval_cumulative.last().unwrap().1, 10_000);
        assert!(r.interval_cumulative.last().unwrap().0 <= 61.0);
        std::fs::remove_dir_all(&opts.out_dir).ok();
    }
}
