//! Fig 11 — the impact of device dropout under different data
//! distributions.
//!
//! 1,000 devices, real-time dispatching with per-message failure
//! probability ∈ {0, 0.3, 0.7, 0.9}, timed (scheduled) aggregation,
//! 10 rounds:
//!
//! * **(a) identically distributed** shards — dropout barely moves test
//!   accuracy (surviving clients are statistically interchangeable);
//! * **(b) differentially distributed** shards (70% positive-heavy / 30%
//!   negative-heavy) — convergence destabilizes and test accuracy degrades
//!   as dropout grows.

use serde::Serialize;
use simdc_data::{
    iid_partition, label_skew_partition, CtrDataset, DeviceDataset, GeneratorConfig,
    LabelSkewConfig,
};
use simdc_deviceflow::{DeviceFlow, DispatchStrategy, FlowHarness};
use simdc_ml::{evaluate, FedAvg, KernelKind, LocalTrainer, LocalUpdate, LrModel};
use simdc_simrt::RngStream;
use simdc_types::{
    DeviceId, Message, MessageId, RoundId, SimDuration, SimInstant, StorageKey, TaskId,
};

use crate::{f, render_table, ExpOptions};

/// One `(distribution, dropout)` accuracy series.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// "identical" or "differential".
    pub distribution: String,
    /// Dropout probability.
    pub dropout: f64,
    /// Test accuracy after each round.
    pub accuracy: Vec<f64>,
}

const DROPOUTS: [f64; 4] = [0.0, 0.3, 0.7, 0.9];

fn run_config(
    shards: &[DeviceDataset],
    test: &CtrDataset,
    dropout: f64,
    rounds: u32,
    seed: u64,
) -> Vec<f64> {
    let trainer = LocalTrainer::new(super::visible_train_config());
    let mut global = LrModel::zeros(test.feature_dim);
    let mut accs = Vec::with_capacity(rounds as usize);

    // All updates flow through a real DeviceFlow with the paper's
    // real-time strategy and failure probability.
    let mut flow = DeviceFlow::new();
    flow.register_task(
        TaskId(1),
        DispatchStrategy::RealTimeAccumulated {
            thresholds: vec![1],
            failure_prob: dropout,
        },
    )
    .expect("valid strategy");
    let mut harness = FlowHarness::new(flow, RngStream::named(seed, "fig11/flow"));
    let mut delivered_seen = 0usize;
    let mut now = SimInstant::EPOCH;
    let round_len = SimDuration::from_secs(60);

    for r in 0..rounds {
        let round = RoundId(r);
        let updates: Vec<LocalUpdate> = shards
            .iter()
            .map(|d| trainer.train(&global, &d.data, KernelKind::Server))
            .collect();
        harness.run_until(now);
        harness.round_started(TaskId(1), round);
        for (i, (shard, update)) in shards.iter().zip(&updates).enumerate() {
            let at = now + SimDuration::from_millis(10 * i as u64 % 50_000);
            harness.ingest_at(
                at,
                Message::model_update(
                    MessageId(u64::from(r) * shards.len() as u64 + i as u64),
                    TaskId(1),
                    DeviceId(shard.device.0),
                    round,
                    update.n_samples,
                    StorageKey::for_update(TaskId(1), round, shard.device),
                    at,
                ),
            );
        }
        // Timed aggregation at the end of the round window.
        now += round_len;
        harness.run_until(now);
        let mut included = Vec::new();
        for batch in &harness.delivered()[delivered_seen..] {
            for m in &batch.messages {
                if m.round == round {
                    let idx = shards
                        .iter()
                        .position(|s| s.device.0 == m.device.0)
                        .expect("message from a known shard");
                    included.push(updates[idx].clone());
                }
            }
        }
        delivered_seen = harness.delivered().len();
        if !included.is_empty() {
            global = FedAvg::aggregate(&included).expect("non-empty aggregate");
        }
        accs.push(evaluate(&global, &test.test).accuracy);
    }
    accs
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics on internal aggregation errors.
pub fn run(opts: &ExpOptions) -> Vec<Series> {
    let n_devices = if opts.quick { 200 } else { 1_000 };
    let rounds = if opts.quick { 6 } else { 10 };
    let base = CtrDataset::generate(&GeneratorConfig {
        n_devices,
        n_test_devices: 60,
        mean_records_per_device: 20.0,
        feature_dim: 1 << 12,
        // Balanced labels so accuracy reflects learning (and so the 70/30
        // skew targets of Fig 11(b) are reachable from the pool).
        ctr_alpha: 2.0,
        ctr_beta: 2.0,
        seed: opts.seed,
        ..GeneratorConfig::default()
    });

    let mut rng = RngStream::named(opts.seed, "fig11/partition");
    let identical = iid_partition(&base.devices, n_devices, &mut rng);
    let differential = label_skew_partition(
        &base.devices,
        n_devices,
        &LabelSkewConfig::default(),
        &mut rng,
    );

    let mut series = Vec::new();
    for (name, shards) in [("identical", &identical), ("differential", &differential)] {
        for &p in &DROPOUTS {
            let accuracy = run_config(shards, &base, p, rounds, opts.seed ^ p.to_bits());
            series.push(Series {
                distribution: name.into(),
                dropout: p,
                accuracy,
            });
        }
    }

    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|s| {
            vec![
                s.distribution.clone(),
                format!("{:.1}", s.dropout),
                f(*s.accuracy.last().expect("rounds ran"), 4),
                f(spread(&s.accuracy), 4),
            ]
        })
        .collect();
    println!(
        "Fig 11 — dropout impact by data distribution\n{}",
        render_table(
            &[
                "Distribution",
                "Dropout",
                "Final test ACC",
                "ACC spread (last half)"
            ],
            &rows
        )
    );
    opts.write_json("fig11", &series);
    series
}

/// Max−min of the last half of a series (convergence instability measure).
fn spread(acc: &[f64]) -> f64 {
    let tail = &acc[acc.len() / 2..];
    let max = tail.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = tail.iter().cloned().fold(f64::INFINITY, f64::min);
    max - min
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropout_hurts_only_under_label_skew() {
        let opts = ExpOptions {
            quick: true,
            out_dir: std::env::temp_dir().join("simdc-fig11-test"),
            ..ExpOptions::default()
        };
        let series = run(&opts);
        assert_eq!(series.len(), 8);
        let find = |dist: &str, p: f64| {
            series
                .iter()
                .find(|s| s.distribution == dist && (s.dropout - p).abs() < 1e-9)
                .unwrap()
        };
        // (a) identical: negligible difference between p=0 and p=0.9.
        let iid_gap = (find("identical", 0.0).accuracy.last().unwrap()
            - find("identical", 0.9).accuracy.last().unwrap())
        .abs();
        assert!(iid_gap < 0.05, "IID dropout gap {iid_gap}");
        // (b) differential: high dropout destabilizes convergence more than
        // no dropout (spread grows with p).
        let skew_stable = spread(&find("differential", 0.0).accuracy);
        let skew_unstable = spread(&find("differential", 0.9).accuracy);
        assert!(
            skew_unstable > skew_stable,
            "spread p=0 {skew_stable} vs p=0.9 {skew_unstable}"
        );
        std::fs::remove_dir_all(&opts.out_dir).ok();
    }
}
