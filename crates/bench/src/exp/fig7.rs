//! Fig 7 — single-task execution time vs scale for the five fixed
//! allocation ratios and the hybrid allocation optimizer.
//!
//! The paper's shape: at small scales physical execution is dominated by
//! APK/framework startup so logical-heavy allocations win; at large scales
//! the per-round train time dominates and the phone operators' faster
//! underlying implementation pays off; the optimizer's red line sits at or
//! below every fixed ratio everywhere.

use serde::Serialize;
use simdc_cluster::{ClusterConfig, LogicalCluster};
use simdc_core::runner::TaskRunner;
use simdc_core::{AllocationPolicy, TaskSpec};

use crate::{f, render_table, ExpOptions};

/// One measured execution time.
#[derive(Debug, Clone, Serialize)]
pub struct Point {
    /// Devices per grade.
    pub scale: u64,
    /// "Type 1"… "Type 5" or "Optimization".
    pub series: String,
    /// Task execution time in seconds (per §IV-B's `T = max(Tl, Tp)`).
    pub time_secs: f64,
}

const FRACTIONS: [f64; 5] = [1.0, 0.75, 0.5, 0.25, 0.0];

/// Runs the experiment.
///
/// # Panics
///
/// Panics if allocation planning fails for the standard specs.
pub fn run(opts: &ExpOptions) -> Vec<Point> {
    let scales: &[u64] = if opts.quick {
        &[4, 20, 100]
    } else {
        &[4, 20, 100, 500]
    };
    let cluster = LogicalCluster::new(ClusterConfig::default());
    let runner = TaskRunner::default();

    let mut points = Vec::new();
    for &scale in scales {
        let mut policies: Vec<(String, AllocationPolicy)> = FRACTIONS
            .iter()
            .enumerate()
            .map(|(i, &frac)| {
                (
                    format!("Type {}", i + 1),
                    AllocationPolicy::FixedLogicalFraction(frac),
                )
            })
            .collect();
        policies.push(("Optimization".into(), AllocationPolicy::Optimized));

        for (name, policy) in policies {
            let mut spec: TaskSpec = super::two_grade_spec(1, scale, 0);
            spec.allocation = policy;
            let allocation = runner
                .plan_allocation(&spec, &cluster)
                .expect("allocation plans");
            points.push(Point {
                scale,
                series: name,
                time_secs: allocation.task_time.as_secs_f64(),
            });
        }
    }

    let table = render_table(
        &["Scale", "Series", "Execution time (s)"],
        &points
            .iter()
            .map(|p| {
                vec![
                    format!("({0},{0})", p.scale),
                    p.series.clone(),
                    f(p.time_secs, 1),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("Fig 7 — execution time vs scale (Types 1–5 + optimizer)\n{table}");
    opts.write_json("fig7", &points);
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimizer_dominates_every_fixed_ratio() {
        let opts = ExpOptions {
            quick: false,
            out_dir: std::env::temp_dir().join("simdc-fig7-test"),
            ..ExpOptions::default()
        };
        let points = run(&opts);
        for scale in [4u64, 20, 100, 500] {
            let opt = points
                .iter()
                .find(|p| p.scale == scale && p.series == "Optimization")
                .unwrap()
                .time_secs;
            for p in points.iter().filter(|p| p.scale == scale) {
                assert!(
                    opt <= p.time_secs + 1e-9,
                    "optimizer ({opt}s) beaten by {} ({}s) at scale {scale}",
                    p.series,
                    p.time_secs
                );
            }
        }
        std::fs::remove_dir_all(&opts.out_dir).ok();
    }

    #[test]
    fn small_scale_logical_beats_phones_large_scale_narrows() {
        let opts = ExpOptions {
            quick: false,
            out_dir: std::env::temp_dir().join("simdc-fig7-test2"),
            ..ExpOptions::default()
        };
        let points = run(&opts);
        let time = |scale: u64, series: &str| {
            points
                .iter()
                .find(|p| p.scale == scale && p.series == series)
                .unwrap()
                .time_secs
        };
        // Small scale: all-logical (Type 1) beats all-physical (Type 5),
        // which pays the λ framework startup.
        assert!(time(4, "Type 1") < time(4, "Type 5"));
        // Large scale: the crossover of §VI-B.3 — the phones' faster
        // operator implementation wins once startup amortizes.
        assert!(
            time(500, "Type 5") < time(500, "Type 1"),
            "Type 5 {} vs Type 1 {} at (500,500)",
            time(500, "Type 5"),
            time(500, "Type 1")
        );
        std::fs::remove_dir_all(&opts.out_dir).ok();
    }
}
