//! Scenario suite — the workload library beyond the paper's fixed
//! experiments.
//!
//! Runs every scenario in [`simdc_workload::library`] against a fresh
//! paper-default platform and reports per-scenario throughput, queueing,
//! fleet-perturbation and accuracy figures. The whole suite derives from
//! one seed: rerunning with the same seed writes byte-identical JSON
//! (the CI determinism gate `diff`s two runs), while a different seed
//! yields different task arrivals (`arrival_preview_secs`).

use std::sync::Arc;

use simdc_core::PlatformConfig;
use simdc_workload::{library, ScenarioSummary};

use crate::{f, render_table, ExpOptions};

/// Runs the scenario suite.
///
/// # Panics
///
/// Panics if a library scenario fails validation (a bug in the library,
/// not an input error).
pub fn run(opts: &ExpOptions) -> Vec<ScenarioSummary> {
    // Quick mode shrinks the arrival horizon; the scenario set is fixed.
    let scale = if opts.quick { 0.3 } else { 1.0 };
    let data = Arc::new(super::standard_dataset(120, opts.seed));

    let mut summaries = Vec::new();
    for scenario in library() {
        let scenario = scenario.scaled(scale);
        let config = PlatformConfig {
            seed: opts.seed,
            ..PlatformConfig::default()
        };
        summaries.push(scenario.run(config, &data, opts.seed));
    }

    let table = render_table(
        &[
            "Scenario", "Tasks", "Done", "Fail", "Crash", "Wait (s)", "Run (s)", "Acc",
        ],
        &summaries
            .iter()
            .map(|s| {
                vec![
                    s.scenario.clone(),
                    s.submitted.to_string(),
                    s.completed.to_string(),
                    s.failed.to_string(),
                    s.crashes.to_string(),
                    f(s.mean_wait_secs, 1),
                    f(s.mean_run_secs, 1),
                    f(s.mean_final_accuracy, 3),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("Scenario suite — workload library over the paper-default platform\n{table}");
    opts.write_json("scenarios", &summaries);
    summaries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_covers_library_and_is_deterministic() {
        let out_dir = std::env::temp_dir().join(format!("simdc-scenarios-{}", std::process::id()));
        let opts = ExpOptions {
            quick: true,
            seed: 11,
            out_dir: out_dir.clone(),
            ..ExpOptions::default()
        };
        let first = run(&opts);
        assert_eq!(first.len(), 8, "one summary per library scenario");
        for s in &first {
            assert_eq!(s.completed + s.failed, s.submitted, "{s:?}");
        }
        // At least one scenario must actually process work and one must
        // perturb the fleet, otherwise the suite stopped testing anything.
        assert!(first.iter().any(|s| s.completed > 0));
        assert!(first.iter().any(|s| s.crashes > 0));
        let first_json = std::fs::read_to_string(out_dir.join("scenarios.json")).unwrap();
        let second = run(&opts);
        let second_json = std::fs::read_to_string(out_dir.join("scenarios.json")).unwrap();
        assert_eq!(first, second);
        assert_eq!(first_json, second_json, "same seed must be byte-identical");
        // A different seed changes the sampled workload.
        let other = run(&ExpOptions {
            seed: 12,
            ..opts.clone()
        });
        assert_ne!(
            first
                .iter()
                .map(|s| &s.arrival_preview_secs)
                .collect::<Vec<_>>(),
            other
                .iter()
                .map(|s| &s.arrival_preview_secs)
                .collect::<Vec<_>>(),
        );
        std::fs::remove_dir_all(&out_dir).ok();
    }
}
