//! Fig 5 — CPU and memory usage of one benchmarking device over the first
//! three training rounds (with the waiting-for-aggregation gaps left
//! blank, as in the paper).

use std::sync::Arc;

use serde::Serialize;
use simdc_core::{Platform, PlatformConfig};
use simdc_types::TaskId;

use crate::{f, ExpOptions};

/// The two traces of Fig 5.
#[derive(Debug, Clone, Serialize)]
pub struct Traces {
    /// `(seconds since task start, cpu %)` samples.
    pub cpu: Vec<(f64, f64)>,
    /// `(seconds since task start, memory MB)` samples.
    pub mem: Vec<(f64, f64)>,
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics if the platform rejects the spec.
pub fn run(opts: &ExpOptions) -> Traces {
    let data = Arc::new(super::standard_dataset(100, opts.seed));
    let mut platform = Platform::new(PlatformConfig {
        seed: opts.seed,
        ..PlatformConfig::default()
    });
    let mut spec = super::two_grade_spec(1, 40, 1);
    spec.rounds = 3;
    platform.submit(spec, data).expect("submit fig5 task");
    platform.run_until_idle();
    let report = platform.report(TaskId(1)).expect("task completed");
    let bench = report
        .benchmark_reports
        .first()
        .expect("one benchmark phone measured");

    let start = report.started_at;
    let to_xy = |series: &simdc_simrt::TimeSeries| {
        series
            .iter()
            .map(|(t, v)| (t.duration_since(start).as_secs_f64(), v))
            .collect::<Vec<_>>()
    };
    let traces = Traces {
        cpu: to_xy(&bench.cpu_series),
        mem: to_xy(&bench.mem_series),
    };

    let cpu_stats = bench.cpu_series.stats();
    let mem_stats = bench.mem_series.stats();
    println!("Fig 5 — CPU / memory during the first three training rounds");
    println!(
        "  cpu:    {} samples, range {}–{} %, mean {} %",
        cpu_stats.count,
        f(cpu_stats.min, 1),
        f(cpu_stats.max, 1),
        f(cpu_stats.mean, 1)
    );
    println!(
        "  memory: {} samples, range {}–{} MB, mean {} MB",
        mem_stats.count,
        f(mem_stats.min, 1),
        f(mem_stats.max, 1),
        f(mem_stats.mean, 1)
    );
    println!(
        "  rounds measured: {} (gaps between training windows carry no samples)",
        report.rounds.len()
    );
    opts.write_json("fig5", &traces);
    traces
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_match_fig5_envelope() {
        let opts = ExpOptions {
            quick: true,
            out_dir: std::env::temp_dir().join("simdc-fig5-test"),
            ..ExpOptions::default()
        };
        let traces = run(&opts);
        assert!(traces.cpu.len() > 50);
        // CPU during training peaks in the paper's 4–13 % band.
        let max_cpu = traces.cpu.iter().map(|&(_, v)| v).fold(0.0, f64::max);
        assert!((4.0..16.0).contains(&max_cpu), "max cpu {max_cpu}");
        // Memory ramps into the 10–50 MB band.
        let max_mem = traces.mem.iter().map(|&(_, v)| v).fold(0.0, f64::max);
        assert!((20.0..55.0).contains(&max_mem), "max mem {max_mem}");
        // Samples are time-ordered with gaps (waiting windows skipped).
        let mut last = -1.0;
        for &(t, _) in &traces.cpu {
            assert!(t >= last);
            last = t;
        }
        std::fs::remove_dir_all(&opts.out_dir).ok();
    }
}
