//! Shared plumbing for the SimDC experiment harness.
//!
//! Every table and figure of the paper's evaluation has a dedicated binary
//! in `src/bin/` (see `DESIGN.md` → "Experiment index"); this library holds
//! the bits they share: CLI parsing, result serialization and small
//! text-rendering helpers.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::path::PathBuf;

use serde::Serialize;

pub mod exp;

/// Common command-line options of every experiment binary.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Root RNG seed.
    pub seed: u64,
    /// Scale experiment knobs down for smoke testing.
    pub quick: bool,
    /// Where to write the JSON result (default `results/<name>.json`).
    pub out_dir: PathBuf,
    /// Phone-fleet size override for the scale experiments (`--fleet N`);
    /// experiments without a fleet knob ignore it.
    pub fleet: Option<usize>,
    /// Largest worker-thread count for the scale experiment's sweep
    /// (`--threads N`); experiments without a thread axis ignore it.
    pub threads: Option<usize>,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            seed: 0x51AD_C0DE,
            quick: false,
            out_dir: PathBuf::from("results"),
            fleet: None,
            threads: None,
        }
    }
}

impl ExpOptions {
    /// Parses `--seed N`, `--quick`, `--out DIR`, `--fleet N` and
    /// `--threads N` from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments (these are
    /// developer-facing binaries).
    #[must_use]
    pub fn from_args() -> Self {
        let mut opts = ExpOptions::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--seed" => {
                    let v = args.next().expect("--seed needs a value");
                    opts.seed = v.parse().expect("--seed must be an integer");
                }
                "--quick" => opts.quick = true,
                "--out" => {
                    opts.out_dir = PathBuf::from(args.next().expect("--out needs a value"));
                }
                "--fleet" => {
                    let v = args.next().expect("--fleet needs a value");
                    opts.fleet = Some(v.parse().expect("--fleet must be an integer"));
                }
                "--threads" => {
                    let v = args.next().expect("--threads needs a value");
                    opts.threads = Some(v.parse().expect("--threads must be an integer"));
                }
                other => {
                    panic!(
                        "unknown argument '{other}' \
                         (supported: --seed N, --quick, --out DIR, --fleet N, --threads N)"
                    )
                }
            }
        }
        opts
    }

    /// Writes `value` as pretty JSON to `<out_dir>/<name>.json` and returns
    /// the path.
    ///
    /// # Panics
    ///
    /// Panics on I/O or serialization failure (experiment binaries want
    /// loud failures).
    pub fn write_json<T: Serialize>(&self, name: &str, value: &T) -> PathBuf {
        std::fs::create_dir_all(&self.out_dir).expect("create results directory");
        let path = self.out_dir.join(format!("{name}.json"));
        let json = serde_json::to_string_pretty(value).expect("serialize result");
        std::fs::write(&path, json).expect("write result file");
        path
    }
}

/// Renders a text table with a header row (every experiment binary prints
/// its paper-table analog this way).
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| (*s).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with fixed decimals for table cells.
#[must_use]
pub fn f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let table = render_table(
            &["name", "value"],
            &[
                vec!["alpha".into(), "1".into()],
                vec!["b".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        let lens: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{table}");
        assert!(table.contains("| alpha | 1     |"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.12349, 3), "0.123");
        assert_eq!(f(2.0, 1), "2.0");
    }

    #[test]
    fn write_json_creates_file() {
        let dir = std::env::temp_dir().join(format!("simdc-bench-test-{}", std::process::id()));
        let opts = ExpOptions {
            out_dir: dir.clone(),
            ..ExpOptions::default()
        };
        let path = opts.write_json("probe", &vec![1, 2, 3]);
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains('1'));
        std::fs::remove_dir_all(dir).ok();
    }
}
