//! Workspace-level self-tests: the real tree is clean under the real
//! policy, and the CLI's exit codes hold on seeded mini-workspaces.

use std::path::{Path, PathBuf};
use std::process::Command;

use simdc_simlint::{lint_workspace, Config};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

/// The gate this whole crate exists for: the SimDC tree has zero
/// findings under the committed `simlint.toml`.
#[test]
fn the_workspace_is_clean() {
    let root = workspace_root();
    let config = Config::load(&root).expect("simlint.toml parses");
    let report = lint_workspace(&root, &config).expect("scan succeeds");
    assert!(
        report.findings.is_empty(),
        "workspace has simlint findings:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the scan actually covered the tree (all 12 crates + root).
    assert!(
        report.files_scanned > 80,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}

/// Builds a throwaway mini-workspace containing `lib_source` as the only
/// crate and returns the CLI's (exit_code, stdout).
fn run_cli_on(tag: &str, lib_source: &str) -> (i32, String) {
    let root = std::env::temp_dir().join(format!("simlint-cli-{}-{tag}", std::process::id()));
    let src = root.join("crates/demo/src");
    std::fs::create_dir_all(&src).expect("create mini workspace");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    std::fs::write(src.join("lib.rs"), lib_source).expect("write lib.rs");
    let out = Command::new(env!("CARGO_BIN_EXE_simdc-simlint"))
        .args(["--workspace", "--root"])
        .arg(&root)
        .output()
        .expect("binary runs");
    let _ = std::fs::remove_dir_all(&root);
    (
        out.status.code().expect("exit code"),
        String::from_utf8(out.stdout).expect("utf8 stdout"),
    )
}

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).expect("fixture exists")
}

#[test]
fn cli_exits_zero_on_a_clean_tree() {
    let (code, stdout) = run_cli_on("clean", &fixture("clean.rs"));
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("simlint: clean"), "{stdout}");
}

#[test]
fn cli_exits_nonzero_on_each_seeded_rule_family() {
    for name in [
        "d1_hash.rs",
        "d2_wallclock.rs",
        "d3_lifecycle.rs",
        "d4_hygiene.rs",
    ] {
        let (code, stdout) = run_cli_on(name, &fixture(name));
        assert_eq!(code, 1, "{name} must fail the gate:\n{stdout}");
        assert!(
            stdout.contains("crates/demo/src/lib.rs:"),
            "{name} diagnostics must point into the mini workspace:\n{stdout}"
        );
        assert!(stdout.contains("finding(s)"), "{name}: {stdout}");
    }
}

#[test]
fn cli_rejects_bad_usage_and_bad_config() {
    let out = Command::new(env!("CARGO_BIN_EXE_simdc-simlint"))
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(2),
        "missing --workspace is usage error"
    );

    let root = std::env::temp_dir().join(format!("simlint-badcfg-{}", std::process::id()));
    std::fs::create_dir_all(root.join("crates")).expect("create root");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    std::fs::write(root.join("simlint.toml"), "[rules.nope]\nallowed = 3\n").expect("write config");
    let out = Command::new(env!("CARGO_BIN_EXE_simdc-simlint"))
        .args(["--workspace", "--root"])
        .arg(&root)
        .output()
        .expect("binary runs");
    let _ = std::fs::remove_dir_all(&root);
    assert_eq!(out.status.code(), Some(2), "bad config is a hard error");
}
