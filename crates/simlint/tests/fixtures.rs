//! Fixture suite: each rule family has a seeded-violation file under
//! `tests/fixtures/`, and the exact rendered diagnostics are pinned —
//! message wording is part of the tool's contract (CI logs are read by
//! humans chasing a red build).

use std::path::Path;

use simdc_simlint::{lint_file, Config, FileContext};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).expect("fixture exists")
}

/// The workspace policy, inlined so fixture expectations are
/// self-contained (and so a future edit to the real simlint.toml cannot
/// silently change what these tests assert).
fn policy() -> Config {
    Config::parse(
        r#"
[rules.unwrap-in-lib]
allow_expect = true

[rules.freeze-release]
receivers = ["rm"]
callers = ["crates/core/src/scheduler.rs", "crates/core/src/platform.rs"]

[rules.task-state]
owners = ["crates/core/src/queue.rs"]
guard = "TaskState"
"#,
    )
    .expect("policy parses")
}

fn render(name: &str, ctx: &FileContext, cfg: &Config) -> Vec<String> {
    lint_file(name, &fixture(name), ctx, cfg)
        .iter()
        .map(ToString::to_string)
        .collect()
}

#[test]
fn clean_fixture_has_zero_findings() {
    // Strictest config except allow_expect (the workspace policy); the
    // clean file must pass even as a crate root.
    let ctx = FileContext {
        is_crate_root: true,
        crate_has_doc_gate: false,
    };
    assert_eq!(render("clean.rs", &ctx, &policy()), Vec::<String>::new());
}

#[test]
fn d1_unordered_collections() {
    let ctx = FileContext::default();
    assert_eq!(
        render("d1_hash.rs", &ctx, &policy()),
        vec![
            "d1_hash.rs:3:24: [D1/hash-collections] `HashMap` iterates in hasher order — use `BTreeMap` or an ordered index so same-seed runs stay byte-identical",
            "d1_hash.rs:3:33: [D1/hash-collections] `HashSet` iterates in hasher order — use `BTreeSet` or an ordered index so same-seed runs stay byte-identical",
            "d1_hash.rs:7:13: [D1/hash-collections] `HashMap` iterates in hasher order — use `BTreeMap` or an ordered index so same-seed runs stay byte-identical",
            "d1_hash.rs:8:14: [D1/hash-collections] `HashSet` iterates in hasher order — use `BTreeSet` or an ordered index so same-seed runs stay byte-identical",
        ]
    );
}

#[test]
fn d2_wall_clock_and_entropy() {
    let ctx = FileContext::default();
    assert_eq!(
        render("d2_wallclock.rs", &ctx, &policy()),
        vec![
            "d2_wallclock.rs:3:16: [D2/wall-clock] wall-clock `Instant` in simulation code — virtual time comes from `SimInstant` and the event loop (measurement harnesses belong under a `[workspace] harness` prefix in simlint.toml)",
            "d2_wallclock.rs:7:17: [D2/wall-clock] wall-clock `Instant` in simulation code — virtual time comes from `SimInstant` and the event loop (measurement harnesses belong under a `[workspace] harness` prefix in simlint.toml)",
            "d2_wallclock.rs:8:24: [D2/ambient-entropy] ambient randomness `thread_rng` — seed a deterministic RNG (`simdc_simrt::SimRng`) explicitly so runs replay",
            "d2_wallclock.rs:9:22: [D2/ambient-entropy] environment-dependent `env::var` — thread configuration through explicit config structs so behavior is a function of inputs",
        ]
    );
}

#[test]
fn d2_is_waived_under_a_harness_prefix() {
    let mut cfg = policy();
    cfg.harness = vec!["bench".into()];
    let source = fixture("d2_wallclock.rs");
    let findings = lint_file(
        "bench/d2_wallclock.rs",
        &source,
        &FileContext::default(),
        &cfg,
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn d3_lifecycle_discipline() {
    let ctx = FileContext::default();
    assert_eq!(
        render("d3_lifecycle.rs", &ctx, &policy()),
        vec![
            "d3_lifecycle.rs:7:12: [D3/task-state] task state assigned directly — route the transition through the `mark_*` APIs (crates/core/src/queue.rs) so terminal states stay terminal",
            "d3_lifecycle.rs:8:8: [D3/freeze-release] lease `rm.release` outside the plan/commit pairing points (crates/core/src/scheduler.rs, crates/core/src/platform.rs) — freezes happen at admission, releases at the completion event, nowhere else",
            "d3_lifecycle.rs:13:16: [D3/freeze-release] lease `rm.freeze` outside the plan/commit pairing points (crates/core/src/scheduler.rs, crates/core/src/platform.rs) — freezes happen at admission, releases at the completion event, nowhere else",
        ]
    );
}

#[test]
fn d4_hygiene() {
    // As a crate root of a crate without the doc gate, with the strict
    // (default) expect policy: both gates missing, one unwrap, one
    // undocumented pub fn, one expect.
    let ctx = FileContext {
        is_crate_root: true,
        crate_has_doc_gate: false,
    };
    assert_eq!(
        render("d4_hygiene.rs", &ctx, &Config::default()),
        vec![
            "d4_hygiene.rs:1:1: [D4/lint-gates] crate root lacks `#![deny(missing_docs)]` — every public item must explain itself",
            "d4_hygiene.rs:1:1: [D4/lint-gates] crate root lacks `#![forbid(unsafe_code)]` — the simulator is safe-Rust only",
            "d4_hygiene.rs:6:11: [D4/unwrap-in-lib] `unwrap()` in library code — propagate the error or use `expect(\"invariant\")` to document why this cannot fail",
            "d4_hygiene.rs:9:1: [D4/pub-docs] public `fn` without a doc comment — document it (the crate is not yet under `#![deny(missing_docs)]`)",
            "d4_hygiene.rs:10:11: [D4/unwrap-in-lib] `expect()` in library code — propagate the error instead (set `allow_expect = true` under [rules.unwrap-in-lib] to accept invariant-documenting expects)",
        ]
    );
}

#[test]
fn d4_expect_waived_by_policy_and_docs_by_gate() {
    let ctx = FileContext {
        is_crate_root: false,
        crate_has_doc_gate: true,
    };
    assert_eq!(
        render("d4_hygiene.rs", &ctx, &policy()),
        vec![
            "d4_hygiene.rs:6:11: [D4/unwrap-in-lib] `unwrap()` in library code — propagate the error or use `expect(\"invariant\")` to document why this cannot fail",
        ],
        "with allow_expect and the doc gate, only the bare unwrap remains"
    );
}
