//! Property test for the taint-summary fixpoint: random whole programs
//! of single-expression functions (literal / param passthrough / rng
//! draw / float cast / call-through, cycles included) and an independent
//! oracle that evaluates the same grammar to its own fixpoint. The
//! linter's per-function summaries must agree exactly — mask and
//! param-carry — on every function.

use proptest::prelude::*;
use simdc_simlint::{function_summaries, Config, DRAWN, FLOATY};

const STREAM_DEF: &str = "struct RngStream { state: u64 }\nimpl RngStream {\n    fn named(seed: u64, label: &str) -> RngStream { RngStream { state: seed ^ label.len() as u64 } }\n    fn next_u64(&mut self) -> u64 { self.state = self.state.wrapping_mul(3); self.state }\n}\n";

/// One generated function body.
#[derive(Clone, Copy, Debug)]
enum Body {
    /// `7` — no taint.
    Lit,
    /// `a` — carries parameter 0.
    Param,
    /// `rng.next_u64()` — drawn.
    Draw,
    /// `1.5 as u64` — float evidence.
    Float,
    /// `f{j}(a, rng)` — whatever the callee's summary says.
    Call(usize),
}

fn render(bodies: &[Body]) -> String {
    let mut src = String::from(STREAM_DEF);
    for (i, b) in bodies.iter().enumerate() {
        let expr = match b {
            Body::Lit => "7".to_string(),
            Body::Param => "a".to_string(),
            Body::Draw => "rng.next_u64()".to_string(),
            Body::Float => "1.5 as u64".to_string(),
            Body::Call(j) => format!("f{j}(a, rng)"),
        };
        src.push_str(&format!(
            "fn f{i}(a: u64, rng: &mut RngStream) -> u64 {{ {expr} }}\n"
        ));
    }
    src
}

/// The oracle: iterate `(ret kind mask, carries param 0)` per function
/// to a fixpoint straight off the generated grammar. A draw result does
/// NOT carry its receiver (the kind already says everything), so the
/// `rng` parameter never flows into any return value under this grammar.
fn oracle(bodies: &[Body]) -> Vec<(u8, bool)> {
    let n = bodies.len();
    let mut out = vec![(0u8, false); n];
    loop {
        let mut changed = false;
        for i in 0..n {
            let next = match bodies[i] {
                Body::Lit => (0, false),
                Body::Param => (0, true),
                Body::Draw => (DRAWN, false),
                Body::Float => (FLOATY, false),
                Body::Call(j) => out[j],
            };
            let merged = (out[i].0 | next.0, out[i].1 | next.1);
            if merged != out[i] {
                out[i] = merged;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    out
}

proptest! {
    #[test]
    fn summaries_match_the_whole_program_oracle(
        raw in proptest::collection::vec((0u8..5, 0u8..32), 1..12),
    ) {
        let n = raw.len();
        let bodies: Vec<Body> = raw
            .iter()
            .map(|&(k, j)| match k {
                0 => Body::Lit,
                1 => Body::Param,
                2 => Body::Draw,
                3 => Body::Float,
                _ => Body::Call(j as usize % n),
            })
            .collect();
        let files = vec![("crates/a/src/lib.rs".to_string(), render(&bodies))];
        let summaries = function_summaries(&files, &Config::default());
        let want = oracle(&bodies);
        for (i, &(mask, carries)) in want.iter().enumerate() {
            let s = &summaries[&format!("f{i}")];
            prop_assert_eq!(s.ret_mask, mask, "f{} mask, bodies {:?}", i, bodies);
            prop_assert_eq!(
                s.ret_params.first().copied().unwrap_or(false),
                carries,
                "f{} param-0 carry, bodies {:?}", i, bodies
            );
            prop_assert!(
                !s.ret_params.get(1).copied().unwrap_or(false),
                "f{}: the rng param must never flow to ret under this grammar, bodies {:?}",
                i, bodies
            );
        }
    }
}
