//! P-rule suite: the seeded fixture *workspaces* under
//! `tests/fixtures/p_violations` and `tests/fixtures/p_clean` pin the
//! call-graph analysis end to end — every P-rule fires with an exact,
//! path-naming diagnostic on the seeded tree and stays silent on its
//! pure twin. A final test proves the acceptance criterion on the real
//! tree: moving a lease release into the compute phase is caught.

use std::path::{Path, PathBuf};
use std::process::Command;

use simdc_simlint::{analyze_sources, lint_workspace, Config};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn scan(name: &str) -> Vec<String> {
    let root = fixture_root(name);
    let cfg = Config::load(&root).expect("fixture simlint.toml parses");
    let report = lint_workspace(&root, &cfg).expect("fixture scan succeeds");
    report.findings.iter().map(ToString::to_string).collect()
}

/// Every P-rule fires on the seeded workspace, and the rendered
/// diagnostics — including the entry → callee paths — are pinned
/// verbatim. Message wording is contract: CI logs are read by humans
/// chasing a red build.
#[test]
fn seeded_workspace_pins_every_p_rule_diagnostic() {
    assert_eq!(
        scan("p_violations"),
        vec![
            "crates/demo/src/lib.rs:38:28: [P2/interior-mutability] worker-reachable code constructs interior mutability `Mutex::new` — path: `Worker::build` → `Worker::tally`; worker results must be pure functions of (input, seed)",
            "crates/demo/src/lib.rs:40:30: [P2/interior-mutability] worker-reachable code uses interior mutability `Mutex::lock` — path: `Worker::build` → `Worker::tally`; worker results must be pure functions of (input, seed)",
            "crates/demo/src/lib.rs:43:34: [P3/unordered-iteration] worker-reachable iteration over unordered `HashMap` state (`.iter()`) — path: `Worker::build` → `Worker::tally`; iteration order would vary run to run",
            "crates/demo/src/lib.rs:51:17: [D3/freeze-release] lease `rm.release` outside the plan/commit pairing points () — freezes happen at admission, releases at the completion event, nowhere else",
            "crates/demo/src/lib.rs:51:17: [P1/shared-mutation] worker-reachable shared mutation `ResourceManager::release` — path: `Worker::build` → `Worker::finish`; shared state may only change in the serial prepare/merge phases (simlint.toml [rules.worker-purity])",
            "crates/demo/src/lib.rs:57:5: [P4/unregistered-spawner] worker fan-out `run_batch` outside the registered spawner sites () — every parallel region must be a reviewed prepare/compute/merge split (simlint.toml [rules.worker-purity] spawner_sites)",
            "simlint.toml:1:1: [P0/unresolved-config] [rules.worker-purity] entry `Ghost::missing` matches no function in the workspace — fix the spec or remove the stale entry",
        ]
    );
}

/// The pure twin — same policy surface, ordered containers, registered
/// spawner site — has zero findings.
#[test]
fn clean_workspace_has_zero_findings() {
    assert_eq!(scan("p_clean"), Vec::<String>::new());
}

/// The CLI gate holds on both fixture workspaces, and `--format json`
/// on the clean one reproduces the committed-baseline document byte for
/// byte.
#[test]
fn cli_gate_and_json_baseline_on_fixture_workspaces() {
    let run = |name: &str, format: &str| {
        let out = Command::new(env!("CARGO_BIN_EXE_simdc-simlint"))
            .args(["--workspace", "--format", format, "--root"])
            .arg(fixture_root(name))
            .output()
            .expect("binary runs");
        (
            out.status.code().expect("exit code"),
            String::from_utf8(out.stdout).expect("utf8 stdout"),
        )
    };

    let (code, stdout) = run("p_violations", "text");
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("[P1/shared-mutation]"), "{stdout}");

    let (code, json) = run("p_violations", "json");
    assert_eq!(code, 1, "{json}");
    assert!(
        json.contains("\"code\": \"P4/unregistered-spawner\""),
        "{json}"
    );

    let (code, json) = run("p_clean", "json");
    assert_eq!(code, 0, "{json}");
    assert_eq!(
        json, "{\n  \"findings\": []\n}\n",
        "clean JSON must match the committed simlint-baseline.json"
    );
}

/// Collects the real workspace's in-scope sources exactly as the walk
/// does (root `src/` plus `crates/*/src`, `/`-separated relative paths).
fn real_sources(root: &Path) -> Vec<(String, String)> {
    fn collect(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
            .expect("readable source dir")
            .map(|e| e.expect("dir entry").path())
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                collect(&path, root, out);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path
                    .strip_prefix(root)
                    .expect("under root")
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                let source = std::fs::read_to_string(&path).expect("readable source");
                out.push((rel, source));
            }
        }
    }
    let mut out = Vec::new();
    if root.join("src").is_dir() {
        collect(&root.join("src"), root, &mut out);
    }
    let mut members: Vec<PathBuf> = std::fs::read_dir(root.join("crates"))
        .expect("crates/ exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.join("src").is_dir())
        .collect();
    members.sort();
    for member in members {
        collect(&member.join("src"), root, &mut out);
    }
    out
}

/// The ISSUE's acceptance criterion, run against the *real* tree and the
/// *real* policy without touching the checkout: injecting an
/// `rm.release(...)` into the compute phase of `compute_one` must
/// produce a P1 finding that names the worker entry.
#[test]
fn injected_release_in_compute_phase_is_caught_on_the_real_tree() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let cfg = Config::load(&root).expect("real simlint.toml parses");
    let mut sources = real_sources(&root);

    // Baseline: the unmodified tree is P-clean under the real policy.
    let (findings, graph) = analyze_sources(&sources, &cfg);
    assert!(
        findings.is_empty(),
        "real tree must be clean before injection:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The graph really spans the workspace, not just one crate.
    assert!(graph.functions > 500, "graph too small: {graph:?}");
    assert!(graph.edges > 1000, "graph too sparse: {graph:?}");

    // Inject the race: a lease release inside the parallel compute step.
    let dispatch = sources
        .iter_mut()
        .find(|(rel, _)| rel == "crates/core/src/dispatch.rs")
        .expect("dispatch.rs is in scope");
    let anchor = "let mut scratch = Storage::new();";
    assert!(dispatch.1.contains(anchor), "compute_one anchor moved");
    dispatch.1 = dispatch.1.replace(
        anchor,
        "let mut scratch = Storage::new();\n    rm.release(p.spec.id);",
    );

    let (findings, _) = analyze_sources(&sources, &cfg);
    let p1: Vec<String> = findings
        .iter()
        .filter(|f| f.code == "P1/shared-mutation")
        .map(ToString::to_string)
        .collect();
    assert_eq!(p1.len(), 1, "exactly one P1 expected: {findings:?}");
    assert!(
        p1[0].contains("crates/core/src/dispatch.rs")
            && p1[0].contains("`ResourceManager::release`")
            && p1[0].contains("`compute_one`"),
        "P1 must name the sink and the worker entry: {}",
        p1[0]
    );
}
