//! Property test for the P1 reachability walk: random mini-workspaces
//! — a random call graph over free functions split across two crates,
//! random worker entries, random exempts, random sink placement — and
//! an independent BFS oracle over the generated edge list. The linter's
//! P1 findings must be exactly the sink call sites inside functions the
//! oracle says are worker-reachable.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use proptest::prelude::*;
use simdc_simlint::{analyze_sources, Config};

const FILE_A: &str = "crates/a/src/lib.rs";
const FILE_B: &str = "crates/b/src/lib.rs";

/// `(path, line)` of a generated call site.
type Site = (String, u32);

/// Emits `fn node{i}` items across two crate files and records, for the
/// nodes in `sink_at`, the [`Site`] of their `poke_shared(..)` call.
fn build_workspace(
    adj: &[BTreeSet<usize>],
    sink_at: &BTreeSet<usize>,
) -> (Vec<(String, String)>, BTreeMap<usize, Site>) {
    let mut lines_a: Vec<String> = vec!["fn poke_shared(x: u64) { let _ = x; }".into()];
    let mut lines_b: Vec<String> = Vec::new();
    let mut sink_sites = BTreeMap::new();
    for (i, callees) in adj.iter().enumerate() {
        let (path, lines) = if i % 2 == 0 {
            (FILE_A, &mut lines_a)
        } else {
            (FILE_B, &mut lines_b)
        };
        lines.push(format!("fn node{i}() {{"));
        if sink_at.contains(&i) {
            lines.push("    poke_shared(1);".into());
            sink_sites.insert(i, (path.to_string(), lines.len() as u32));
        }
        for &j in callees {
            lines.push(format!("    node{j}();"));
        }
        lines.push("}".into());
    }
    let sources = vec![
        (FILE_A.to_string(), lines_a.join("\n") + "\n"),
        (FILE_B.to_string(), lines_b.join("\n") + "\n"),
    ];
    (sources, sink_sites)
}

/// The oracle: BFS over the generated adjacency, entries first, exempt
/// nodes never entered — the same pruning semantics the linter documents.
fn oracle_reachable(
    n: usize,
    adj: &[BTreeSet<usize>],
    entries: &BTreeSet<usize>,
    exempt: &BTreeSet<usize>,
) -> BTreeSet<usize> {
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &e in entries {
        if e < n && !exempt.contains(&e) && seen.insert(e) {
            queue.push_back(e);
        }
    }
    while let Some(i) = queue.pop_front() {
        for &j in &adj[i] {
            if !exempt.contains(&j) && seen.insert(j) {
                queue.push_back(j);
            }
        }
    }
    seen
}

proptest! {
    #[test]
    fn p1_findings_match_the_independent_bfs_oracle(
        n in 3usize..10,
        raw_edges in proptest::collection::vec((0u8..64, 0u8..64), 0..28),
        raw_entries in proptest::collection::vec(0u8..64, 1..4),
        raw_exempts in proptest::collection::vec(0u8..64, 0..3),
        raw_sinks in proptest::collection::vec(0u8..64, 0..5),
    ) {
        let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        for (a, b) in raw_edges {
            adj[a as usize % n].insert(b as usize % n);
        }
        let entries: BTreeSet<usize> = raw_entries.iter().map(|&e| e as usize % n).collect();
        let exempt: BTreeSet<usize> = raw_exempts.iter().map(|&e| e as usize % n).collect();
        let sink_at: BTreeSet<usize> = raw_sinks.iter().map(|&s| s as usize % n).collect();

        let (sources, sink_sites) = build_workspace(&adj, &sink_at);
        let cfg = Config {
            purity_entries: entries.iter().map(|i| format!("node{i}")).collect(),
            purity_exempt: exempt.iter().map(|i| format!("node{i}")).collect(),
            mutation_sinks: vec!["poke_shared".into()],
            ..Config::default()
        };

        let (findings, stats) = analyze_sources(&sources, &cfg);
        // Every generated fn (plus the sink helper) is in the graph and
        // every generated edge resolved — the workspace split across two
        // crates must not lose cross-crate calls.
        prop_assert_eq!(stats.functions, n + 1);
        let want_edges: usize =
            adj.iter().map(BTreeSet::len).sum::<usize>() + sink_at.len();
        prop_assert_eq!(stats.edges, want_edges, "unresolved or spurious edges");

        let got: BTreeSet<(String, u32)> = findings
            .iter()
            .filter(|f| f.code == "P1/shared-mutation")
            .map(|f| (f.path.clone(), f.line))
            .collect();
        let reach = oracle_reachable(n, &adj, &entries, &exempt);
        let want: BTreeSet<(String, u32)> = sink_at
            .iter()
            .filter(|i| reach.contains(i))
            .map(|i| sink_sites[i].clone())
            .collect();
        prop_assert_eq!(got, want, "entries {:?} exempt {:?} adj {:?}", entries, exempt, adj);

        // No P0 noise: every generated spec resolved.
        prop_assert!(
            findings.iter().all(|f| f.code != "P0/unresolved-config"),
            "{findings:?}"
        );
    }
}
