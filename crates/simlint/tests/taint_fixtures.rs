//! T-rule suite: the seeded fixture *workspaces* under
//! `tests/fixtures/t_violations` and `tests/fixtures/t_clean` pin the
//! interprocedural taint analysis end to end — every T-rule fires with
//! an exact, path-naming diagnostic on the seeded tree and stays silent
//! on its deterministic twin (whose one reviewed `simlint::allow`
//! waiver must count as used). The final tests prove the acceptance
//! criteria on the real tree: an injected stream-label collision and an
//! injected drawn reseed are both caught with entry → sink paths.

use std::path::{Path, PathBuf};
use std::process::Command;

use simdc_simlint::{analyze_sources, lint_sources, lint_workspace, Config};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn scan(name: &str) -> Vec<String> {
    let root = fixture_root(name);
    let cfg = Config::load(&root).expect("fixture simlint.toml parses");
    let report = lint_workspace(&root, &cfg).expect("fixture scan succeeds");
    report.findings.iter().map(ToString::to_string).collect()
}

/// Every T-rule fires on the seeded workspace, and the rendered
/// diagnostics — including the entry → callee paths and the T1
/// cross-reference between colliding label sites — are pinned verbatim.
/// Message wording is contract: CI logs are read by humans chasing a
/// red build.
#[test]
fn seeded_workspace_pins_every_t_rule_diagnostic() {
    assert_eq!(
        scan("t_violations"),
        vec![
            "crates/demo/src/lib.rs:64:34: [T1/rng-stream-aliasing] rng stream label \"worker\" is also used at crates/demo/src/lib.rs:65:29 — path: `Worker::build`; streams sharing a label draw identical sequences: give each stream a distinct label (simlint.toml [rules.determinism-taint])",
            "crates/demo/src/lib.rs:65:29: [T1/rng-stream-aliasing] rng stream label \"worker\" is also used at crates/demo/src/lib.rs:64:34 — path: `Worker::build`; streams sharing a label draw identical sequences: give each stream a distinct label (simlint.toml [rules.determinism-taint])",
            "crates/demo/src/lib.rs:66:37: [T1/rng-stream-aliasing] rng stream label for `RngStream::named` is not a constant string — path: `Worker::build`; non-literal labels cannot be audited for stream aliasing: use a string literal, or suppress with a reviewed `simlint::allow` (simlint.toml [rules.determinism-taint])",
            "crates/demo/src/lib.rs:67:22: [T4/seed-provenance] argument reaches the seed of `RngStream::named` inside `mk` while carrying drawn or float taint — path: `Worker::build`; seeds must trace to the experiment seed or config (simlint.toml [rules.determinism-taint])",
            "crates/demo/src/lib.rs:68:15: [T2/rng-escape] draw-tainted value flows into shared sink `EventQueue::push` — path: `Worker::build`; randomness may not escape the compute phase into shared or merge state (simlint.toml [rules.determinism-taint])",
            "crates/demo/src/lib.rs:70:17: [T2/rng-escape] draw-tainted value assigned to `ev.time` — path: `Worker::build`; `time` orders the deterministic merge and must not depend on draw order (simlint.toml [rules.determinism-taint])",
            "crates/demo/src/lib.rs:82:17: [T3/unordered-float-reduction] float accumulation inside iteration over unordered `HashMap` — path: `Worker::build` → `Worker::tally`; float addition is not associative, so the sum depends on `HashMap` order: iterate a `BTreeMap` or sort keys first (simlint.toml [rules.determinism-taint])",
            "crates/demo/src/lib.rs:84:37: [T3/unordered-float-reduction] unordered float reduction `.sum(..)` over `HashMap` — path: `Worker::build` → `Worker::tally`; float addition is not associative, so the result depends on `HashMap` order: iterate a `BTreeMap` or sort keys first (simlint.toml [rules.determinism-taint])",
            "simlint.toml:1:1: [T0/unresolved-config] [rules.determinism-taint] entry `Ghost::missing` matches no function in the workspace — fix the spec or remove the stale entry",
        ]
    );
}

/// The deterministic twin — distinct constant labels, ordered
/// containers, seeds traced to the experiment seed, a reviewed and
/// *used* `simlint::allow` waiver — has zero findings.
#[test]
fn clean_workspace_has_zero_findings() {
    assert_eq!(scan("t_clean"), Vec::<String>::new());
}

/// The CLI gate holds on both fixture workspaces: violations exit 1,
/// the clean twin exits 0 even though it contains a (used) waiver.
#[test]
fn cli_gate_on_fixture_workspaces() {
    let run = |name: &str, format: &str| {
        let out = Command::new(env!("CARGO_BIN_EXE_simdc-simlint"))
            .args(["--workspace", "--format", format, "--root"])
            .arg(fixture_root(name))
            .output()
            .expect("binary runs");
        (
            out.status.code().expect("exit code"),
            String::from_utf8(out.stdout).expect("utf8 stdout"),
        )
    };

    let (code, stdout) = run("t_violations", "text");
    assert_eq!(code, 1, "{stdout}");
    for rule in [
        "[T1/rng-stream-aliasing]",
        "[T2/rng-escape]",
        "[T3/unordered-float-reduction]",
        "[T4/seed-provenance]",
        "[T0/unresolved-config]",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }

    let (code, stdout) = run("t_clean", "text");
    assert_eq!(code, 0, "{stdout}");
    assert_eq!(
        stdout,
        "simlint: clean (1 files scanned; call graph: 7 fns, 7 edges)\n"
    );
}

/// `--format sarif` emits a SARIF 2.1.0 document on stdout, carries
/// every fired rule id, and is byte-deterministic across runs.
#[test]
fn sarif_output_is_complete_and_deterministic() {
    let run = || {
        let out = Command::new(env!("CARGO_BIN_EXE_simdc-simlint"))
            .args(["--workspace", "--format", "sarif", "--root"])
            .arg(fixture_root("t_violations"))
            .output()
            .expect("binary runs");
        (
            out.status.code().expect("exit code"),
            String::from_utf8(out.stdout).expect("utf8 stdout"),
        )
    };

    let (code, sarif) = run();
    assert_eq!(code, 1, "{sarif}");
    assert!(
        sarif.contains("\"version\": \"2.1.0\""),
        "SARIF version pinned:\n{sarif}"
    );
    assert!(
        sarif.contains("\"$schema\""),
        "SARIF schema reference present:\n{sarif}"
    );
    for rule in [
        "T0/unresolved-config",
        "T1/rng-stream-aliasing",
        "T2/rng-escape",
        "T3/unordered-float-reduction",
        "T4/seed-provenance",
    ] {
        assert!(
            sarif.contains(&format!("\"id\": \"{rule}\"")),
            "rule {rule} missing from the rules array:\n{sarif}"
        );
    }
    assert!(
        sarif.contains("\"uri\": \"crates/demo/src/lib.rs\""),
        "result locations use workspace-relative URIs:\n{sarif}"
    );

    let (_, again) = run();
    assert_eq!(sarif, again, "SARIF must be byte-deterministic");
}

/// A `simlint::allow` that suppresses nothing is itself a finding (S1):
/// stale waivers rot into false confidence and must be cleaned up.
#[test]
fn unused_suppression_is_reported_as_s1() {
    let files = vec![(
        "crates/demo/src/lib.rs".to_string(),
        concat!(
            "//! Demo.\n",
            "#![deny(missing_docs)]\n",
            "#![forbid(unsafe_code)]\n",
            "/// Nothing here needs a waiver.\n",
            "pub fn quiet() -> u64 {\n",
            "    // simlint::allow(T4/seed-provenance): stale waiver, nothing fires here\n",
            "    7\n",
            "}\n",
        )
        .to_string(),
    )];
    let report = lint_sources(&files, &Config::default()).expect("sources lint");
    let rendered: Vec<String> = report.findings.iter().map(ToString::to_string).collect();
    assert_eq!(
        rendered,
        vec![
            "crates/demo/src/lib.rs:6:5: [S1/unused-suppression] suppression `simlint::allow(T4/seed-provenance)` matched no finding on line 7 — remove it, or fix the rule code it should waive",
        ]
    );
}

/// Collects the real workspace's in-scope sources exactly as the walk
/// does (root `src/` plus `crates/*/src`, `/`-separated relative paths).
fn real_sources(root: &Path) -> Vec<(String, String)> {
    fn collect(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
            .expect("readable source dir")
            .map(|e| e.expect("dir entry").path())
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                collect(&path, root, out);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path
                    .strip_prefix(root)
                    .expect("under root")
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                let source = std::fs::read_to_string(&path).expect("readable source");
                out.push((rel, source));
            }
        }
    }
    let mut out = Vec::new();
    if root.join("src").is_dir() {
        collect(&root.join("src"), root, &mut out);
    }
    let mut members: Vec<PathBuf> = std::fs::read_dir(root.join("crates"))
        .expect("crates/ exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.join("src").is_dir())
        .collect();
    members.sort();
    for member in members {
        collect(&member.join("src"), root, &mut out);
    }
    out
}

/// Loads the real tree, asserts it is taint-clean under the real
/// policy, and returns (sources, config) ready for an injection.
fn clean_real_tree() -> (Vec<(String, String)>, Config) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let cfg = Config::load(&root).expect("real simlint.toml parses");
    let sources = real_sources(&root);
    let (findings, _) = analyze_sources(&sources, &cfg);
    assert!(
        findings.is_empty(),
        "real tree must be clean before injection:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    (sources, cfg)
}

const DISPATCH_ANCHOR: &str =
    "let mut rng = RngStream::named(p.spec.seed, &format!(\"task/{}\", p.spec.id.0));";

fn inject_into_compute_one(sources: &mut [(String, String)], extra: &str) {
    let dispatch = sources
        .iter_mut()
        .find(|(rel, _)| rel == "crates/core/src/dispatch.rs")
        .expect("dispatch.rs is in scope");
    assert!(
        dispatch.1.contains(DISPATCH_ANCHOR),
        "compute_one anchor moved"
    );
    dispatch.1 = dispatch
        .1
        .replace(DISPATCH_ANCHOR, &format!("{DISPATCH_ANCHOR}\n    {extra}"));
}

/// Acceptance criterion, T1 on the real tree: forking a second stream
/// with the label `"deviceflow"` inside `compute_one` collides with the
/// existing fork in `TaskRunner::plan_timeline` (crates/core/runner.rs),
/// and both sites are reported, each naming the other.
#[test]
fn injected_label_collision_is_caught_on_the_real_tree() {
    let (mut sources, cfg) = clean_real_tree();
    inject_into_compute_one(&mut sources, "let mut dup = rng.fork(\"deviceflow\");");

    let (findings, _) = analyze_sources(&sources, &cfg);
    let t1: Vec<String> = findings
        .iter()
        .filter(|f| f.code == "T1/rng-stream-aliasing")
        .map(ToString::to_string)
        .collect();
    assert_eq!(t1.len(), 2, "both collision sites expected: {findings:?}");
    let injected = t1
        .iter()
        .find(|m| m.starts_with("crates/core/src/dispatch.rs"))
        .expect("injected site reported");
    let existing = t1
        .iter()
        .find(|m| m.starts_with("crates/core/src/runner.rs"))
        .expect("existing plan_timeline site reported");
    assert!(
        injected.contains("\"deviceflow\"")
            && injected.contains("is also used at crates/core/src/runner.rs")
            && injected.contains("`compute_one`"),
        "injected site must name the label, the other site and the entry: {injected}"
    );
    assert!(
        existing.contains("is also used at crates/core/src/dispatch.rs")
            && existing.contains("`TaskRunner::plan_timeline`"),
        "existing site must point back at the injection: {existing}"
    );
}

/// Acceptance criterion, T4 on the real tree: reseeding a stream from a
/// draw inside `compute_one` must produce a seed-provenance finding on
/// a path from the worker entry.
#[test]
fn injected_drawn_reseed_is_caught_on_the_real_tree() {
    let (mut sources, cfg) = clean_real_tree();
    inject_into_compute_one(
        &mut sources,
        "let reseed = rng.next_u64();\n    let mut rogue = RngStream::named(reseed, \"task/rogue\");",
    );

    let (findings, _) = analyze_sources(&sources, &cfg);
    let t4: Vec<String> = findings
        .iter()
        .filter(|f| f.code == "T4/seed-provenance")
        .map(ToString::to_string)
        .collect();
    assert_eq!(t4.len(), 1, "exactly one T4 expected: {findings:?}");
    assert!(
        t4[0].starts_with("crates/core/src/dispatch.rs")
            && t4[0].contains("`RngStream::named`")
            && t4[0].contains("`compute_one`"),
        "T4 must name the seed sink and the entry path: {}",
        t4[0]
    );
}
