//! D1 fixture: unordered hash collections on a simulation path.

use std::collections::{HashMap, HashSet};

/// Iteration order of either field can leak into schedules.
pub struct Fleet {
    phones: HashMap<u64, String>,
    crashed: HashSet<u64>,
}
