//! Deterministic twin of the t_violations fixture: distinct constant
//! labels, ordered containers, seeds traced to the experiment seed, and
//! draws that stay inside the compute phase. One deliberate reseed is
//! covered by a reviewed `simlint::allow` waiver, so the scan still
//! exits 0 — and the waiver is *used*, so no S1 fires either.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;

/// Deterministic stream stand-in (same surface as simrt's `RngStream`).
pub struct RngStream {
    state: u64,
}

impl RngStream {
    /// Root stream constructor.
    pub fn named(seed: u64, label: &str) -> RngStream {
        RngStream {
            state: seed ^ label.len() as u64,
        }
    }

    /// Child stream constructor.
    pub fn fork(&mut self, label: &str) -> RngStream {
        RngStream {
            state: self.state ^ label.len() as u64,
        }
    }

    /// A draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(3);
        self.state
    }
}

/// Shared event-queue stand-in.
pub struct EventQueue {
    events: Vec<u64>,
}

impl EventQueue {
    /// Only untainted values arrive here.
    pub fn push(&mut self, ev: u64) {
        self.events.push(ev);
    }
}

/// The configured taint entry point's owner.
pub struct Worker {
    weights: BTreeMap<u64, f64>,
}

impl Worker {
    /// Entry: every stream label is distinct and constant, every seed
    /// traces to `seed`, and the one push carries no draw.
    pub fn build(seed: u64, queue: &mut EventQueue) -> f64 {
        let mut rng = RngStream::named(seed, "worker");
        let mut device = rng.fork("device");
        let _ = replay(&mut device);
        queue.push(seed);
        let w = Worker {
            weights: BTreeMap::new(),
        };
        w.tally()
    }

    /// Ordered float reduction — no T3.
    fn tally(&self) -> f64 {
        let mut acc = 0.0;
        for w in self.weights.values() {
            acc += w;
        }
        acc + self.weights.values().sum::<f64>()
    }
}

/// Replay deliberately reseeds from a draw; the inline waiver is the
/// reviewed record, and the scan must count it as used (no S1).
fn replay(rng: &mut RngStream) -> RngStream {
    let salt = rng.next_u64();
    // simlint::allow(T4/seed-provenance): replay reseeding is this fixture's reviewed waiver
    RngStream::named(salt, "replay")
}
