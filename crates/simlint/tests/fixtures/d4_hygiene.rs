//! D4 fixture: a crate root missing both gates, with panicky and
//! undocumented public API.

/// Documented, but unwraps.
pub fn first(input: Option<u64>) -> u64 {
    input.unwrap()
}

pub fn second(input: Option<u64>) -> u64 {
    input.expect("caller checked")
}
