//! D3 fixture: lifecycle discipline violations.

use crate::queue::TaskState;

/// Completes a task by poking its fields directly.
pub fn finish(record: &mut Record, rm: &mut ResourceManager, id: u64) {
    record.state = TaskState::Completed;
    rm.release(id);
}

/// Admits a task without going through the scheduler pass.
pub fn admit(rm: &mut ResourceManager, id: u64, claim: Claim) {
    let _ = rm.freeze(id, claim);
}
