//! Pure worker tree: same shape as the p_violations fixture, but every
//! reachable call is a deterministic function of (input, seed), the
//! containers are ordered, and the one `run_batch` call sits at its
//! registered spawner site.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;

/// The configured worker entry point's owner.
pub struct Worker {
    cache: BTreeMap<u64, u64>,
}

impl Worker {
    /// Entry: everything reachable from here is pure.
    pub fn build(&self, seed: u64) -> u64 {
        self.tally(seed) + mix(seed)
    }

    /// Ordered iteration only — no finding.
    fn tally(&self, seed: u64) -> u64 {
        let mut total = seed;
        for (k, v) in self.cache.iter() {
            total += k + v;
        }
        total
    }
}

/// Deterministic helper reached from the entry.
fn mix(seed: u64) -> u64 {
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// The registered parallel region (this file is a spawner site).
pub fn fan_out(items: Vec<u64>) -> Vec<u64> {
    run_batch(items)
}

fn run_batch(items: Vec<u64>) -> Vec<u64> {
    items
}
