//! D2 fixture: wall-clock time and ambient entropy.

use std::time::Instant;

/// Times a round on the host clock instead of virtual time.
pub fn measure() -> f64 {
    let start = Instant::now();
    let jitter = rand::thread_rng();
    let shard = std::env::var("SIMDC_SHARD");
    let _ = (jitter, shard);
    start.elapsed().as_secs_f64()
}
