//! Seeded violations: one trigger per P-rule, reached through a short
//! call chain so the path diagnostics are exercised. The companion
//! tests pin the exact findings; edit both together.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::sync::Mutex;

/// Shared lease manager stand-in.
pub struct ResourceManager;

impl ResourceManager {
    /// Releases a lease (the seeded P1 mutation sink).
    pub fn release(&mut self, id: u64) {
        let _ = id;
    }
}

/// The configured worker entry point's owner.
pub struct Worker {
    rm: ResourceManager,
    cache: HashMap<u64, u64>,
}

impl Worker {
    /// Entry: everything reachable from here must be pure.
    pub fn build(&mut self, seed: u64) -> u64 {
        let total = self.tally(seed);
        self.finish(seed);
        total
    }

    /// Transitively reached: P2 (interior mutability) and P3
    /// (unordered-state iteration).
    fn tally(&mut self, seed: u64) -> u64 {
        let guard = Mutex::new(seed);
        let mut total = 0u64;
        if let Ok(g) = guard.lock() {
            total += *g;
        }
        for (k, v) in self.cache.iter() {
            total += k + v;
        }
        total
    }

    /// Transitively reached: P1 (lease mutation mid-compute).
    fn finish(&mut self, id: u64) {
        self.rm.release(id);
    }
}

/// An unregistered parallel region: P4.
pub fn fan_out(items: Vec<u64>) -> Vec<u64> {
    run_batch(items)
}

fn run_batch(items: Vec<u64>) -> Vec<u64> {
    items
}
