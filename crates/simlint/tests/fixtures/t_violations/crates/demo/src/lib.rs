//! Seeded taint violations: one trigger per T-rule (T1 reports both
//! collision sites), reached from `Worker::build` so the entry → sink
//! path diagnostics are exercised. The companion tests pin the exact
//! findings; edit both together.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashMap;

/// Deterministic stream stand-in (same surface as simrt's `RngStream`).
pub struct RngStream {
    state: u64,
}

impl RngStream {
    /// Root stream constructor: arg 0 is the audited seed position.
    pub fn named(seed: u64, label: &str) -> RngStream {
        RngStream {
            state: seed ^ label.len() as u64,
        }
    }

    /// Child stream constructor: arg 0 is the audited label position.
    pub fn fork(&mut self, label: &str) -> RngStream {
        RngStream {
            state: self.state ^ label.len() as u64,
        }
    }

    /// A draw: results are DRAWN-tainted.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(3);
        self.state
    }
}

/// Shared event-queue stand-in: `push` is the configured escape sink.
pub struct EventQueue {
    events: Vec<u64>,
}

impl EventQueue {
    /// The escape sink.
    pub fn push(&mut self, ev: u64) {
        self.events.push(ev);
    }
}

/// Merge-keyed event: `time` is a configured tainted field.
pub struct Event {
    /// Merge key, first component.
    pub time: u64,
}

/// The configured taint entry point's owner.
pub struct Worker {
    weights: HashMap<u64, f64>,
}

impl Worker {
    /// Entry: T1, T2 and T4 all fire on paths from here.
    pub fn build(seed: u64, tag: &str, queue: &mut EventQueue) -> f64 {
        let mut rng = RngStream::named(seed, "worker");
        let mut child = rng.fork("worker");
        let mut tagged = RngStream::named(seed, tag);
        let reseed = mk(child.next_u64());
        queue.push(step(&mut tagged));
        let mut ev = Event { time: 0 };
        ev.time = child.next_u64();
        let _ = (reseed, ev);
        let w = Worker {
            weights: HashMap::new(),
        };
        w.tally()
    }

    /// Transitively reached: T3 in both loop and chain form.
    fn tally(&self) -> f64 {
        let mut acc = 0.0;
        for w in self.weights.values() {
            acc += w;
        }
        acc + self.weights.values().sum::<f64>()
    }
}

/// Helper: T4 fires at its call site when the caller hands it a draw.
fn mk(seed: u64) -> RngStream {
    RngStream::named(seed, "aux")
}

/// Helper whose summary records a drawn result.
fn step(rng: &mut RngStream) -> u64 {
    rng.next_u64()
}
