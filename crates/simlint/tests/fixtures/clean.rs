//! A determinism-clean file: every rule passes.
//!
//! Kept as the negative control for the fixture suite — if simlint ever
//! flags this file, a rule grew a false positive.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};

/// Ordered per-task accounting (D1-clean).
pub struct Claims {
    by_task: BTreeMap<u64, u64>,
    seen: BTreeSet<u64>,
}

impl Claims {
    /// Records a claim; error strings mentioning HashMap or Instant are
    /// fine — rules never look inside literals or comments.
    pub fn record(&mut self, task: u64, amount: u64) -> Result<(), String> {
        if !self.seen.insert(task) {
            return Err("task already claimed (not a HashMap ordering bug)".into());
        }
        self.by_task.insert(task, amount);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    // Test code may use anything: unordered maps, wall clocks, unwraps.
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn scaffolding_is_exempt() {
        let mut m = HashMap::new();
        m.insert(1u8, Instant::now());
        assert!(m.get(&1).unwrap().elapsed().as_secs() < 60);
    }
}
