//! Finding representation and rendering.

use std::fmt;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule code, e.g. `D1/hash-collections`.
    pub code: &'static str,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.code, self.message
        )
    }
}

/// Orders findings for stable output: path, then position, then code.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.code).cmp(&(b.path.as_str(), b.line, b.col, b.code))
    });
}

/// Renders findings as the machine-readable JSON document CI archives
/// (`simlint.json`) and diffs against the committed baseline.
///
/// The output is deterministic byte-for-byte for a given finding list:
/// fixed key order, two-space indentation, a trailing newline, and no
/// volatile fields (file counts change on every PR; findings are the
/// contract). An empty scan renders as `{"findings": []}` so the
/// baseline of a clean tree is a stable two-line document.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n");
        out.push_str(&format!("      \"path\": \"{}\",\n", escape_json(&f.path)));
        out.push_str(&format!("      \"line\": {},\n", f.line));
        out.push_str(&format!("      \"col\": {},\n", f.col));
        out.push_str(&format!("      \"code\": \"{}\",\n", escape_json(f.code)));
        out.push_str(&format!(
            "      \"message\": \"{}\"\n",
            escape_json(&f.message)
        ));
        out.push_str("    }");
    }
    if findings.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// Escapes a string for a JSON literal (quotes, backslashes, control
/// characters; non-ASCII passes through as UTF-8).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_gcc_style() {
        let f = Finding {
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            code: "D1/hash-collections",
            message: "msg".into(),
        };
        assert_eq!(
            f.to_string(),
            "crates/x/src/lib.rs:3:9: [D1/hash-collections] msg"
        );
    }

    #[test]
    fn json_of_empty_scan_is_the_stable_baseline_document() {
        assert_eq!(render_json(&[]), "{\n  \"findings\": []\n}\n");
    }

    #[test]
    fn json_escapes_and_orders_fields() {
        let f = Finding {
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            code: "P1/shared-mutation",
            message: "a \"quoted\"\tpath\\name".into(),
        };
        let json = render_json(&[f]);
        assert!(json.contains("\"path\": \"crates/x/src/lib.rs\""));
        assert!(json.contains("\"line\": 3"));
        assert!(json.contains("\"message\": \"a \\\"quoted\\\"\\tpath\\\\name\""));
        assert!(json.ends_with("\n  ]\n}\n"));
    }

    #[test]
    fn sorts_by_path_then_position() {
        let mk = |path: &str, line: u32, col: u32| Finding {
            path: path.into(),
            line,
            col,
            code: "D1/hash-collections",
            message: String::new(),
        };
        let mut v = vec![mk("b.rs", 1, 1), mk("a.rs", 9, 1), mk("a.rs", 2, 5)];
        sort_findings(&mut v);
        let order: Vec<(String, u32)> = v.into_iter().map(|f| (f.path, f.line)).collect();
        assert_eq!(
            order,
            vec![("a.rs".into(), 2), ("a.rs".into(), 9), ("b.rs".into(), 1)]
        );
    }
}
