//! Finding representation and rendering.

use std::fmt;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule code, e.g. `D1/hash-collections`.
    pub code: &'static str,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.code, self.message
        )
    }
}

/// Orders findings for stable output: path, then position, then code.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.code).cmp(&(b.path.as_str(), b.line, b.col, b.code))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_gcc_style() {
        let f = Finding {
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            code: "D1/hash-collections",
            message: "msg".into(),
        };
        assert_eq!(
            f.to_string(),
            "crates/x/src/lib.rs:3:9: [D1/hash-collections] msg"
        );
    }

    #[test]
    fn sorts_by_path_then_position() {
        let mk = |path: &str, line: u32, col: u32| Finding {
            path: path.into(),
            line,
            col,
            code: "D1/hash-collections",
            message: String::new(),
        };
        let mut v = vec![mk("b.rs", 1, 1), mk("a.rs", 9, 1), mk("a.rs", 2, 5)];
        sort_findings(&mut v);
        let order: Vec<(String, u32)> = v.into_iter().map(|f| (f.path, f.line)).collect();
        assert_eq!(
            order,
            vec![("a.rs".into(), 2), ("a.rs".into(), 9), ("b.rs".into(), 1)]
        );
    }
}
