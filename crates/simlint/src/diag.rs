//! Finding representation and rendering.

use std::fmt;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule code, e.g. `D1/hash-collections`.
    pub code: &'static str,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.code, self.message
        )
    }
}

/// Orders findings for stable output: path, then position, then code.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.code).cmp(&(b.path.as_str(), b.line, b.col, b.code))
    });
}

/// Renders findings as the machine-readable JSON document CI archives
/// (`simlint.json`) and diffs against the committed baseline.
///
/// The output is deterministic byte-for-byte for a given finding list:
/// fixed key order, two-space indentation, a trailing newline, and no
/// volatile fields (file counts change on every PR; findings are the
/// contract). An empty scan renders as `{"findings": []}` so the
/// baseline of a clean tree is a stable two-line document.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n");
        out.push_str(&format!("      \"path\": \"{}\",\n", escape_json(&f.path)));
        out.push_str(&format!("      \"line\": {},\n", f.line));
        out.push_str(&format!("      \"col\": {},\n", f.col));
        out.push_str(&format!("      \"code\": \"{}\",\n", escape_json(f.code)));
        out.push_str(&format!(
            "      \"message\": \"{}\"\n",
            escape_json(&f.message)
        ));
        out.push_str("    }");
    }
    if findings.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// Renders findings as a SARIF 2.1.0 document for CI annotation upload.
///
/// Deterministic byte-for-byte for a given finding list: the rules array
/// lists the distinct rule codes in sorted order, results follow the
/// (already sorted) finding order, key order and indentation are fixed,
/// and there are no volatile fields (no timestamps, no absolute paths).
pub fn render_sarif(findings: &[Finding]) -> String {
    let codes: std::collections::BTreeSet<&str> = findings.iter().map(|f| f.code).collect();
    let rule_index: std::collections::BTreeMap<&str, usize> =
        codes.iter().enumerate().map(|(i, &c)| (c, i)).collect();
    let mut out = String::from(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
         \"driver\": {\n          \"name\": \"simlint\",\n          \
         \"informationUri\": \"https://example.invalid/simdc/simlint\",\n          \
         \"rules\": [",
    );
    for (i, code) in codes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{ \"id\": \"{}\" }}",
            escape_json(code)
        ));
    }
    if codes.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n          ]\n");
    }
    out.push_str("        }\n      },\n      \"results\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\n          \"ruleId\": \"{}\",\n          \"ruleIndex\": {},\n          \
             \"level\": \"error\",\n          \"message\": {{ \"text\": \"{}\" }},\n          \
             \"locations\": [\n            {{\n              \"physicalLocation\": {{\n                \
             \"artifactLocation\": {{ \"uri\": \"{}\" }},\n                \
             \"region\": {{ \"startLine\": {}, \"startColumn\": {} }}\n              }}\n            \
             }}\n          ]\n        }}",
            escape_json(f.code),
            rule_index[f.code],
            escape_json(&f.message),
            escape_json(&f.path),
            f.line,
            f.col
        ));
    }
    if findings.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n      ]\n");
    }
    out.push_str("    }\n  ]\n}\n");
    out
}

/// Escapes a string for a JSON literal (quotes, backslashes, control
/// characters; non-ASCII passes through as UTF-8).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_gcc_style() {
        let f = Finding {
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            code: "D1/hash-collections",
            message: "msg".into(),
        };
        assert_eq!(
            f.to_string(),
            "crates/x/src/lib.rs:3:9: [D1/hash-collections] msg"
        );
    }

    #[test]
    fn json_of_empty_scan_is_the_stable_baseline_document() {
        assert_eq!(render_json(&[]), "{\n  \"findings\": []\n}\n");
    }

    #[test]
    fn json_escapes_and_orders_fields() {
        let f = Finding {
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            code: "P1/shared-mutation",
            message: "a \"quoted\"\tpath\\name".into(),
        };
        let json = render_json(&[f]);
        assert!(json.contains("\"path\": \"crates/x/src/lib.rs\""));
        assert!(json.contains("\"line\": 3"));
        assert!(json.contains("\"message\": \"a \\\"quoted\\\"\\tpath\\\\name\""));
        assert!(json.ends_with("\n  ]\n}\n"));
    }

    #[test]
    fn sarif_is_deterministic_and_indexes_rules() {
        let mk = |code: &'static str, line: u32| Finding {
            path: "crates/x/src/lib.rs".into(),
            line,
            col: 1,
            code,
            message: "why it \"fired\"".into(),
        };
        let findings = vec![
            mk("T1/rng-stream-aliasing", 3),
            mk("D1/hash-collections", 9),
            mk("T1/rng-stream-aliasing", 12),
        ];
        let a = render_sarif(&findings);
        let b = render_sarif(&findings);
        assert_eq!(a, b, "same findings must render identically");
        assert!(a.contains("\"version\": \"2.1.0\""));
        // Rules are distinct and sorted; results reference them by index.
        let d1 = a
            .find("{ \"id\": \"D1/hash-collections\" }")
            .expect("D1 rule");
        let t1 = a
            .find("{ \"id\": \"T1/rng-stream-aliasing\" }")
            .expect("T1 rule");
        assert!(d1 < t1, "rules must be sorted");
        assert_eq!(a.matches("\"id\": \"T1/rng-stream-aliasing\"").count(), 1);
        assert_eq!(a.matches("\"ruleIndex\": 1").count(), 2);
        assert!(a.contains("\"message\": { \"text\": \"why it \\\"fired\\\"\" }"));
        assert!(a.contains("\"startLine\": 12"));
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn sarif_of_empty_scan_has_empty_rules_and_results() {
        let sarif = render_sarif(&[]);
        assert!(sarif.contains("\"rules\": []"));
        assert!(sarif.contains("\"results\": []"));
    }

    #[test]
    fn sorts_by_path_then_position() {
        let mk = |path: &str, line: u32, col: u32| Finding {
            path: path.into(),
            line,
            col,
            code: "D1/hash-collections",
            message: String::new(),
        };
        let mut v = vec![mk("b.rs", 1, 1), mk("a.rs", 9, 1), mk("a.rs", 2, 5)];
        sort_findings(&mut v);
        let order: Vec<(String, u32)> = v.into_iter().map(|f| (f.path, f.line)).collect();
        assert_eq!(
            order,
            vec![("a.rs".into(), 2), ("a.rs".into(), 9), ("b.rs".into(), 1)]
        );
    }
}
