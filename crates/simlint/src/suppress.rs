//! Inline suppression directives.
//!
//! A finding can be waived exactly where it fires with a line comment:
//!
//! ```text
//! // simlint::allow(<rule>): <reason>
//! ```
//!
//! * `<rule>` is a full rule code (`T1/rng-stream-aliasing`, not `T1`) —
//!   an unknown code is a hard error (exit 2), so a typo can never
//!   silently widen the waiver.
//! * `<reason>` is mandatory: the comment is the review record for the
//!   exception, and an empty reason is a hard error.
//! * A trailing directive suppresses findings on its own line; a
//!   standalone directive suppresses the next code line (stacked
//!   directives and blank lines in between are fine — each targets the
//!   first following line that carries code).
//! * A directive that matches no finding is itself a finding
//!   (`S1/unused-suppression`), so stale waivers cannot rot in place.
//!
//! Only `simlint::allow` exists; any other `simlint::…` comment is a
//! hard error rather than a silently ignored near-miss.

use crate::diag::Finding;
use crate::lexer::{Comment, Token};

/// Every rule code a directive may name. `S1/unused-suppression` is
/// deliberately absent: suppressing the unused-suppression rule would
/// let dead waivers accumulate, which is the one thing it exists to
/// prevent.
pub const RULE_CODES: &[&str] = &[
    "D1/hash-collections",
    "D2/wall-clock",
    "D2/ambient-entropy",
    "D3/task-state",
    "D3/freeze-release",
    "D4/lint-gates",
    "D4/unwrap-in-lib",
    "D4/pub-docs",
    "P0/unresolved-config",
    "P1/shared-mutation",
    "P2/interior-mutability",
    "P3/unordered-iteration",
    "P4/unregistered-spawner",
    "T0/unresolved-config",
    "T1/rng-stream-aliasing",
    "T2/rng-escape",
    "T3/unordered-float-reduction",
    "T4/seed-provenance",
];

/// A parsed, target-resolved suppression directive.
#[derive(Debug, Clone)]
pub struct Directive {
    /// Workspace-relative path of the file the directive sits in.
    pub path: String,
    /// 1-based line of the comment itself.
    pub line: u32,
    /// 1-based column of the comment itself.
    pub col: u32,
    /// The full rule code being waived.
    pub rule: String,
    /// The reviewer-facing justification.
    pub reason: String,
    /// The code line whose findings the directive suppresses.
    pub target: u32,
}

/// Parses one file's captured `simlint::` comments into directives.
/// Malformed directives are hard errors — the returned message carries
/// the file position, ready for the CLI's exit-2 path.
pub fn parse_directives(
    path: &str,
    comments: &[Comment],
    tokens: &[Token],
) -> Result<Vec<Directive>, String> {
    let mut out = Vec::new();
    for c in comments {
        match parse_one(c, tokens) {
            Ok(d) => out.push(Directive {
                path: path.to_string(),
                ..d
            }),
            Err(msg) => {
                return Err(format!(
                    "{path}:{}:{}: malformed simlint directive: {msg}",
                    c.line, c.col
                ))
            }
        }
    }
    Ok(out)
}

/// Like [`parse_directives`], but drops malformed directives instead of
/// failing. Used by the analysis-only entry point
/// ([`crate::analyze_sources`]) where the full pipeline (which *does*
/// hard-error) has already vetted the tree, or where tests feed sources
/// directly.
pub fn parse_directives_lenient(
    path: &str,
    comments: &[Comment],
    tokens: &[Token],
) -> Vec<Directive> {
    comments
        .iter()
        .filter_map(|c| parse_one(c, tokens).ok())
        .map(|d| Directive {
            path: path.to_string(),
            ..d
        })
        .collect()
}

fn parse_one(c: &Comment, tokens: &[Token]) -> Result<Directive, String> {
    let rest = c.text.strip_prefix("simlint::allow").ok_or_else(|| {
        format!(
            "unknown directive `{}` (only `simlint::allow(<rule>): <reason>` is recognized)",
            c.text
        )
    })?;
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix('(')
        .ok_or("expected `(` after `simlint::allow`")?;
    let close = rest
        .find(')')
        .ok_or("unterminated rule code (missing `)`)")?;
    let rule = rest[..close].trim();
    if !RULE_CODES.contains(&rule) {
        return Err(format!(
            "unknown rule code `{rule}` (use the full code, e.g. `T1/rng-stream-aliasing`)"
        ));
    }
    let after = rest[close + 1..].trim_start();
    let reason = after
        .strip_prefix(':')
        .map(str::trim)
        .ok_or("missing `: <reason>` — every suppression must say why")?;
    if reason.is_empty() {
        return Err("empty reason — every suppression must say why".to_string());
    }
    let target = if c.trailing {
        c.line
    } else {
        tokens
            .iter()
            .find(|t| t.line > c.line)
            .map(|t| t.line)
            // No code follows: target the directive's own line, which can
            // match nothing, so the unused-suppression rule reports it.
            .unwrap_or(c.line)
    };
    Ok(Directive {
        path: String::new(),
        line: c.line,
        col: c.col,
        rule: rule.to_string(),
        reason: reason.to_string(),
        target,
    })
}

/// Applies directives to a finding set: findings matched by a directive
/// (same file, target line, and rule code) are removed. Returns the kept
/// findings plus a per-directive used flag, in directive order.
pub fn filter_suppressed(
    directives: &[Directive],
    findings: Vec<Finding>,
) -> (Vec<Finding>, Vec<bool>) {
    let mut used = vec![false; directives.len()];
    let kept = findings
        .into_iter()
        .filter(|f| {
            let mut suppressed = false;
            for (i, d) in directives.iter().enumerate() {
                if d.path == f.path && d.target == f.line && d.rule == f.code {
                    used[i] = true;
                    suppressed = true;
                }
            }
            !suppressed
        })
        .collect();
    (kept, used)
}

/// The `S1/unused-suppression` finding for a directive that matched
/// nothing.
pub fn unused_finding(d: &Directive) -> Finding {
    Finding {
        path: d.path.clone(),
        line: d.line,
        col: d.col,
        code: "S1/unused-suppression",
        message: format!(
            "suppression `simlint::allow({})` matched no finding on line {} — remove it, or fix the rule code it should waive",
            d.rule, d.target
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex_with_comments;

    fn parse(src: &str) -> Result<Vec<Directive>, String> {
        let (tokens, comments) = lex_with_comments(src);
        parse_directives("crates/demo/src/lib.rs", &comments, &tokens)
    }

    #[test]
    fn trailing_directive_targets_its_own_line() {
        let ds =
            parse("fn f() {\n    let x = 1; // simlint::allow(D1/hash-collections): scratch\n}")
                .expect("parses");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].target, 2);
        assert_eq!(ds[0].rule, "D1/hash-collections");
        assert_eq!(ds[0].reason, "scratch");
    }

    #[test]
    fn standalone_directive_targets_the_next_code_line_across_blanks() {
        let src = "fn f() {\n    // simlint::allow(T4/seed-provenance): replay harness reseeds\n    // simlint::allow(T1/rng-stream-aliasing): label is unique\n\n    let x = 1;\n}";
        let ds = parse(src).expect("parses");
        assert_eq!(ds.len(), 2);
        // Both stacked directives land on the first following code line.
        assert_eq!(ds[0].target, 5);
        assert_eq!(ds[1].target, 5);
    }

    #[test]
    fn unknown_rule_code_is_a_hard_error() {
        let err = parse("// simlint::allow(T9/bogus): nope\nfn f() {}").unwrap_err();
        assert!(err.contains("unknown rule code `T9/bogus`"), "{err}");
        assert!(err.starts_with("crates/demo/src/lib.rs:1:1:"), "{err}");
    }

    #[test]
    fn short_rule_codes_are_rejected() {
        let err = parse("// simlint::allow(T1): terse\nfn f() {}").unwrap_err();
        assert!(err.contains("unknown rule code `T1`"), "{err}");
    }

    #[test]
    fn missing_reason_is_a_hard_error() {
        let err = parse("// simlint::allow(T2/rng-escape)\nfn f() {}").unwrap_err();
        assert!(err.contains("missing `: <reason>`"), "{err}");
        let err = parse("// simlint::allow(T2/rng-escape):   \nfn f() {}").unwrap_err();
        assert!(err.contains("empty reason"), "{err}");
    }

    #[test]
    fn unknown_directive_kind_is_a_hard_error() {
        let err = parse("// simlint::deny(D1/hash-collections): no\nfn f() {}").unwrap_err();
        assert!(err.contains("unknown directive"), "{err}");
    }

    #[test]
    fn filter_marks_used_and_removes_matched_findings() {
        let ds = parse("fn f() {\n    let x = 1; // simlint::allow(D2/wall-clock): fixture\n}")
            .expect("parses");
        let hit = Finding {
            path: "crates/demo/src/lib.rs".into(),
            line: 2,
            col: 5,
            code: "D2/wall-clock",
            message: "m".into(),
        };
        let miss = Finding {
            path: "crates/demo/src/lib.rs".into(),
            line: 2,
            col: 9,
            code: "D1/hash-collections",
            message: "m".into(),
        };
        let (kept, used) = filter_suppressed(&ds, vec![hit, miss]);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].code, "D1/hash-collections");
        assert_eq!(used, vec![true]);
    }
}
