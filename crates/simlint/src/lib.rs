//! `simlint`: SimDC's workspace determinism & invariant linter.
//!
//! The platform's core promise — same-seed runs are byte-identical and
//! the golden `table1`/`fig5` fixtures survive every PR — used to rest
//! on convention: ordered maps by habit, freeze/release pairing by
//! `debug_assert`, no wall-clock reads because nobody had added one yet.
//! `simlint` turns each convention into a checked property. It is an
//! offline, dependency-free static-analysis pass with its own
//! lightweight Rust scanner ([`lexer`]); it does not parse Rust fully —
//! it lexes just enough to pattern-match the project-specific rules in
//! [`rules`] without tripping over strings or doc comments. On top of
//! the lexer sits a workspace-level layer — an item parser
//! ([`parser`]), a cross-file symbol table ([`symbols`]) and a resolved
//! call graph ([`callgraph`]) — powering the P-rule purity analysis
//! ([`purity`]): the transitive worker-reachability check that makes
//! the sharded core's "no shared mutation off the serial phases"
//! contract a static gate instead of a runtime hope.
//!
//! Above the call graph sits the value-flow tier: statement-level
//! def-use extraction ([`dataflow`]) and the interprocedural
//! determinism-taint analysis ([`taint`]) behind the T-rules — rng
//! stream-label aliasing, draws escaping the compute phase, unordered
//! float reductions, and seed provenance. File-local policy exceptions
//! are inline `// simlint::allow(<rule>): <reason>` comments
//! ([`suppress`]); workspace policy lives in `simlint.toml` at the
//! workspace root ([`config`]).
//!
//! Run it over the workspace (the CI gate):
//!
//! ```text
//! cargo run -p simdc-simlint --release -- --workspace
//! ```
//!
//! Exit code 0 means a clean tree; any finding exits 1 and prints
//! GCC-style `path:line:col: [code] message` diagnostics (`--format
//! json` and `--format sarif` render the same findings for the baseline
//! diff and for CI annotation upload). See ARCHITECTURE.md § "Static
//! analysis & determinism discipline" for the rule catalog and the
//! exception policy.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod callgraph;
pub mod config;
pub mod dataflow;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod purity;
pub mod rules;
pub mod suppress;
pub mod symbols;
pub mod taint;
pub mod walk;

pub use config::{Config, ConfigError};
pub use diag::{render_json, render_sarif, Finding};
pub use purity::{analyze_sources, GraphStats};
pub use rules::{lint_file, FileContext};
pub use taint::{function_summaries, TaintSummary, DRAWN, FLOATY, STREAM};
pub use walk::{find_workspace_root, lint_sources, lint_workspace, ScanReport};
