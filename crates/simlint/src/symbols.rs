//! Cross-file symbol table: every function, struct field, trait and
//! trait-impl in the workspace, indexed for nominal resolution.
//!
//! The table flattens all [`crate::parser::ParsedFile`]s into one
//! function arena with stable ids ([`FnId`] — the index order follows
//! the sorted file order of the scan, so every derived artifact is
//! deterministic). Lookup structure matches how the call-graph layer
//! resolves names:
//!
//! * bare name → free functions (for `foo(..)` and `path::foo(..)`),
//!   narrowed same-file → same-crate → workspace;
//! * `(type, method)` → inherent/trait-impl methods;
//! * method name → all methods anywhere (the unknown-receiver fallback);
//! * trait → implementing types, and trait → method names (for calls
//!   through generic bounds like `S: PlanSubstrate`);
//! * `(type, field)` → field type head (to type `self.rm.release(..)`).

use std::collections::{BTreeMap, BTreeSet};

use crate::parser::{FnDef, ParsedFile};

/// Index of a function in the symbol table's arena.
pub type FnId = usize;

/// The flattened workspace symbol table.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// All functions; `FnId` indexes into this.
    pub fns: Vec<FnEntry>,
    /// Free functions by bare name.
    pub free_by_name: BTreeMap<String, Vec<FnId>>,
    /// Methods by `(owner type, method name)`.
    pub by_owner_method: BTreeMap<(String, String), Vec<FnId>>,
    /// Methods by bare name (unknown-receiver fallback).
    pub methods_by_name: BTreeMap<String, Vec<FnId>>,
    /// Trait name → implementing type heads.
    pub trait_impls: BTreeMap<String, Vec<String>>,
    /// Trait name → method names it declares.
    pub trait_methods: BTreeMap<String, BTreeSet<String>>,
    /// `(type, field)` → field type head.
    pub fields: BTreeMap<(String, String), String>,
    /// Struct names defined in the workspace.
    pub types: BTreeSet<String>,
}

/// One function plus its defining file.
#[derive(Debug)]
pub struct FnEntry {
    /// The parsed definition.
    pub def: FnDef,
    /// Workspace-relative `/`-separated path of the defining file.
    pub file: String,
    /// The crate prefix of `file` (`crates/<name>` or `src`).
    pub crate_key: String,
}

/// The `crates/<name>` (or `src`) prefix of a workspace-relative path.
pub fn crate_key(path: &str) -> String {
    let mut parts = path.split('/');
    match (parts.next(), parts.next()) {
        (Some(root @ ("crates" | "vendor")), Some(member)) => format!("{root}/{member}"),
        (Some(first), _) => first.to_string(),
        _ => String::new(),
    }
}

impl SymbolTable {
    /// Builds the table from parsed files (already in scan order).
    pub fn build(files: Vec<ParsedFile>) -> SymbolTable {
        let mut table = SymbolTable::default();
        for file in files {
            let path = file.path.clone();
            let ckey = crate_key(&path);
            for s in &file.structs {
                table.types.insert(s.name.clone());
                for (field, ty) in &s.fields {
                    table
                        .fields
                        .insert((s.name.clone(), field.clone()), ty.clone());
                }
            }
            for t in &file.traits {
                let methods = table.trait_methods.entry(t.name.clone()).or_default();
                methods.extend(t.methods.iter().cloned());
                table.trait_impls.entry(t.name.clone()).or_default();
            }
            for ti in &file.trait_impls {
                let impls = table.trait_impls.entry(ti.trait_name.clone()).or_default();
                if !impls.contains(&ti.type_name) {
                    impls.push(ti.type_name.clone());
                }
            }
            for def in file.fns {
                let id = table.fns.len();
                match &def.owner {
                    Some(owner) => {
                        table
                            .by_owner_method
                            .entry((owner.clone(), def.name.clone()))
                            .or_default()
                            .push(id);
                        table
                            .methods_by_name
                            .entry(def.name.clone())
                            .or_default()
                            .push(id);
                    }
                    None => {
                        table
                            .free_by_name
                            .entry(def.name.clone())
                            .or_default()
                            .push(id);
                    }
                }
                table.fns.push(FnEntry {
                    def,
                    file: path.clone(),
                    crate_key: ckey.clone(),
                });
            }
        }
        table
    }

    /// Free functions named `name`, narrowed to the closest scope that
    /// has any: same file, then same crate, then the whole workspace.
    pub fn resolve_free(&self, name: &str, from_file: &str) -> Vec<FnId> {
        let Some(all) = self.free_by_name.get(name) else {
            return Vec::new();
        };
        let same_file: Vec<FnId> = all
            .iter()
            .copied()
            .filter(|&id| self.fns[id].file == from_file)
            .collect();
        if !same_file.is_empty() {
            return same_file;
        }
        let from_crate = crate_key(from_file);
        let same_crate: Vec<FnId> = all
            .iter()
            .copied()
            .filter(|&id| self.fns[id].crate_key == from_crate)
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        all.clone()
    }

    /// Methods `name` on type `owner` (inherent or trait-impl).
    pub fn resolve_method(&self, owner: &str, name: &str) -> Vec<FnId> {
        self.by_owner_method
            .get(&(owner.to_string(), name.to_string()))
            .cloned()
            .unwrap_or_default()
    }

    /// Methods `name` on every implementor of `trait_name`, plus the
    /// trait's own defaulted body if it has one.
    pub fn resolve_trait_method(&self, trait_name: &str, name: &str) -> Vec<FnId> {
        let mut out = self.resolve_method(trait_name, name);
        if let Some(impls) = self.trait_impls.get(trait_name) {
            for ty in impls {
                out.extend(self.resolve_method(ty, name));
            }
        }
        out
    }

    /// All methods named `name`, narrowed to the caller's crate when
    /// that scope has any (the unknown-receiver fallback).
    pub fn resolve_any_method(&self, name: &str, from_file: &str) -> Vec<FnId> {
        let Some(all) = self.methods_by_name.get(name) else {
            return Vec::new();
        };
        let from_crate = crate_key(from_file);
        let same_crate: Vec<FnId> = all
            .iter()
            .copied()
            .filter(|&id| self.fns[id].crate_key == from_crate)
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        all.clone()
    }

    /// The type head of `owner.field`, if known.
    pub fn field_type(&self, owner: &str, field: &str) -> Option<&str> {
        self.fields
            .get(&(owner.to_string(), field.to_string()))
            .map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn table(files: &[(&str, &str)]) -> SymbolTable {
        SymbolTable::build(
            files
                .iter()
                .map(|(path, src)| parse_file(path, src))
                .collect(),
        )
    }

    fn displays(table: &SymbolTable, ids: &[FnId]) -> Vec<String> {
        ids.iter().map(|&id| table.fns[id].def.display()).collect()
    }

    #[test]
    fn crate_keys_group_by_workspace_member() {
        assert_eq!(crate_key("crates/core/src/dispatch.rs"), "crates/core");
        assert_eq!(crate_key("crates/core/src/sub/deep.rs"), "crates/core");
        assert_eq!(crate_key("vendor/minipool/src/lib.rs"), "vendor/minipool");
        assert_eq!(crate_key("src/lib.rs"), "src");
    }

    #[test]
    fn free_fn_resolution_narrows_file_then_crate_then_workspace() {
        let t = table(&[
            (
                "crates/a/src/lib.rs",
                "fn helper() {}\nfn local() { helper(); }",
            ),
            ("crates/a/src/other.rs", "fn caller() {}"),
            ("crates/b/src/lib.rs", "fn helper() {}"),
        ]);
        // Same file wins outright.
        let same_file = t.resolve_free("helper", "crates/a/src/lib.rs");
        assert_eq!(same_file.len(), 1);
        assert_eq!(t.fns[same_file[0]].file, "crates/a/src/lib.rs");
        // From a sibling file, same crate wins over the workspace twin.
        let same_crate = t.resolve_free("helper", "crates/a/src/other.rs");
        assert_eq!(same_crate.len(), 1);
        assert_eq!(t.fns[same_crate[0]].crate_key, "crates/a");
        // From an unrelated crate, the whole workspace is in play.
        assert_eq!(t.resolve_free("helper", "crates/c/src/lib.rs").len(), 2);
    }

    #[test]
    fn methods_fields_and_trait_impls_are_indexed() {
        let t = table(&[(
            "crates/a/src/lib.rs",
            "struct W { rm: R }\ntrait Plan { fn go(&self) {} }\nimpl Plan for W { fn go(&self) {} }\nimpl W { fn tick(&self) {} }",
        )]);
        assert_eq!(
            displays(&t, &t.resolve_method("W", "tick")),
            vec!["W::tick"]
        );
        assert_eq!(t.field_type("W", "rm"), Some("R"));
        // Trait resolution reaches the default body and every impl.
        let through_trait = displays(&t, &t.resolve_trait_method("Plan", "go"));
        assert!(
            through_trait.contains(&"Plan::go".to_string()),
            "{through_trait:?}"
        );
        assert!(
            through_trait.contains(&"W::go".to_string()),
            "{through_trait:?}"
        );
    }
}
