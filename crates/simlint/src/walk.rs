//! Workspace discovery: which files get linted, and with what context.
//!
//! The scan covers the façade crate (`src/`) and every member under
//! `crates/*/src/`. Deliberately out of scope:
//!
//! * `vendor/` — offline stand-ins for external crates; not SimDC code;
//! * `tests/`, `benches/`, `examples/` directories — test scaffolding
//!   (in-file `#[cfg(test)]` modules are already exempted by the lexer);
//! * `target/` and anything else outside the two source roots.
//!
//! The walk runs two passes over the same file set: the per-file token
//! rules ([`crate::rules`]), then the workspace-level call-graph
//! analysis ([`crate::purity`]) which needs every file at once to
//! resolve cross-crate symbols.

use std::fs;
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::diag::{sort_findings, Finding};
use crate::lexer::{lex, lex_with_comments};
use crate::purity::{workspace_findings, GraphStats};
use crate::rules::{lint_file, FileContext};
use crate::suppress::{filter_suppressed, parse_directives, unused_finding};

/// The result of a workspace scan.
#[derive(Debug)]
pub struct ScanReport {
    /// All findings, sorted by path and position.
    pub findings: Vec<Finding>,
    /// How many files were scanned.
    pub files_scanned: usize,
    /// Size of the call graph the purity analysis ran over.
    pub graph: GraphStats,
}

/// Walks the workspace at `root` and lints every in-scope file.
///
/// # Errors
///
/// Returns a message when the root does not look like the SimDC
/// workspace or a source file cannot be read.
pub fn lint_workspace(root: &Path, cfg: &Config) -> Result<ScanReport, String> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() || !root.join("Cargo.toml").is_file() {
        return Err(format!(
            "{} does not look like the workspace root (no crates/ + Cargo.toml)",
            root.display()
        ));
    }

    // Crate source roots: the façade crate plus every crates/* member.
    let mut src_roots: Vec<PathBuf> = Vec::new();
    if root.join("src").is_dir() {
        src_roots.push(root.join("src"));
    }
    let mut members: Vec<PathBuf> = Vec::new();
    let entries =
        fs::read_dir(&crates_dir).map_err(|e| format!("read {}: {e}", crates_dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read crates/: {e}"))?;
        if entry.path().is_dir() {
            members.push(entry.path());
        }
    }
    members.sort();
    for member in members {
        let src = member.join("src");
        if src.is_dir() {
            src_roots.push(src);
        }
    }

    let mut sources: Vec<(String, String)> = Vec::new();
    for src_root in src_roots {
        let mut files = Vec::new();
        collect_rs_files(&src_root, &mut files)?;
        files.sort();
        for file in files {
            let rel = relative_slash_path(root, &file);
            let source =
                fs::read_to_string(&file).map_err(|e| format!("read {}: {e}", file.display()))?;
            sources.push((rel, source));
        }
    }
    lint_sources(&sources, cfg)
}

/// Runs the full lint pipeline over already-loaded sources: per-file
/// token rules, the workspace-level call-graph analysis (P- and
/// T-rules, typed D3, stale-config checks), inline `simlint::allow`
/// suppression, and `S1/unused-suppression` reporting.
///
/// `files` are `(workspace-relative path, source)` pairs in scan order
/// — the same pipeline serves [`lint_workspace`] and in-memory tests.
///
/// # Errors
///
/// Returns a message on a malformed suppression directive (unknown rule
/// code, missing reason) — directives are policy, and a typo must never
/// silently widen a waiver.
pub fn lint_sources(files: &[(String, String)], cfg: &Config) -> Result<ScanReport, String> {
    let mut findings = Vec::new();
    let mut directives = Vec::new();
    for (path, source) in files {
        let ctx = FileContext {
            is_crate_root: path_is_crate_root(path),
            crate_has_doc_gate: crate_doc_gate(files, path),
        };
        findings.extend(lint_file(path, source, &ctx, cfg));
        let (tokens, comments) = lex_with_comments(source);
        directives.extend(parse_directives(path, &comments, &tokens)?);
    }
    // Workspace-level pass: symbol table, call graph, P-/T-rules and the
    // call-graph-aware D3 check over every scanned file at once.
    let (analysis_findings, graph) = workspace_findings(files, cfg);
    findings.extend(analysis_findings);
    // Inline suppressions: drop waived findings, then report every
    // directive that waived nothing.
    let (mut findings, used) = filter_suppressed(&directives, findings);
    for (directive, used) in directives.iter().zip(used) {
        if !used {
            findings.push(unused_finding(directive));
        }
    }
    sort_findings(&mut findings);
    // The typed D3 check and the token rule can anchor the same call
    // site; keep one diagnostic per (position, code).
    findings.dedup_by(|a, b| {
        a.path == b.path && a.line == b.line && a.col == b.col && a.code == b.code
    });
    Ok(ScanReport {
        findings,
        files_scanned: files.len(),
        graph,
    })
}

/// Whether a workspace-relative path is a crate root (`src/lib.rs` of
/// the façade crate or of a `crates/*` member).
fn path_is_crate_root(path: &str) -> bool {
    let segs: Vec<&str> = path.split('/').collect();
    matches!(
        segs.as_slice(),
        ["src", "lib.rs"] | ["crates", _, "src", "lib.rs"]
    )
}

/// Whether the crate containing `path` compiles under
/// `#![deny(missing_docs)]` (checked lexically on its `lib.rs` within
/// the loaded file set).
fn crate_doc_gate(files: &[(String, String)], path: &str) -> bool {
    let root = match path.split_once("src/") {
        Some((prefix, _)) => format!("{prefix}src/lib.rs"),
        None => return false,
    };
    let Some((_, source)) = files.iter().find(|(p, _)| *p == root) else {
        return false;
    };
    let tokens = lex(source);
    let has = |ident: &str| tokens.iter().any(|t| t.is_ident(ident));
    has("deny") && has("missing_docs")
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `root`-relative path with `/` separators, for stable diagnostics.
fn relative_slash_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Finds the workspace root by walking up from `start` until a directory
/// holds both `Cargo.toml` and `crates/`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
