//! Intra-procedural def-use extraction: the statement-level layer the
//! taint analysis runs on.
//!
//! `extract_body` supersedes the call-only body scan of earlier
//! versions. On top of the call sites and `let`-typed locals the
//! call-graph layer already used, it records:
//!
//! * **flows** — `let` initialisers, plain assignments and compound
//!   (`+=`-family) assignments, each with the variable/call/literal
//!   sources of its right-hand side;
//! * **returns** — `return expr;` statements plus the tail expression,
//!   so per-function summaries can say "this function's result carries
//!   its inputs' taint";
//! * **loops** — `for pat in head { body }` spans, so the
//!   unordered-float-reduction rule can ask "is this accumulation inside
//!   iteration whose order is not provably deterministic?";
//! * **call arguments** — per-argument sources and constant-string
//!   detection (the T1 label analysis needs to know that
//!   `RngStream::named(seed, "task/a")` has a *constant* label while
//!   `named(seed, &label)` does not), and `::<f64>` turbofish heads (the
//!   float evidence for `.sum::<f64>()`).
//!
//! Everything stays nominal and flow-insensitive: sources are joined,
//! never killed, so the downstream taint fixpoint is monotone and its
//! result independent of statement order — the same determinism
//! discipline the linter polices.

use crate::lexer::{TokKind, Token};
use crate::parser::{
    ctor_type_head, match_brace, match_paren, method_callee, path_callee, read_type_head,
    skip_angles, CallSite, Callee, FnDef, KEYWORDS,
};

/// The sources feeding a value: variable reads (with `self.field`
/// composites), call results (indices into the function's call list),
/// float-literal/cast evidence, and the constant-string shape.
#[derive(Debug, Default, Clone)]
pub struct Sources {
    /// Variable names read (sorted, deduped).
    pub vars: Vec<String>,
    /// Indices into [`FnDef::calls`] whose results feed the value.
    pub calls: Vec<usize>,
    /// Whether a float literal or `as f32/f64` cast appears.
    pub has_float_lit: bool,
    /// `Some(content)` when the span is exactly one (possibly
    /// `&`-prefixed) string literal.
    pub lit: Option<String>,
}

/// One call argument: its sources plus the constant-string content when
/// the argument is a lone string literal.
#[derive(Debug, Clone)]
pub struct ArgInfo {
    /// What the argument expression reads.
    pub src: Sources,
    /// The constant string, for label-site analysis.
    pub lit: Option<String>,
}

/// What an assignment writes.
#[derive(Debug, Clone)]
pub enum FlowTarget {
    /// A plain variable (`acc = …`).
    Var(String),
    /// A field chain (`self.state = …`, `ev.time = …`).
    Field {
        /// The full dotted path (`self.state`).
        path: String,
        /// The final field name (`state`).
        field: String,
    },
}

/// A `for pat in head { body }` loop.
#[derive(Debug)]
pub struct LoopSpan {
    /// What the iteration head reads.
    pub head: Sources,
    /// Token-index range of the body (exclusive end), for containment
    /// tests against [`Flow::tok`] and [`CallSite::tok`].
    pub body: (usize, usize),
    /// 1-based line of the `for`.
    pub line: u32,
    /// 1-based column of the `for`.
    pub col: u32,
}

/// Extracts calls, locals, flows, returns and loops from a function body
/// (`tokens[start..end]`, the tokens between the body braces).
pub(crate) fn extract_body(tokens: &[Token], start: usize, end: usize, def: &mut FnDef) {
    // Local type environment: params seed it, `let` bindings extend it.
    // One flat map — shadowing scopes don't matter at this granularity.
    def.locals = def.params.iter().cloned().collect();

    // Token spans to resolve into call indices after the pass.
    let mut flow_spans: Vec<(usize, usize)> = Vec::new();
    let mut ret_spans: Vec<(usize, usize)> = Vec::new();
    let mut arg_spans: Vec<Vec<(usize, usize)>> = Vec::new();
    let mut loop_head_spans: Vec<(usize, usize)> = Vec::new();
    // `=` tokens already consumed by a `let` statement.
    let mut let_eqs: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();

    let mut i = start;
    while i < end {
        let t = &tokens[i];

        // `let [mut] name …` — record the binding's type head when the
        // annotation, a `Type::ctor(..)` initialiser, a float literal or
        // an `as f32/f64` cast reveals it, plus the initialiser flow.
        if t.is_ident("let") {
            let mut j = i + 1;
            if j < end && tokens[j].is_ident("mut") {
                j += 1;
            }
            if j < end
                && tokens[j].kind == TokKind::Ident
                && !KEYWORDS.contains(&tokens[j].text.as_str())
                && tokens
                    .get(j + 1)
                    .is_some_and(|t| t.is_punct(":") || t.is_punct("="))
            {
                let name = tokens[j].text.clone();
                if tokens[j + 1].is_punct(":") {
                    let (head, _) = read_type_head(tokens, j + 2, end);
                    if let Some(head) = head {
                        def.locals.insert(name.clone(), head);
                    }
                }
                // The initialiser: `=` at statement depth, to the `;`.
                if let Some(eq) = find_stmt_eq(tokens, j + 1, end) {
                    let_eqs.insert(eq);
                    let semi = stmt_end(tokens, eq + 1, end);
                    if !tokens[eq + 1..semi].is_empty() {
                        if !def.locals.contains_key(&name) {
                            if let Some(head) = ctor_type_head(tokens, eq + 1, semi) {
                                def.locals.insert(name.clone(), head);
                            } else if let Some(f) = float_type_of(tokens, eq + 1, semi) {
                                def.locals.insert(name.clone(), f.to_string());
                            }
                        }
                        def.flows.push(Flow {
                            target: FlowTarget::Var(name),
                            compound: false,
                            src: scan_sources(tokens, eq + 1, semi),
                            line: tokens[j].line,
                            col: tokens[j].col,
                            tok: j,
                        });
                        flow_spans.push((eq + 1, semi));
                    }
                }
            }
            i += 1;
            continue;
        }

        // `return expr;`
        if t.is_ident("return") {
            let semi = stmt_end(tokens, i + 1, end);
            if i + 1 < semi {
                def.rets.push(scan_sources(tokens, i + 1, semi));
                ret_spans.push((i + 1, semi));
            }
            i += 1;
            continue;
        }

        // `for pat in head { body }` (not the `for<'a>` binder form,
        // whose next token is `<`).
        if t.is_ident("for") && !tokens.get(i + 1).is_some_and(|n| n.is_punct("<")) {
            if let Some((in_idx, open)) = for_loop_shape(tokens, i, end) {
                let close = match_brace(tokens, open, end);
                def.loops.push(LoopSpan {
                    head: scan_sources(tokens, in_idx + 1, open),
                    body: (open + 1, close),
                    line: t.line,
                    col: t.col,
                });
                loop_head_spans.push((in_idx + 1, open));
            }
            i += 1;
            continue;
        }

        // Assignments: `target = rhs;` / `target += rhs;` (also -=, *=,
        // /=, %=, ^=). Comparison and arrow forms (`==`, `<=`, `=>`,
        // `->`) and `let`-consumed `=`s are excluded.
        if t.is_punct("=") && !let_eqs.contains(&i) {
            let next_eq = tokens
                .get(i + 1)
                .is_some_and(|n| n.is_punct("=") || n.is_punct(">"));
            let prev = i.checked_sub(1).map(|p| &tokens[p]);
            let prev_cmp = prev.is_some_and(|p| {
                p.is_punct("=") || p.is_punct("!") || p.is_punct("<") || p.is_punct(">")
            });
            if !next_eq && !prev_cmp {
                let compound = prev.is_some_and(|p| {
                    ["+", "-", "*", "/", "%", "^"]
                        .iter()
                        .any(|op| p.is_punct(op))
                });
                let target_end = if compound { i - 1 } else { i };
                if let Some(target) = assign_target(tokens, target_end) {
                    let semi = stmt_end(tokens, i + 1, end);
                    if i + 1 < semi {
                        let at = if compound { i - 1 } else { i };
                        def.flows.push(Flow {
                            target,
                            compound,
                            src: scan_sources(tokens, i + 1, semi),
                            line: tokens[at].line,
                            col: tokens[at].col,
                            tok: at,
                        });
                        flow_spans.push((i + 1, semi));
                    }
                }
            }
            i += 1;
            continue;
        }

        // A call: identifier followed by `(` (optionally via a
        // `::<T>` turbofish), not preceded by `fn` or a macro bang.
        if t.kind == TokKind::Ident && !KEYWORDS.contains(&t.text.as_str()) {
            let (open, turbofish) = if tokens.get(i + 1).is_some_and(|n| n.is_punct("(")) {
                (Some(i + 1), None)
            } else if tokens.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && tokens.get(i + 2).is_some_and(|n| n.is_punct("<"))
            {
                let past = skip_angles(tokens, i + 2, end);
                if past < end && tokens[past].is_punct("(") {
                    let (head, _) = read_type_head(tokens, i + 3, past.saturating_sub(1));
                    (Some(past), head)
                } else {
                    (None, None)
                }
            } else {
                (None, None)
            };
            if let Some(open) = open {
                let prev = i.checked_sub(1).map(|p| &tokens[p]);
                let callee = match prev {
                    Some(p) if p.is_punct(".") => Some(method_callee(tokens, i)),
                    Some(p) if p.is_punct("::") && turbofish.is_none() => {
                        Some(path_callee(tokens, i))
                    }
                    Some(p) if p.is_punct("::") => {
                        // `Type::parse::<T>(..)`: the `::` before the name
                        // belongs to the path, not the turbofish.
                        Some(path_callee(tokens, i))
                    }
                    Some(p) if p.is_ident("fn") => None,
                    Some(p) if p.is_punct("!") => None, // macro bang — not a call
                    _ => Some(Callee::Free(t.text.clone())),
                };
                if let Some(callee) = callee {
                    let base = match &callee {
                        Callee::Method { .. } => Some(chain_base(tokens, i)),
                        _ => None,
                    };
                    let close = match_paren(tokens, open, end);
                    let (args, spans) = split_args(tokens, open + 1, close);
                    def.calls.push(CallSite {
                        line: t.line,
                        col: t.col,
                        callee,
                        tok: i,
                        args,
                        turbofish,
                        base,
                    });
                    arg_spans.push(spans);
                }
            }
        }
        i += 1;
    }

    // Tail expression: the segment after the last statement-depth `;`.
    // A body ending in `;` has no tail at all; a body ending in `}` may
    // end in a value-producing `match`/`if` block, so fall back to the
    // segment containing that block and collect conservatively.
    // Statement keywords head non-value tails and are skipped.
    let (boundary, prev_boundary) = last_stmt_boundary(tokens, start, end);
    let tail_start = if boundary < end {
        Some(boundary)
    } else if end > start && tokens[end - 1].is_punct("}") {
        Some(prev_boundary)
    } else {
        None
    };
    if let Some(tail_start) = tail_start {
        if let Some(first) = tokens[tail_start..end].iter().find(|t| !t.is_punct("}")) {
            let is_stmt = ["let", "for", "while", "loop", "return"]
                .iter()
                .any(|k| first.is_ident(k));
            if !is_stmt {
                def.rets.push(scan_sources(tokens, tail_start, end));
                ret_spans.push((tail_start, end));
            }
        }
    }

    // Resolve call indices for every recorded span by token containment.
    let call_toks: Vec<usize> = def.calls.iter().map(|c| c.tok).collect();
    let calls_in = |span: (usize, usize)| -> Vec<usize> {
        call_toks
            .iter()
            .enumerate()
            .filter(|(_, &t)| span.0 <= t && t < span.1)
            .map(|(i, _)| i)
            .collect()
    };
    for (flow, span) in def.flows.iter_mut().zip(&flow_spans) {
        flow.src.calls = calls_in(*span);
    }
    for (ret, span) in def.rets.iter_mut().zip(&ret_spans) {
        ret.calls = calls_in(*span);
    }
    for (lp, span) in def.loops.iter_mut().zip(&loop_head_spans) {
        lp.head.calls = calls_in(*span);
    }
    for (ci, spans) in arg_spans.iter().enumerate() {
        for (ai, span) in spans.iter().enumerate() {
            def.calls[ci].args[ai].src.calls = calls_in(*span);
        }
    }
}

/// One value flow into a variable or field.
#[derive(Debug)]
pub struct Flow {
    /// What is written.
    pub target: FlowTarget,
    /// Whether this is a compound (`+=`-family) assignment.
    pub compound: bool,
    /// What the right-hand side reads.
    pub src: Sources,
    /// 1-based line of the assignment.
    pub line: u32,
    /// 1-based column of the assignment.
    pub col: u32,
    /// Token index of the assignment (for loop-body containment).
    pub tok: usize,
}

/// The `=` of a `let` statement: first `=` at statement depth before the
/// terminating `;`.
fn find_stmt_eq(tokens: &[Token], start: usize, end: usize) -> Option<usize> {
    let mut depth = 0isize;
    let mut j = start;
    while j < end {
        let t = &tokens[j];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") || t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(")")
            || t.is_punct("]")
            || t.is_punct("}")
            || (t.is_punct(">") && depth > 0)
        {
            depth -= 1;
        } else if t.is_punct(";") && depth <= 0 {
            return None;
        } else if t.is_punct("=") && depth <= 0 {
            // `==` can head a `let b = a == c` RHS only *after* the first
            // `=`; before it, `=` at depth 0 is the binding's.
            return Some(j);
        }
        j += 1;
    }
    None
}

/// Index of the `;` ending the statement starting at `start` (brace,
/// bracket and paren depth respected), or of the first unmatched `}`.
fn stmt_end(tokens: &[Token], start: usize, end: usize) -> usize {
    let mut depth = 0isize;
    let mut j = start;
    while j < end {
        let t = &tokens[j];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            if depth == 0 {
                return j;
            }
            depth -= 1;
        } else if t.is_punct(";") && depth == 0 {
            return j;
        }
        j += 1;
    }
    end
}

/// `(last, previous)` statement boundaries of the body: indices just
/// past the last two `;`s or block-statement `}`s at body depth.
fn last_stmt_boundary(tokens: &[Token], start: usize, end: usize) -> (usize, usize) {
    let mut depth = 0isize;
    let mut boundary = start;
    let mut prev = start;
    let mut j = start;
    while j < end {
        let t = &tokens[j];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
            // Only a *block* close is a statement boundary; a `)` or `]`
            // returning to body depth just ends a tail expression like
            // `rng.next_u64()`.
            if depth == 0 && t.is_punct("}") {
                prev = boundary;
                boundary = j + 1;
            }
        } else if t.is_punct(";") && depth == 0 {
            prev = boundary;
            boundary = j + 1;
        }
        j += 1;
    }
    (boundary, prev)
}

/// The `(in_idx, body_open)` shape of a `for` loop at `at`, if present.
fn for_loop_shape(tokens: &[Token], at: usize, end: usize) -> Option<(usize, usize)> {
    let mut depth = 0isize;
    let mut j = at + 1;
    let mut in_idx = None;
    while j < end {
        let t = &tokens[j];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if t.is_ident("in") && depth == 0 && in_idx.is_none() {
            in_idx = Some(j);
        } else if t.is_punct("{") && depth == 0 {
            return in_idx.filter(|&idx| idx < j).map(|idx| (idx, j));
        } else if t.is_punct(";") && depth == 0 {
            return None;
        }
        j += 1;
    }
    None
}

/// The assignment target whose last token is at `last` (just before the
/// operator): an identifier, a dotted chain, or an indexed base.
fn assign_target(tokens: &[Token], last: usize) -> Option<FlowTarget> {
    let mut k = last.checked_sub(1)?;
    // `v[idx] = …`: step back over the brackets to the base.
    if tokens[k].is_punct("]") {
        let mut depth = 0isize;
        loop {
            if tokens[k].is_punct("]") {
                depth += 1;
            } else if tokens[k].is_punct("[") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k = k.checked_sub(1)?;
        }
        k = k.checked_sub(1)?;
    }
    if tokens[k].kind != TokKind::Ident {
        return None;
    }
    // Collect the dotted chain right-to-left: ident (`.` ident)*.
    let mut segs = vec![tokens[k].text.clone()];
    while k >= 2 && tokens[k - 1].is_punct(".") && tokens[k - 2].kind == TokKind::Ident {
        k -= 2;
        segs.push(tokens[k].text.clone());
    }
    segs.reverse();
    if segs
        .iter()
        .any(|s| KEYWORDS.contains(&s.as_str()) && s != "self")
    {
        return None;
    }
    match segs.as_slice() {
        [one] if one != "self" => Some(FlowTarget::Var(one.clone())),
        [_one] => None,
        many => Some(FlowTarget::Field {
            path: many.join("."),
            field: many.last().cloned().unwrap_or_default(),
        }),
    }
}

/// Collects the variable reads, float evidence and constant-string shape
/// of `tokens[start..end]`. Call indices are filled in afterwards by
/// token containment.
pub(crate) fn scan_sources(tokens: &[Token], start: usize, end: usize) -> Sources {
    let mut src = Sources::default();
    let mut non_amp = 0usize;
    let mut only_str: Option<String> = None;
    let mut j = start;
    while j < end {
        let t = &tokens[j];
        match t.kind {
            TokKind::Str => {
                if non_amp == 0 && only_str.is_none() {
                    only_str = Some(t.text.clone());
                } else {
                    only_str = None;
                }
                non_amp += 1;
            }
            TokKind::Literal => {
                if is_float_lit(&t.text) {
                    src.has_float_lit = true;
                }
                non_amp += 1;
            }
            TokKind::Punct => {
                if !t.is_punct("&") {
                    non_amp += 1;
                    if only_str.is_some() {
                        only_str = None;
                    }
                }
            }
            TokKind::Ident => {
                non_amp += 1;
                if only_str.is_some() {
                    only_str = None;
                }
                let next = tokens.get(j + 1);
                let prev = j.checked_sub(1).map(|p| &tokens[p]);
                if t.text == "f32" || t.text == "f64" {
                    // `as f64` casts are float evidence; other positions
                    // are type syntax, never a variable.
                    if prev.is_some_and(|p| p.is_ident("as")) {
                        src.has_float_lit = true;
                    }
                } else if KEYWORDS.contains(&t.text.as_str()) {
                    // Keywords are never reads; `self` is handled below
                    // through the `self.field` composite.
                } else if next.is_some_and(|n| n.is_punct("(")) {
                    // Call name. Its arguments flow through the call —
                    // the result is linked by call index, so scanning
                    // them here would double-count (and re-introduce
                    // kinds the callee does not return).
                    j = match_paren(tokens, j + 1, end);
                } else if next.is_some_and(|n| n.is_punct("!")) {
                    // Macro name — skip a parenthesised argument list
                    // for the same reason.
                    if tokens.get(j + 2).is_some_and(|n| n.is_punct("(")) {
                        j = match_paren(tokens, j + 2, end);
                    }
                } else if next.is_some_and(|n| n.is_punct("::")) {
                    // Path qualifier (`RngStream::…`, `u64::MAX`).
                } else if prev.is_some_and(|p| p.is_punct("::")) {
                    // Path tail (`u64::MAX`): an associated const, not a
                    // local read.
                } else if prev.is_some_and(|p| p.is_punct(".")) {
                    // Field or method position: only `self.field` reads
                    // register; deeper chains taint through their base.
                    if j >= 2 && tokens[j - 2].is_ident("self") && !is_call_receiver(tokens, j, end)
                    {
                        src.vars.push(format!("self.{}", t.text));
                    }
                } else if is_call_receiver(tokens, j, end) {
                    // Receiver of a direct method call: its taint reaches
                    // the result through the call's receiver mask, not as
                    // an independent read of this span.
                } else {
                    src.vars.push(t.text.clone());
                }
            }
        }
        j += 1;
    }
    src.vars.sort();
    src.vars.dedup();
    if non_amp == 1 {
        src.lit = only_str;
    }
    src
}

/// Splits a call's argument tokens at top-level commas into per-argument
/// [`ArgInfo`]s plus their token spans.
fn split_args(tokens: &[Token], start: usize, end: usize) -> (Vec<ArgInfo>, Vec<(usize, usize)>) {
    let mut args = Vec::new();
    let mut spans = Vec::new();
    let mut arg_start = start;
    let mut depth = 0isize;
    let mut j = start;
    while j <= end {
        let at_end = j == end;
        let is_split = at_end || (depth == 0 && tokens[j].is_punct(","));
        if !at_end {
            let t = &tokens[j];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth -= 1;
            }
        }
        if is_split {
            if arg_start < j {
                let src = scan_sources(tokens, arg_start, j);
                let lit = src.lit.clone();
                args.push(ArgInfo { src, lit });
                spans.push((arg_start, j));
            }
            arg_start = j + 1;
            if at_end {
                break;
            }
        }
        j += 1;
    }
    (args, spans)
}

/// Walks a method-call chain leftwards from the name token at `i` to its
/// base receiver, collecting intermediate method names. For
/// `self.weights.values().sum::<f64>()` the base is the `weights` field;
/// for `rng.fork(..)` it is the `rng` binding.
pub(crate) fn chain_base(tokens: &[Token], i: usize) -> crate::parser::Receiver {
    use crate::parser::Receiver;
    let Some(mut k) = i.checked_sub(1) else {
        return Receiver::Opaque(None);
    };
    // k is at the `.` before the method name; step left across links.
    loop {
        let Some(prev) = k.checked_sub(1) else {
            return Receiver::Opaque(None);
        };
        let t = &tokens[prev];
        if t.is_punct(")") {
            // `… .m(..)` link: skip the argument parens backwards.
            let mut depth = 0isize;
            let mut p = prev;
            loop {
                if tokens[p].is_punct(")") {
                    depth += 1;
                } else if tokens[p].is_punct("(") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                match p.checked_sub(1) {
                    Some(n) => p = n,
                    None => return Receiver::Opaque(None),
                }
            }
            // Optional turbofish between the method name and its parens.
            let mut m = match p.checked_sub(1) {
                Some(n) => n,
                None => return Receiver::Opaque(None),
            };
            if tokens[m].is_punct(">") {
                let mut depth = 0isize;
                loop {
                    if tokens[m].is_punct(">") {
                        depth += 1;
                    } else if tokens[m].is_punct("<") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    match m.checked_sub(1) {
                        Some(n) => m = n,
                        None => return Receiver::Opaque(None),
                    }
                }
                match m.checked_sub(1) {
                    Some(n) if tokens[n].is_punct("::") => match n.checked_sub(1) {
                        Some(nn) => m = nn,
                        None => return Receiver::Opaque(None),
                    },
                    _ => return Receiver::Opaque(None),
                }
            }
            if tokens[m].kind != TokKind::Ident {
                return Receiver::Opaque(None);
            }
            match m.checked_sub(1) {
                Some(d) if tokens[d].is_punct(".") => {
                    k = d;
                    continue;
                }
                // `free_call().m()` / `Path::call().m()` — base is the
                // call result, linked through Sources instead.
                _ => return Receiver::Opaque(Some(tokens[m].text.clone())),
            }
        }
        if t.kind == TokKind::Ident {
            // Walk a dotted ident chain to its head.
            let mut segs = vec![t.text.clone()];
            let mut h = prev;
            while h >= 2 && tokens[h - 1].is_punct(".") && tokens[h - 2].kind == TokKind::Ident {
                h -= 2;
                segs.push(tokens[h].text.clone());
            }
            segs.reverse();
            return match segs.as_slice() {
                [one] if one == "self" => Receiver::SelfValue,
                [first, field] if first == "self" => Receiver::SelfField(field.clone()),
                [one] if !KEYWORDS.contains(&one.as_str()) => Receiver::Ident(one.clone()),
                [] => Receiver::Opaque(None),
                rest => Receiver::Opaque(rest.last().cloned()),
            };
        }
        return Receiver::Opaque(None);
    }
}

/// Whether the ident at `j` is the receiver of a direct method call
/// (`recv.method(..)`). Longer chains (`a.b.c()`) stay conservative:
/// their head still registers as a read.
fn is_call_receiver(tokens: &[Token], j: usize, end: usize) -> bool {
    j + 3 < end
        && tokens[j + 1].is_punct(".")
        && tokens[j + 2].kind == TokKind::Ident
        && tokens[j + 3].is_punct("(")
}

/// Whether a retained number-literal text is a float literal.
pub(crate) fn is_float_lit(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o") {
        return false;
    }
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || text.contains('e')
        || text.contains('E')
}

/// `f32`/`f64` when the initialiser span is visibly float-typed: it
/// starts with a float literal or casts with `as f32/f64` at top level.
fn float_type_of(tokens: &[Token], start: usize, end: usize) -> Option<&'static str> {
    let first = tokens.get(start)?;
    if first.kind == TokKind::Literal && is_float_lit(&first.text) {
        return Some(if first.text.ends_with("f32") {
            "f32"
        } else {
            "f64"
        });
    }
    let mut j = start;
    while j + 1 < end {
        if tokens[j].is_ident("as") && tokens[j + 1].kind == TokKind::Ident {
            match tokens[j + 1].text.as_str() {
                "f32" => return Some("f32"),
                "f64" => return Some("f64"),
                _ => {}
            }
        }
        j += 1;
    }
    None
}
