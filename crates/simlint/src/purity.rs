//! The P-rule family: worker-purity race detection over the call graph.
//!
//! | code | rule | what it guards |
//! |------|------|----------------|
//! | `P0/unresolved-config` | every entry/exempt spec resolves | a typoed entry point is a gate that silently does nothing |
//! | `P1/shared-mutation` | no worker-reachable call into a shared-mutation sink | freeze/release, `mark_*`, event pushes and `PhoneMgr` writes belong to the serial prepare/merge phases |
//! | `P2/interior-mutability` | no worker-reachable `RefCell`/`Mutex`/`Cell`/atomics | interior mutability inside workers is a data race or a hidden ordering dependency |
//! | `P3/unordered-iteration` | no worker-reachable iteration over unordered state | `HashMap` iteration order would vary run to run |
//! | `P4/unregistered-spawner` | fan-out (`run_batch`) only at registered sites | every parallel region must be a reviewed prepare/compute/merge split |
//!
//! The analysis computes the transitive closure of functions reachable
//! from the worker entry points configured in `simlint.toml`
//! (`[rules.worker-purity] entries`) over the [`crate::callgraph`], then
//! flags any reachable call matching a configured sink. Diagnostics name
//! the full entry-point → sink path so a violation reads as the race it
//! would become. `exempt` entries prune the walk — the reviewed escape
//! hatch for context-insensitivity (e.g. the sequential `LiveSubstrate`
//! path reachable only through the shared `PlanSubstrate` bound).
//!
//! The same pass upgrades D3 freeze/release from receiver-name token
//! matching to call-graph-aware pairing: any call whose *resolved
//! receiver type* is a lease manager (`[rules.freeze-release] types`)
//! is flagged outside the blessed pairing points, however the receiver
//! is spelled.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::diag::Finding;
use crate::parser::parse_file;
use crate::symbols::{FnId, SymbolTable};

/// Iteration methods policed by P3 (and T3's loop-head detection) on
/// unordered receiver types.
pub(crate) const ITER_METHODS: &[&str] = &[
    "drain",
    "into_iter",
    "iter",
    "iter_mut",
    "keys",
    "retain",
    "values",
    "values_mut",
];

/// Constructor names policed by P2 on interior-mutability types.
const CTOR_METHODS: &[&str] = &["new", "default", "from", "with_capacity"];

/// Size of the graph the analysis ran over (reported by the CLI).
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphStats {
    /// Functions in the symbol table.
    pub functions: usize,
    /// Resolved call edges.
    pub edges: usize,
}

/// A `Type::method` / `file.rs::name` / bare-name function spec, as
/// used by `entries` and `exempt` (both the P- and T-rule sections).
#[derive(Debug)]
pub(crate) struct FnSpec {
    raw: String,
    file: Option<String>,
    owner: Option<String>,
    name: String,
    wildcard: bool,
}

impl FnSpec {
    fn parse(raw: &str) -> FnSpec {
        let (file, rest) = match raw.split_once(".rs::") {
            Some((f, r)) => (Some(format!("{f}.rs")), r),
            None => (None, raw),
        };
        let (owner, name) = match rest.rsplit_once("::") {
            Some((o, n)) => (Some(o.to_string()), n),
            None => (None, rest),
        };
        let (name, wildcard) = match name.strip_suffix('*') {
            Some(p) => (p.to_string(), true),
            None => (name.to_string(), false),
        };
        FnSpec {
            raw: raw.to_string(),
            file,
            owner,
            name,
            wildcard,
        }
    }

    fn matches(&self, symbols: &SymbolTable, id: FnId) -> bool {
        let entry = &symbols.fns[id];
        if let Some(file) = &self.file {
            if !entry.file.ends_with(file.as_str()) {
                return false;
            }
        }
        if let Some(owner) = &self.owner {
            if entry.def.owner.as_deref() != Some(owner.as_str()) {
                return false;
            }
        }
        if self.wildcard {
            entry.def.name.starts_with(&self.name)
        } else {
            entry.def.name == self.name
        }
    }
}

/// One parsed mutation-sink pattern (shared with the T2 escape-sink
/// matching in [`crate::taint`]).
#[derive(Debug)]
pub(crate) enum SinkSpec {
    /// `Type::method` — matches by resolved receiver type or target.
    Typed(String, String),
    /// `recv.method` — matches by the raw receiver identifier.
    Recv(String, String),
    /// `prefix*` — matches any callee name with the prefix.
    Prefix(String),
    /// Bare `name` — matches any callee of that exact name.
    Bare(String),
}

impl SinkSpec {
    pub(crate) fn parse(raw: &str) -> SinkSpec {
        if let Some((ty, m)) = raw.split_once("::") {
            return SinkSpec::Typed(ty.to_string(), m.to_string());
        }
        if let Some((recv, m)) = raw.split_once('.') {
            return SinkSpec::Recv(recv.to_string(), m.to_string());
        }
        if let Some(prefix) = raw.strip_suffix('*') {
            return SinkSpec::Prefix(prefix.to_string());
        }
        SinkSpec::Bare(raw.to_string())
    }

    /// Whether `call` (resolved, in `graph`) hits this sink. Returns a
    /// display name for the matched sink.
    pub(crate) fn matches(
        &self,
        graph: &CallGraph,
        call: &crate::callgraph::ResolvedCall,
    ) -> Option<String> {
        match self {
            SinkSpec::Typed(ty, m) => {
                if call.name != *m {
                    return None;
                }
                let by_type = call.recv_types.iter().any(|t| t == ty);
                let by_target = call
                    .targets
                    .iter()
                    .any(|&t| graph.symbols.fns[t].def.owner.as_deref() == Some(ty.as_str()));
                (by_type || by_target).then(|| format!("{ty}::{m}"))
            }
            SinkSpec::Recv(recv, m) => (call.name == *m
                && call.prev_ident.as_deref() == Some(recv.as_str()))
            .then(|| format!("{recv}.{m}")),
            SinkSpec::Prefix(prefix) => call
                .name
                .starts_with(prefix.as_str())
                .then(|| format!("{}(..)", call.name)),
            SinkSpec::Bare(name) => (call.name == *name).then(|| name.clone()),
        }
    }
}

/// Matches a `Name` / `Prefix*` type pattern.
pub(crate) fn type_pat_match(pat: &str, ty: &str) -> bool {
    match pat.strip_suffix('*') {
        Some(prefix) => ty.starts_with(prefix),
        None => ty == pat,
    }
}

/// Runs the workspace-level analysis over already-loaded sources, then
/// applies inline `simlint::allow` suppressions (leniently — the full
/// pipeline in [`crate::walk`] hard-errors on malformed directives and
/// reports unused ones; this entry point serves tests and callers that
/// only want the surviving findings).
///
/// `files` are `(workspace-relative path, source)` pairs in scan order;
/// the same call serves the CLI walk and the in-memory test harness.
pub fn analyze_sources(files: &[(String, String)], cfg: &Config) -> (Vec<Finding>, GraphStats) {
    let (findings, stats) = workspace_findings(files, cfg);
    let mut directives = Vec::new();
    for (path, source) in files {
        let (tokens, comments) = crate::lexer::lex_with_comments(source);
        directives.extend(crate::suppress::parse_directives_lenient(
            path, &comments, &tokens,
        ));
    }
    let (kept, _) = crate::suppress::filter_suppressed(&directives, findings);
    (kept, stats)
}

/// The unsuppressed workspace-analysis findings: symbol table, call
/// graph, P-rules, T-rules, typed D3 leases and stale-config checks.
pub(crate) fn workspace_findings(
    files: &[(String, String)],
    cfg: &Config,
) -> (Vec<Finding>, GraphStats) {
    let parsed = files
        .iter()
        .map(|(path, source)| parse_file(path, source))
        .collect();
    let symbols = SymbolTable::build(parsed);
    let graph = CallGraph::build(symbols);
    let stats = GraphStats {
        functions: graph.symbols.fns.len(),
        edges: graph.edges,
    };
    let mut findings = Vec::new();
    check_purity(&graph, cfg, &mut findings);
    check_spawners(&graph, cfg, &mut findings);
    check_typed_leases(&graph, cfg, &mut findings);
    check_stale_lease_types(&graph.symbols, cfg, &mut findings);
    crate::taint::check_taint(&graph, cfg, &mut findings);
    (findings, stats)
}

/// Resolves a spec list against the table, reporting unmatched specs
/// under the given rule `code` and config `section`.
pub(crate) fn resolve_specs(
    symbols: &SymbolTable,
    raws: &[String],
    kind: &str,
    section: &str,
    code: &'static str,
    findings: &mut Vec<Finding>,
) -> Vec<(FnSpec, Vec<FnId>)> {
    let mut out = Vec::new();
    for raw in raws {
        let spec = FnSpec::parse(raw);
        let ids: Vec<FnId> = (0..symbols.fns.len())
            .filter(|&id| spec.matches(symbols, id))
            .collect();
        if ids.is_empty() {
            findings.push(Finding {
                path: "simlint.toml".into(),
                line: 1,
                col: 1,
                code,
                message: format!(
                    "[{section}] {kind} `{}` matches no function in the \
                     workspace — fix the spec or remove the stale entry",
                    spec.raw
                ),
            });
        }
        out.push((spec, ids));
    }
    out
}

/// Stale-config check for `[rules.freeze-release] types`: a lease type
/// that names no type in the workspace is a gate that silently does
/// nothing. Only checked once the workspace has actually configured the
/// rule (non-empty `callers`) — the built-in default type list must not
/// trip projects that never opted in.
fn check_stale_lease_types(symbols: &SymbolTable, cfg: &Config, findings: &mut Vec<Finding>) {
    if cfg.lease_callers.is_empty() {
        return;
    }
    for ty in &cfg.lease_types {
        if !symbols.types.contains(ty) {
            findings.push(Finding {
                path: "simlint.toml".into(),
                line: 1,
                col: 1,
                code: "P0/unresolved-config",
                message: format!(
                    "[rules.freeze-release] types `{ty}` matches no type in the \
                     workspace — fix the spec or remove the stale entry"
                ),
            });
        }
    }
}

/// P1/P2/P3: the reachability walk and per-call sink checks.
fn check_purity(graph: &CallGraph, cfg: &Config, findings: &mut Vec<Finding>) {
    if cfg.purity_entries.is_empty() {
        return;
    }
    let symbols = &graph.symbols;
    let entries = resolve_specs(
        symbols,
        &cfg.purity_entries,
        "entry",
        "rules.worker-purity",
        "P0/unresolved-config",
        findings,
    );
    let exempts = resolve_specs(
        symbols,
        &cfg.purity_exempt,
        "exempt",
        "rules.worker-purity",
        "P0/unresolved-config",
        findings,
    );
    let exempt_ids: BTreeSet<FnId> = exempts.iter().flat_map(|(_, ids)| ids.clone()).collect();
    let sinks: Vec<SinkSpec> = cfg
        .mutation_sinks
        .iter()
        .map(|s| SinkSpec::parse(s))
        .collect();

    // BFS from every entry; `preds` reconstructs entry → sink paths.
    let mut preds: BTreeMap<FnId, Option<FnId>> = BTreeMap::new();
    let mut entry_of: BTreeMap<FnId, FnId> = BTreeMap::new();
    let mut queue: std::collections::VecDeque<FnId> = std::collections::VecDeque::new();
    for (_, ids) in &entries {
        for &id in ids {
            if !exempt_ids.contains(&id) && !preds.contains_key(&id) {
                preds.insert(id, None);
                entry_of.insert(id, id);
                queue.push_back(id);
            }
        }
    }
    while let Some(id) = queue.pop_front() {
        for next in graph.successors(id) {
            if exempt_ids.contains(&next) || preds.contains_key(&next) {
                continue;
            }
            preds.insert(next, Some(id));
            let root = entry_of[&id];
            entry_of.insert(next, root);
            queue.push_back(next);
        }
    }

    let mut reported: BTreeSet<(String, u32, u32, &'static str)> = BTreeSet::new();
    for &id in preds.keys() {
        let entry = &symbols.fns[id];
        let file = entry.file.clone();
        if cfg.is_allowed("worker-purity", &file) {
            continue;
        }
        let chain = path_to(symbols, &preds, id);
        for call in &graph.calls[id] {
            // P1: configured shared-mutation sinks.
            for sink in &sinks {
                if let Some(display) = sink.matches(graph, call) {
                    if reported.insert((file.clone(), call.line, call.col, "P1/shared-mutation")) {
                        findings.push(Finding {
                            path: file.clone(),
                            line: call.line,
                            col: call.col,
                            code: "P1/shared-mutation",
                            message: format!(
                                "worker-reachable shared mutation `{display}` — path: {chain}; \
                                 shared state may only change in the serial prepare/merge \
                                 phases (simlint.toml [rules.worker-purity])"
                            ),
                        });
                    }
                }
            }
            // P2: interior-mutability constructors / uses.
            for ty in call
                .recv_types
                .iter()
                .filter(|ty| {
                    cfg.interior_mutability
                        .iter()
                        .any(|pat| type_pat_match(pat, ty.as_str()))
                })
                .take(1)
            {
                let is_ctor = !call.is_method && CTOR_METHODS.contains(&call.name.as_str());
                let verb = if is_ctor { "constructs" } else { "uses" };
                if reported.insert((file.clone(), call.line, call.col, "P2/interior-mutability")) {
                    findings.push(Finding {
                        path: file.clone(),
                        line: call.line,
                        col: call.col,
                        code: "P2/interior-mutability",
                        message: format!(
                            "worker-reachable code {verb} interior mutability \
                             `{ty}::{}` — path: {chain}; worker results must be pure \
                             functions of (input, seed)",
                            call.name
                        ),
                    });
                }
            }
            // P3: iteration over unordered state.
            if call.is_method && ITER_METHODS.contains(&call.name.as_str()) {
                for ty in call
                    .recv_types
                    .iter()
                    .filter(|ty| {
                        cfg.unordered_state
                            .iter()
                            .any(|pat| type_pat_match(pat, ty.as_str()))
                    })
                    .take(1)
                {
                    if reported.insert((
                        file.clone(),
                        call.line,
                        call.col,
                        "P3/unordered-iteration",
                    )) {
                        findings.push(Finding {
                            path: file.clone(),
                            line: call.line,
                            col: call.col,
                            code: "P3/unordered-iteration",
                            message: format!(
                                "worker-reachable iteration over unordered `{ty}` state \
                                 (`.{}()`) — path: {chain}; iteration order would vary \
                                 run to run",
                                call.name
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// The `entry → … → fn` chain for diagnostics (shared with the T-rules).
pub(crate) fn path_to(
    symbols: &SymbolTable,
    preds: &BTreeMap<FnId, Option<FnId>>,
    id: FnId,
) -> String {
    let mut chain = vec![id];
    let mut cur = id;
    while let Some(Some(parent)) = preds.get(&cur) {
        chain.push(*parent);
        cur = *parent;
    }
    chain.reverse();
    chain
        .iter()
        .map(|&f| format!("`{}`", symbols.fns[f].def.display()))
        .collect::<Vec<_>>()
        .join(" → ")
}

/// P4: fan-out primitives only at registered spawner sites.
fn check_spawners(graph: &CallGraph, cfg: &Config, findings: &mut Vec<Finding>) {
    if cfg.spawners.is_empty() {
        return;
    }
    for (id, entry) in graph.symbols.fns.iter().enumerate() {
        let file = &entry.file;
        if cfg.spawner_sites.iter().any(|s| s == file)
            || cfg.is_allowed("worker-purity", file)
            || cfg.is_harness(file)
        {
            continue;
        }
        for call in &graph.calls[id] {
            if cfg.spawners.iter().any(|s| s == &call.name) {
                findings.push(Finding {
                    path: file.clone(),
                    line: call.line,
                    col: call.col,
                    code: "P4/unregistered-spawner",
                    message: format!(
                        "worker fan-out `{}` outside the registered spawner sites ({}) — \
                         every parallel region must be a reviewed prepare/compute/merge \
                         split (simlint.toml [rules.worker-purity] spawner_sites)",
                        call.name,
                        cfg.spawner_sites.join(", ")
                    ),
                });
            }
        }
    }
}

/// Call-graph-aware D3: lease operations matched by *resolved receiver
/// type*, not just receiver spelling — a renamed `ResourceManager`
/// binding cannot dodge the pairing-point rule.
fn check_typed_leases(graph: &CallGraph, cfg: &Config, findings: &mut Vec<Finding>) {
    if cfg.lease_types.is_empty() {
        return;
    }
    for (id, entry) in graph.symbols.fns.iter().enumerate() {
        let file = &entry.file;
        if cfg.lease_callers.iter().any(|c| c == file) || cfg.is_allowed("freeze-release", file) {
            continue;
        }
        for call in &graph.calls[id] {
            if call.name != "freeze" && call.name != "release" {
                continue;
            }
            // Already caught by the receiver-name token rule? Skip —
            // one diagnostic per site.
            if call
                .prev_ident
                .as_deref()
                .is_some_and(|r| cfg.lease_receivers.iter().any(|lr| lr == r))
            {
                continue;
            }
            let matched = call
                .recv_types
                .iter()
                .find(|ty| cfg.lease_types.iter().any(|lt| lt == *ty))
                .cloned()
                .or_else(|| {
                    call.targets
                        .iter()
                        .filter_map(|&t| graph.symbols.fns[t].def.owner.clone())
                        .find(|o| cfg.lease_types.iter().any(|lt| lt == o))
                });
            if let Some(ty) = matched {
                findings.push(Finding {
                    path: file.clone(),
                    line: call.line,
                    col: call.col,
                    code: "D3/freeze-release",
                    message: format!(
                        "lease `{ty}::{}` (resolved by receiver type) outside the \
                         plan/commit pairing points ({}) — freezes happen at admission, \
                         releases at the completion event, nowhere else",
                        call.name,
                        cfg.lease_callers.join(", ")
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(entries: &[&str], exempt: &[&str], sinks: &[&str]) -> Config {
        Config {
            purity_entries: entries.iter().map(ToString::to_string).collect(),
            purity_exempt: exempt.iter().map(ToString::to_string).collect(),
            mutation_sinks: sinks.iter().map(ToString::to_string).collect(),
            ..Config::default()
        }
    }

    fn run(src: &str, cfg: &Config) -> Vec<String> {
        let files = vec![("crates/a/src/lib.rs".to_string(), src.to_string())];
        let (findings, _) = analyze_sources(&files, cfg);
        findings.iter().map(ToString::to_string).collect()
    }

    const CHAIN: &str = "struct Rm {}\nimpl Rm { fn release(&mut self, id: u64) { let _ = id; } }\nstruct W { rm: Rm }\nimpl W {\n    fn entry(&mut self) { self.mid(); }\n    fn mid(&mut self) { self.rm.release(1); }\n}\n";

    #[test]
    fn sink_reached_through_a_chain_names_the_path() {
        let findings = run(CHAIN, &cfg(&["W::entry"], &[], &["Rm::release"]));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].contains("[P1/shared-mutation]")
                && findings[0].contains("`Rm::release`")
                && findings[0].contains("`W::entry` → `W::mid`"),
            "{}",
            findings[0]
        );
    }

    #[test]
    fn exempting_the_mediator_prunes_the_whole_subtree() {
        let findings = run(CHAIN, &cfg(&["W::entry"], &["W::mid"], &["Rm::release"]));
        assert_eq!(findings, Vec::<String>::new());
    }

    #[test]
    fn wildcard_exempt_matches_every_method_of_the_type() {
        let findings = run(CHAIN, &cfg(&["W::entry"], &["W::*"], &["Rm::release"]));
        assert_eq!(findings, Vec::<String>::new());
    }

    #[test]
    fn typed_sinks_survive_receiver_renaming() {
        // The binding is not called `rm`; only the resolved receiver
        // type can match the sink spec.
        let src = "struct Rm {}\nimpl Rm { fn release(&mut self, id: u64) { let _ = id; } }\nfn entry(leases: &mut Rm) { leases.release(1); }\n";
        let findings = run(
            src,
            &cfg(&["crates/a/src/lib.rs::entry"], &[], &["Rm::release"]),
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].contains("`Rm::release`"), "{}", findings[0]);
    }

    #[test]
    fn stale_entry_and_exempt_specs_are_hard_findings() {
        let findings = run(CHAIN, &cfg(&["Ghost::entry"], &["Ghost::*"], &[]));
        assert_eq!(findings.len(), 2, "{findings:?}");
        for f in &findings {
            assert!(
                f.starts_with("simlint.toml:1:1: [P0/unresolved-config]"),
                "{f}"
            );
        }
        assert!(findings.iter().any(|f| f.contains("entry `Ghost::entry`")));
        assert!(findings.iter().any(|f| f.contains("exempt `Ghost::*`")));
    }

    #[test]
    fn stale_lease_type_is_a_hard_finding_once_the_rule_is_configured() {
        let cfg = Config {
            lease_callers: vec!["W::entry".into()],
            lease_types: vec!["GhostLease".into()],
            ..Config::default()
        };
        let findings = run(CHAIN, &cfg);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].starts_with("simlint.toml:1:1: [P0/unresolved-config]")
                && findings[0].contains("[rules.freeze-release] types `GhostLease`"),
            "{}",
            findings[0]
        );
    }

    #[test]
    fn default_lease_types_do_not_trip_unconfigured_projects() {
        // `lease_callers` empty → the built-in default type list must
        // stay silent even though none of its names exist here.
        let findings = run(CHAIN, &Config::default());
        assert_eq!(findings, Vec::<String>::new());
    }

    #[test]
    fn code_not_reachable_from_an_entry_is_not_policed() {
        // Same sink, but nothing links `entry` to it.
        let src = "struct Rm {}\nimpl Rm { fn release(&mut self, id: u64) { let _ = id; } }\nstruct W { rm: Rm }\nimpl W {\n    fn entry(&self) -> u64 { 1 }\n    fn serial(&mut self) { self.rm.release(1); }\n}\n";
        let findings = run(src, &cfg(&["W::entry"], &[], &["Rm::release"]));
        assert_eq!(findings, Vec::<String>::new());
    }

    #[test]
    fn empty_entry_list_disables_the_reachability_rules() {
        let findings = run(CHAIN, &cfg(&[], &[], &["Rm::release"]));
        assert_eq!(findings, Vec::<String>::new());
    }
}
