//! The T-rule family: interprocedural determinism-taint dataflow.
//!
//! | code | rule | what it guards |
//! |------|------|----------------|
//! | `T0/unresolved-config` | every taint entry/exempt/arg spec resolves | a typoed spec is a gate that silently does nothing |
//! | `T1/rng-stream-aliasing` | rng stream labels are constant and unique | two streams created under one label draw identical sequences |
//! | `T2/rng-escape` | draws stay inside the compute phase | a drawn value written into shared/merge state or an event time/seq field couples the schedule to the draw order |
//! | `T3/unordered-float-reduction` | no float accumulation over unordered iteration | `HashMap`-order float sums differ run to run even with identical elements |
//! | `T4/seed-provenance` | stream seeds trace to the experiment seed/config | seeding from a drawn or float-cast value breaks replayability |
//!
//! The analysis is a three-bit taint lattice over the [`crate::dataflow`]
//! def-use extraction: [`DRAWN`] (came out of an rng draw), [`FLOATY`]
//! (float-valued or float-cast) and [`STREAM`] (the value *is* an rng
//! stream). Per-function summaries — intrinsic return taint, per-param
//! return passthrough, and "param *n* reaches a seed/escape sink" facts —
//! are iterated to a global fixpoint over the [`crate::callgraph`], so a
//! draw that funnels through two helper calls into a seed argument is
//! still caught, and the finding fires at the call site where the tainted
//! value enters the callee. All joins are monotone and all maps ordered,
//! so the fixpoint terminates and its output is deterministic — the same
//! discipline the linter polices.
//!
//! Like the P-rules, the T-rules are scoped by reachability from the
//! configured entry points (`[rules.determinism-taint] entries` in
//! `simlint.toml`); `exempt` prunes the walk, and inline
//! `simlint::allow` comments waive individual findings with a reviewed
//! reason.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::callgraph::{CallGraph, ResolvedCall};
use crate::config::Config;
use crate::dataflow::{FlowTarget, Sources};
use crate::diag::Finding;
use crate::parser::{parse_file, FnDef, Receiver};
use crate::purity::{path_to, resolve_specs, SinkSpec, ITER_METHODS};
use crate::symbols::{FnId, SymbolTable};

/// Taint bit: the value came out of an rng draw.
pub const DRAWN: u8 = 1;
/// Taint bit: the value is float-valued or passed through a float cast.
pub const FLOATY: u8 = 2;
/// Taint bit: the value *is* an rng stream.
pub const STREAM: u8 = 4;

/// The three concrete taint kinds, as a wide-lattice mask.
const KIND_MASK: u64 = 7;
/// First lattice bit used for param-carry tracking.
const PARAM_BASE: u32 = 3;
/// Params beyond this index are not carry-tracked (joined approximately).
const MAX_PARAMS: usize = 60;

/// Bit for "carries parameter `i` of the enclosing function".
fn carry(i: usize) -> u64 {
    if i < MAX_PARAMS {
        1u64 << (PARAM_BASE + i as u32)
    } else {
        0
    }
}

/// One function's externally visible taint behaviour.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TaintSummary {
    /// Intrinsic taint of the return value ([`DRAWN`]`|`[`FLOATY`]`|`
    /// [`STREAM`] bits), independent of what callers pass in.
    pub ret_mask: u8,
    /// `ret_params[i]`: whether parameter `i`'s taint flows into the
    /// return value.
    pub ret_params: Vec<bool>,
    /// `seed_params[i]`: when parameter `i` reaches a seed-position
    /// argument (rule T4) somewhere in or under this function, the
    /// display name of the seed sink it reaches.
    pub seed_params: Vec<Option<String>>,
    /// `escape_params[i]`: when parameter `i` reaches a shared-state
    /// escape sink (rule T2) somewhere in or under this function, the
    /// display name of the sink it reaches.
    pub escape_params: Vec<Option<String>>,
}

/// Internal per-function summary on the wide lattice.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Summary {
    /// Return mask: kind bits plus param-carry bits.
    ret: u64,
    seed_params: Vec<Option<String>>,
    escape_params: Vec<Option<String>>,
}

/// Per-function fixpoint state: variable and call-result masks.
#[derive(Debug, Default)]
struct FnState {
    vars: BTreeMap<String, u64>,
    calls: Vec<u64>,
}

/// A `name:argindex` / `Type::method:argindex` argument-position spec
/// (`seed_args`, `label_args`).
#[derive(Debug)]
struct ArgSpec {
    ty: Option<String>,
    name: String,
    arg: usize,
}

impl ArgSpec {
    fn parse(raw: &str) -> Option<ArgSpec> {
        let (head, idx) = raw.rsplit_once(':')?;
        let arg = idx.parse().ok()?;
        let (ty, name) = match head.rsplit_once("::") {
            Some((t, n)) => (Some(t.to_string()), n.to_string()),
            None => (None, head.to_string()),
        };
        if name.is_empty() {
            return None;
        }
        Some(ArgSpec { ty, name, arg })
    }

    fn matches(&self, graph: &CallGraph, rc: &ResolvedCall) -> bool {
        if rc.name != self.name {
            return false;
        }
        match &self.ty {
            None => true,
            Some(ty) => {
                rc.recv_types.iter().any(|t| t == ty)
                    || rc
                        .targets
                        .iter()
                        .any(|&t| graph.symbols.fns[t].def.owner.as_deref() == Some(ty.as_str()))
            }
        }
    }
}

/// Display name of a call for diagnostics: `Type::method` when the
/// receiver/path type is known, the bare name otherwise.
fn call_display(rc: &ResolvedCall) -> String {
    match rc.recv_types.first() {
        Some(ty) => format!("{ty}::{}", rc.name),
        None => rc.name.clone(),
    }
}

/// The per-function analysis context.
struct FnCtx<'a> {
    graph: &'a CallGraph,
    cfg: &'a Config,
    id: FnId,
    def: &'a FnDef,
    seed_specs: &'a [ArgSpec],
    escape_specs: &'a [SinkSpec],
    /// Exempt functions contribute no seed/escape sink evidence: their
    /// value flow (ret kinds) still propagates, but a sink inside them —
    /// or reached through them — is a reviewed non-violation.
    exempt: &'a BTreeSet<FnId>,
}

impl FnCtx<'_> {
    /// Intrinsic taint kind of a type head.
    fn kind_of(&self, ty: &str) -> u64 {
        if ty == "f32" || ty == "f64" {
            u64::from(FLOATY)
        } else if self.cfg.stream_types.iter().any(|s| s == ty) {
            u64::from(STREAM)
        } else {
            0
        }
    }

    /// Type-derived seed of a name: locals for plain bindings, the
    /// owner's struct fields for `self.field`, the owner itself for
    /// `self`.
    fn base_seed(&self, name: &str) -> u64 {
        if name == "self" {
            return self.def.owner.as_deref().map_or(0, |o| self.kind_of(o));
        }
        if let Some(field) = name.strip_prefix("self.") {
            return self
                .def
                .owner
                .as_deref()
                .and_then(|o| self.graph.symbols.field_type(o, field))
                .map_or(0, |ty| self.kind_of(ty));
        }
        self.def.locals.get(name).map_or(0, |ty| self.kind_of(ty))
    }

    fn var_mask(&self, st: &FnState, name: &str) -> u64 {
        st.vars.get(name).copied().unwrap_or(0) | self.base_seed(name)
    }

    fn src_mask(&self, st: &FnState, src: &Sources) -> u64 {
        let mut m = if src.has_float_lit {
            u64::from(FLOATY)
        } else {
            0
        };
        for v in &src.vars {
            m |= self.var_mask(st, v);
        }
        for &ci in &src.calls {
            m |= st.calls.get(ci).copied().unwrap_or(0);
        }
        m
    }

    fn recv_mask(&self, st: &FnState, recv: &Receiver) -> u64 {
        match recv {
            Receiver::SelfValue => self.var_mask(st, "self"),
            Receiver::SelfField(f) => self.var_mask(st, &format!("self.{f}")),
            Receiver::Ident(i) => self.var_mask(st, i),
            Receiver::Opaque(Some(i)) => self.var_mask(st, i),
            Receiver::Opaque(None) => 0,
        }
    }

    /// The result mask of call site `ci` under the current state and
    /// global summaries.
    fn call_mask(&self, st: &FnState, summaries: &[Summary], ci: usize) -> u64 {
        let site = &self.def.calls[ci];
        let rc = &self.graph.calls[self.id][ci];
        let mut arg_m = 0u64;
        for a in &site.args {
            arg_m |= self.src_mask(st, &a.src);
        }
        let recv_m = site.base.as_ref().map_or(0, |r| self.recv_mask(st, r));
        // A method on a stream receiver: fork/clone produce a stream,
        // anything else is a draw. This outranks callee summaries — the
        // stream types' own bodies mix internal state and would otherwise
        // mark `fork` results as drawn. The receiver's param bit is NOT
        // carried: the produced kind already says everything the result
        // owes the stream, and carrying it would let callers re-import
        // the receiver's full mask (a draw is not a stream).
        if rc.is_method && recv_m & u64::from(STREAM) != 0 {
            return if self.cfg.fork_methods.iter().any(|m| m == &rc.name) {
                u64::from(STREAM) | (arg_m & !KIND_MASK)
            } else {
                u64::from(DRAWN) | (arg_m & !KIND_MASK)
            };
        }
        // An associated function on a stream type constructs a stream
        // (`RngStream::named(..)`).
        if !rc.is_method
            && rc
                .recv_types
                .iter()
                .any(|t| self.cfg.stream_types.iter().any(|s| s == t))
        {
            return u64::from(STREAM) | (arg_m & !KIND_MASK);
        }
        if !rc.targets.is_empty() {
            let mut m = 0u64;
            for &t in &rc.targets {
                let s = &summaries[t];
                m |= s.ret & KIND_MASK;
                for (j, a) in site.args.iter().enumerate() {
                    if s.ret & carry(j) != 0 {
                        m |= self.src_mask(st, &a.src);
                    }
                }
            }
            return m;
        }
        // Unresolved (std / vendored) call: conservatively propagate
        // every input, receiver included.
        arg_m | recv_m
    }

    /// Runs the intra-function fixpoint and derives the summary.
    fn analyze(&self, summaries: &[Summary]) -> (FnState, Summary) {
        let mut st = FnState {
            vars: BTreeMap::new(),
            calls: vec![0; self.def.calls.len()],
        };
        for (i, (name, _)) in self.def.params.iter().enumerate() {
            *st.vars.entry(name.clone()).or_insert(0) |= carry(i);
        }
        loop {
            let mut changed = false;
            for ci in 0..self.def.calls.len() {
                // Join, never replace: the stream-receiver precedence
                // makes `call_mask` non-monotone in `st` (a receiver
                // gaining STREAM flips the branch), so only bit *growth*
                // may count as change or the loop never terminates.
                let m = self.call_mask(&st, summaries, ci);
                if st.calls[ci] | m != st.calls[ci] {
                    st.calls[ci] |= m;
                    changed = true;
                }
            }
            for flow in &self.def.flows {
                let m = self.src_mask(&st, &flow.src);
                let key = match &flow.target {
                    FlowTarget::Var(n) => n.clone(),
                    FlowTarget::Field { path, .. } => path.clone(),
                };
                let entry = st.vars.entry(key).or_insert(0);
                if *entry | m != *entry {
                    *entry |= m;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        let mut ret = 0u64;
        for r in &self.def.rets {
            ret |= self.src_mask(&st, r);
        }
        let nparams = self.def.params.len();
        let mut summary = Summary {
            ret,
            seed_params: vec![None; nparams],
            escape_params: vec![None; nparams],
        };
        let record = |slots: &mut [Option<String>], m: u64, what: &str| {
            for (i, slot) in slots.iter_mut().enumerate() {
                if m & carry(i) != 0 && slot.is_none() {
                    *slot = Some(what.to_string());
                }
            }
        };
        // An exempt function's sinks are reviewed non-violations — its
        // summary carries value flow only, so callers never inherit them.
        if self.exempt.contains(&self.id) {
            return (st, summary);
        }
        for (ci, site) in self.def.calls.iter().enumerate() {
            let rc = &self.graph.calls[self.id][ci];
            for spec in self.seed_specs {
                if spec.matches(self.graph, rc) {
                    if let Some(a) = site.args.get(spec.arg) {
                        let m = self.src_mask(&st, &a.src);
                        record(&mut summary.seed_params, m, &call_display(rc));
                    }
                }
            }
            for sink in self.escape_specs {
                if let Some(display) = sink.matches(self.graph, rc) {
                    for a in &site.args {
                        let m = self.src_mask(&st, &a.src);
                        record(&mut summary.escape_params, m, &display);
                    }
                }
            }
            for &t in &rc.targets {
                if self.exempt.contains(&t) {
                    continue;
                }
                for (j, slot) in summaries[t].seed_params.iter().enumerate() {
                    if let (Some(d), Some(a)) = (slot, site.args.get(j)) {
                        let m = self.src_mask(&st, &a.src);
                        record(&mut summary.seed_params, m, d);
                    }
                }
                for (j, slot) in summaries[t].escape_params.iter().enumerate() {
                    if let (Some(d), Some(a)) = (slot, site.args.get(j)) {
                        let m = self.src_mask(&st, &a.src);
                        record(&mut summary.escape_params, m, d);
                    }
                }
            }
        }
        for flow in &self.def.flows {
            if let FlowTarget::Field { path, field } = &flow.target {
                if self.cfg.tainted_fields.iter().any(|f| f == field) {
                    let m = self.src_mask(&st, &flow.src);
                    record(&mut summary.escape_params, m, &format!("`{path}`"));
                }
            }
        }
        (st, summary)
    }
}

/// The whole-workspace taint analysis result.
struct Analysis {
    states: Vec<FnState>,
    summaries: Vec<Summary>,
}

/// Iterates per-function summaries to a global fixpoint.
fn run_analysis(
    graph: &CallGraph,
    cfg: &Config,
    seed_specs: &[ArgSpec],
    escape_specs: &[SinkSpec],
    exempt: &BTreeSet<FnId>,
) -> Analysis {
    let n = graph.symbols.fns.len();
    let mut summaries: Vec<Summary> = (0..n)
        .map(|id| Summary {
            ret: 0,
            seed_params: vec![None; graph.symbols.fns[id].def.params.len()],
            escape_params: vec![None; graph.symbols.fns[id].def.params.len()],
        })
        .collect();
    let mut states: Vec<FnState> = (0..n).map(|_| FnState::default()).collect();
    loop {
        let mut changed = false;
        for id in 0..n {
            let ctx = FnCtx {
                graph,
                cfg,
                id,
                def: &graph.symbols.fns[id].def,
                seed_specs,
                escape_specs,
                exempt,
            };
            let (st, summary) = ctx.analyze(&summaries);
            // Join into the stored summary (same termination argument as
            // the intra-function loop): ret bits only grow, sink slots
            // only fill, so the finite lattice forces a fixpoint.
            let cur = &mut summaries[id];
            if cur.ret | summary.ret != cur.ret {
                cur.ret |= summary.ret;
                changed = true;
            }
            let fill =
                |slots: &mut [Option<String>], new: Vec<Option<String>>, changed: &mut bool| {
                    for (slot, n) in slots.iter_mut().zip(new) {
                        if slot.is_none() && n.is_some() {
                            *slot = n;
                            *changed = true;
                        }
                    }
                };
            fill(&mut cur.seed_params, summary.seed_params, &mut changed);
            fill(&mut cur.escape_params, summary.escape_params, &mut changed);
            states[id] = st;
        }
        if !changed {
            break;
        }
    }
    Analysis { states, summaries }
}

/// Computes the per-function taint summaries of a source set — the
/// public window onto the fixpoint, keyed by `Owner::name` display name.
/// Property tests compare this against a naive whole-program oracle.
pub fn function_summaries(
    files: &[(String, String)],
    cfg: &Config,
) -> BTreeMap<String, TaintSummary> {
    let parsed = files
        .iter()
        .map(|(path, source)| parse_file(path, source))
        .collect();
    let symbols = SymbolTable::build(parsed);
    let graph = CallGraph::build(symbols);
    let seed_specs: Vec<ArgSpec> = cfg
        .seed_args
        .iter()
        .filter_map(|s| ArgSpec::parse(s))
        .collect();
    let escape_specs: Vec<SinkSpec> = cfg
        .escape_sinks
        .iter()
        .map(|s| SinkSpec::parse(s))
        .collect();
    let analysis = run_analysis(&graph, cfg, &seed_specs, &escape_specs, &BTreeSet::new());
    let mut out = BTreeMap::new();
    for (id, entry) in graph.symbols.fns.iter().enumerate() {
        let s = &analysis.summaries[id];
        out.insert(
            entry.def.display(),
            TaintSummary {
                ret_mask: (s.ret & KIND_MASK) as u8,
                ret_params: (0..entry.def.params.len())
                    .map(|i| s.ret & carry(i) != 0)
                    .collect(),
                seed_params: s.seed_params.clone(),
                escape_params: s.escape_params.clone(),
            },
        );
    }
    out
}

/// One T1 label site gathered during the reachable walk.
struct LabelSite {
    id: FnId,
    file: String,
    line: u32,
    col: u32,
    display: String,
    label: Option<String>,
}

/// Runs the T-rules over the sources' call graph, appending findings.
pub(crate) fn check_taint(graph: &CallGraph, cfg: &Config, findings: &mut Vec<Finding>) {
    if cfg.taint_entries.is_empty() {
        return;
    }
    let symbols = &graph.symbols;
    const SECTION: &str = "rules.determinism-taint";
    const T0: &str = "T0/unresolved-config";
    let mut parse_arg_specs = |key: &str, raws: &[String]| -> Vec<ArgSpec> {
        let mut out = Vec::new();
        for raw in raws {
            match ArgSpec::parse(raw) {
                Some(spec) => out.push(spec),
                None => findings.push(Finding {
                    path: "simlint.toml".into(),
                    line: 1,
                    col: 1,
                    code: T0,
                    message: format!(
                        "[{SECTION}] {key} `{raw}` is malformed — expected \
                         `name:argindex` or `Type::method:argindex`"
                    ),
                }),
            }
        }
        out
    };
    let seed_specs = parse_arg_specs("seed_args", &cfg.seed_args);
    let label_specs = parse_arg_specs("label_args", &cfg.label_args);
    let escape_specs: Vec<SinkSpec> = cfg
        .escape_sinks
        .iter()
        .map(|s| SinkSpec::parse(s))
        .collect();

    let entries = resolve_specs(symbols, &cfg.taint_entries, "entry", SECTION, T0, findings);
    let exempts = resolve_specs(symbols, &cfg.taint_exempt, "exempt", SECTION, T0, findings);
    let exempt_ids: BTreeSet<FnId> = exempts.iter().flat_map(|(_, ids)| ids.clone()).collect();

    let analysis = run_analysis(graph, cfg, &seed_specs, &escape_specs, &exempt_ids);

    // Reachability BFS from the entries, with exempt pruning and
    // predecessor links for entry → sink path diagnostics.
    let mut preds: BTreeMap<FnId, Option<FnId>> = BTreeMap::new();
    let mut queue: VecDeque<FnId> = VecDeque::new();
    for (_, ids) in &entries {
        for &id in ids {
            if !exempt_ids.contains(&id) && !preds.contains_key(&id) {
                preds.insert(id, None);
                queue.push_back(id);
            }
        }
    }
    while let Some(id) = queue.pop_front() {
        for next in graph.successors(id) {
            if !exempt_ids.contains(&next) && !preds.contains_key(&next) {
                preds.insert(next, Some(id));
                queue.push_back(next);
            }
        }
    }

    let escape_kinds = u64::from(DRAWN) | u64::from(STREAM);
    let seed_kinds = u64::from(DRAWN) | u64::from(FLOATY);
    let mut reported: BTreeSet<(String, u32, u32, &'static str)> = BTreeSet::new();
    let mut label_sites: Vec<LabelSite> = Vec::new();

    for &id in preds.keys() {
        let entry = &symbols.fns[id];
        let def = &entry.def;
        let file = entry.file.clone();
        if cfg.is_allowed("determinism-taint", &file) {
            continue;
        }
        let st = &analysis.states[id];
        let ctx = FnCtx {
            graph,
            cfg,
            id,
            def,
            seed_specs: &seed_specs,
            escape_specs: &escape_specs,
            exempt: &exempt_ids,
        };
        let chain = path_to(symbols, &preds, id);

        for (ci, site) in def.calls.iter().enumerate() {
            let rc = &graph.calls[id][ci];

            // T1: collect stream-label sites for the cross-set pass.
            for spec in &label_specs {
                if spec.matches(graph, rc) {
                    label_sites.push(LabelSite {
                        id,
                        file: file.clone(),
                        line: rc.line,
                        col: rc.col,
                        display: call_display(rc),
                        label: site.args.get(spec.arg).and_then(|a| a.lit.clone()),
                    });
                }
            }

            // T2: drawn values flowing into shared escape sinks.
            for sink in &escape_specs {
                if let Some(display) = sink.matches(graph, rc) {
                    let tainted = site
                        .args
                        .iter()
                        .any(|a| ctx.src_mask(st, &a.src) & escape_kinds != 0);
                    if tainted && reported.insert((file.clone(), rc.line, rc.col, "T2/rng-escape"))
                    {
                        findings.push(Finding {
                            path: file.clone(),
                            line: rc.line,
                            col: rc.col,
                            code: "T2/rng-escape",
                            message: format!(
                                "draw-tainted value flows into shared sink `{display}` — \
                                 path: {chain}; randomness may not escape the compute \
                                 phase into shared or merge state (simlint.toml \
                                 [{SECTION}])"
                            ),
                        });
                    }
                }
            }
            // T2 interprocedural: a tainted argument reaches a sink
            // inside the callee.
            for &t in &rc.targets {
                for (j, slot) in analysis.summaries[t].escape_params.iter().enumerate() {
                    if let (Some(d), Some(a)) = (slot, site.args.get(j)) {
                        if ctx.src_mask(st, &a.src) & escape_kinds != 0
                            && reported.insert((file.clone(), rc.line, rc.col, "T2/rng-escape"))
                        {
                            findings.push(Finding {
                                path: file.clone(),
                                line: rc.line,
                                col: rc.col,
                                code: "T2/rng-escape",
                                message: format!(
                                    "draw-tainted argument reaches shared sink {d} inside \
                                     `{}` — path: {chain}; randomness may not escape the \
                                     compute phase into shared or merge state (simlint.toml \
                                     [{SECTION}])",
                                    symbols.fns[t].def.display()
                                ),
                            });
                        }
                    }
                }
            }

            // T4: drawn/float values seeding a stream.
            for spec in &seed_specs {
                if spec.matches(graph, rc) {
                    if let Some(a) = site.args.get(spec.arg) {
                        if ctx.src_mask(st, &a.src) & seed_kinds != 0
                            && reported.insert((
                                file.clone(),
                                rc.line,
                                rc.col,
                                "T4/seed-provenance",
                            ))
                        {
                            findings.push(Finding {
                                path: file.clone(),
                                line: rc.line,
                                col: rc.col,
                                code: "T4/seed-provenance",
                                message: format!(
                                    "seed argument of `{}` derives from a drawn or \
                                     float-cast value — path: {chain}; seeds must trace to \
                                     the experiment seed or config so replays reproduce \
                                     (simlint.toml [{SECTION}])",
                                    call_display(rc)
                                ),
                            });
                        }
                    }
                }
            }
            // T4 interprocedural.
            for &t in &rc.targets {
                for (j, slot) in analysis.summaries[t].seed_params.iter().enumerate() {
                    if let (Some(d), Some(a)) = (slot, site.args.get(j)) {
                        if ctx.src_mask(st, &a.src) & seed_kinds != 0
                            && reported.insert((
                                file.clone(),
                                rc.line,
                                rc.col,
                                "T4/seed-provenance",
                            ))
                        {
                            findings.push(Finding {
                                path: file.clone(),
                                line: rc.line,
                                col: rc.col,
                                code: "T4/seed-provenance",
                                message: format!(
                                    "argument reaches the seed of `{d}` inside `{}` while \
                                     carrying drawn or float taint — path: {chain}; seeds \
                                     must trace to the experiment seed or config \
                                     (simlint.toml [{SECTION}])",
                                    symbols.fns[t].def.display()
                                ),
                            });
                        }
                    }
                }
            }
        }

        // T2: drawn values assigned into time/seq fields.
        for flow in &def.flows {
            if let FlowTarget::Field { path, field } = &flow.target {
                if cfg.tainted_fields.iter().any(|f| f == field)
                    && ctx.src_mask(st, &flow.src) & escape_kinds != 0
                    && reported.insert((file.clone(), flow.line, flow.col, "T2/rng-escape"))
                {
                    findings.push(Finding {
                        path: file.clone(),
                        line: flow.line,
                        col: flow.col,
                        code: "T2/rng-escape",
                        message: format!(
                            "draw-tainted value assigned to `{path}` — path: {chain}; \
                             `{field}` orders the deterministic merge and must not \
                             depend on draw order (simlint.toml [{SECTION}])"
                        ),
                    });
                }
            }
        }

        // T3 (loop form): float accumulation inside iteration over
        // unordered state.
        for lp in &def.loops {
            let unordered_ty = loop_head_unordered(&ctx, lp, &graph.calls[id]);
            let Some(ty) = unordered_ty else { continue };
            for flow in &def.flows {
                if !flow.compound || flow.tok < lp.body.0 || flow.tok >= lp.body.1 {
                    continue;
                }
                let float_target = match &flow.target {
                    FlowTarget::Var(n) => {
                        matches!(def.locals.get(n).map(String::as_str), Some("f32" | "f64"))
                    }
                    FlowTarget::Field { field, .. } => def
                        .owner
                        .as_deref()
                        .and_then(|o| symbols.field_type(o, field))
                        .is_some_and(|t| t == "f32" || t == "f64"),
                };
                if (float_target || flow.src.has_float_lit)
                    && reported.insert((
                        file.clone(),
                        flow.line,
                        flow.col,
                        "T3/unordered-float-reduction",
                    ))
                {
                    findings.push(Finding {
                        path: file.clone(),
                        line: flow.line,
                        col: flow.col,
                        code: "T3/unordered-float-reduction",
                        message: format!(
                            "float accumulation inside iteration over unordered `{ty}` \
                             — path: {chain}; float addition is not associative, so the \
                             sum depends on `{ty}` order: iterate a `BTreeMap` or sort \
                             keys first (simlint.toml [{SECTION}])"
                        ),
                    });
                }
            }
        }
        // T3 (chain form): `.sum::<f64>()` / `.fold(0.0, ..)` over an
        // unordered chain base.
        for (ci, site) in def.calls.iter().enumerate() {
            let rc = &graph.calls[id][ci];
            if !matches!(rc.name.as_str(), "sum" | "product" | "fold") {
                continue;
            }
            let Some(base_ty) = site
                .base
                .as_ref()
                .and_then(|r| receiver_type(symbols, def, r))
            else {
                continue;
            };
            if !cfg
                .unordered_state
                .iter()
                .any(|pat| crate::purity::type_pat_match(pat, &base_ty))
            {
                continue;
            }
            let float_evidence = matches!(site.turbofish.as_deref(), Some("f32" | "f64"))
                || site.args.iter().any(|a| a.src.has_float_lit);
            if float_evidence
                && reported.insert((
                    file.clone(),
                    rc.line,
                    rc.col,
                    "T3/unordered-float-reduction",
                ))
            {
                findings.push(Finding {
                    path: file.clone(),
                    line: rc.line,
                    col: rc.col,
                    code: "T3/unordered-float-reduction",
                    message: format!(
                        "unordered float reduction `.{}(..)` over `{base_ty}` — path: \
                         {chain}; float addition is not associative, so the result \
                         depends on `{base_ty}` order: iterate a `BTreeMap` or sort \
                         keys first (simlint.toml [{SECTION}])",
                        rc.name
                    ),
                });
            }
        }
    }

    // T1 cross-set pass: constant labels colliding anywhere in the
    // reachable set, plus non-constant labels per site.
    let mut by_label: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, site) in label_sites.iter().enumerate() {
        match &site.label {
            Some(label) => by_label.entry(label.clone()).or_default().push(i),
            None => {
                if reported.insert((
                    site.file.clone(),
                    site.line,
                    site.col,
                    "T1/rng-stream-aliasing",
                )) {
                    let chain = path_to(symbols, &preds, site.id);
                    findings.push(Finding {
                        path: site.file.clone(),
                        line: site.line,
                        col: site.col,
                        code: "T1/rng-stream-aliasing",
                        message: format!(
                            "rng stream label for `{}` is not a constant string — path: \
                             {chain}; non-literal labels cannot be audited for stream \
                             aliasing: use a string literal, or suppress with a reviewed \
                             `simlint::allow` (simlint.toml [{SECTION}])",
                            site.display
                        ),
                    });
                }
            }
        }
    }
    for (label, group) in &by_label {
        let distinct: BTreeSet<(String, u32, u32)> = group
            .iter()
            .map(|&i| {
                let s = &label_sites[i];
                (s.file.clone(), s.line, s.col)
            })
            .collect();
        if distinct.len() < 2 {
            continue;
        }
        for &i in group {
            let site = &label_sites[i];
            let other = group
                .iter()
                .map(|&j| &label_sites[j])
                .find(|o| {
                    (o.file.as_str(), o.line, o.col) != (site.file.as_str(), site.line, site.col)
                })
                .expect("distinct.len() >= 2 guarantees another site");
            if reported.insert((
                site.file.clone(),
                site.line,
                site.col,
                "T1/rng-stream-aliasing",
            )) {
                let chain = path_to(symbols, &preds, site.id);
                findings.push(Finding {
                    path: site.file.clone(),
                    line: site.line,
                    col: site.col,
                    code: "T1/rng-stream-aliasing",
                    message: format!(
                        "rng stream label \"{label}\" is also used at {}:{}:{} — path: \
                         {chain}; streams sharing a label draw identical sequences: give \
                         each stream a distinct label (simlint.toml [{SECTION}])",
                        other.file, other.line, other.col
                    ),
                });
            }
        }
    }
}

/// Whether a loop head iterates unordered state; returns the offending
/// type head. Checks iteration-method receivers first, then plain
/// variable/field heads (`for x in &map`).
fn loop_head_unordered(
    ctx: &FnCtx<'_>,
    lp: &crate::dataflow::LoopSpan,
    resolved: &[ResolvedCall],
) -> Option<String> {
    let unordered = |ty: &str| {
        ctx.cfg
            .unordered_state
            .iter()
            .any(|pat| crate::purity::type_pat_match(pat, ty))
    };
    for &ci in &lp.head.calls {
        let rc = resolved.get(ci)?;
        if !ITER_METHODS.contains(&rc.name.as_str()) {
            continue;
        }
        if let Some(ty) = rc.recv_types.iter().find(|t| unordered(t)) {
            return Some(ty.clone());
        }
        if let Some(ty) = ctx.def.calls[ci]
            .base
            .as_ref()
            .and_then(|r| receiver_type(&ctx.graph.symbols, ctx.def, r))
        {
            if unordered(&ty) {
                return Some(ty);
            }
        }
    }
    for v in &lp.head.vars {
        if let Some(field) = v.strip_prefix("self.") {
            if let Some(ty) = ctx
                .def
                .owner
                .as_deref()
                .and_then(|o| ctx.graph.symbols.field_type(o, field))
            {
                if unordered(ty) {
                    return Some(ty.to_string());
                }
            }
        } else if let Some(ty) = ctx.def.locals.get(v) {
            if unordered(ty) {
                return Some(ty.clone());
            }
        }
    }
    None
}

/// Nominal type of a receiver in the context of `def`: `self` through
/// the owner, `self.field` through the owner's struct, plain idents
/// through params and typed `let`s.
fn receiver_type(symbols: &SymbolTable, def: &FnDef, recv: &Receiver) -> Option<String> {
    match recv {
        Receiver::SelfValue => def.owner.clone(),
        Receiver::SelfField(f) => def
            .owner
            .as_deref()
            .and_then(|o| symbols.field_type(o, f))
            .map(str::to_string),
        Receiver::Ident(i) => def.locals.get(i).cloned(),
        Receiver::Opaque(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(entries: &[&str]) -> Config {
        Config {
            taint_entries: entries.iter().map(ToString::to_string).collect(),
            escape_sinks: vec!["EventQueue::push".into()],
            ..Config::default()
        }
    }

    fn run(src: &str, cfg: &Config) -> Vec<String> {
        let files = [("crates/a/src/lib.rs".to_string(), src.to_string())];
        let parsed = files.iter().map(|(p, s)| parse_file(p, s)).collect();
        let graph = CallGraph::build(SymbolTable::build(parsed));
        let mut findings = Vec::new();
        check_taint(&graph, cfg, &mut findings);
        findings.iter().map(ToString::to_string).collect()
    }

    fn summaries(src: &str) -> BTreeMap<String, TaintSummary> {
        let files = vec![("crates/a/src/lib.rs".to_string(), src.to_string())];
        function_summaries(&files, &Config::default())
    }

    const STREAM_DEF: &str = "struct RngStream { state: u64 }\nimpl RngStream {\n    fn named(seed: u64, label: &str) -> RngStream { RngStream { state: seed ^ label.len() as u64 } }\n    fn fork(&mut self, label: &str) -> RngStream { RngStream { state: self.state ^ label.len() as u64 } }\n    fn next_u64(&mut self) -> u64 { self.state = self.state.wrapping_mul(3); self.state }\n}\n";

    #[test]
    fn draw_summary_propagates_through_helpers() {
        let src = format!(
            "{STREAM_DEF}fn draw_one(rng: &mut RngStream) -> u64 {{ rng.next_u64() }}\nfn relay(rng: &mut RngStream) -> u64 {{ draw_one(rng) }}\nfn passthrough(x: u64) -> u64 {{ x }}\n"
        );
        let s = summaries(&src);
        assert_eq!(s["draw_one"].ret_mask, DRAWN);
        assert_eq!(s["relay"].ret_mask, DRAWN);
        assert_eq!(s["passthrough"].ret_mask, 0);
        assert_eq!(s["passthrough"].ret_params, vec![true]);
    }

    #[test]
    fn fork_results_stay_streams_and_seeds_track_params() {
        let src = format!(
            "{STREAM_DEF}fn spawn(rng: &mut RngStream) -> RngStream {{ rng.fork(\"child\") }}\nfn reseed(seed: u64) -> RngStream {{ RngStream::named(seed, \"root\") }}\n"
        );
        let s = summaries(&src);
        assert_eq!(s["spawn"].ret_mask, STREAM);
        assert_eq!(s["reseed"].ret_mask, STREAM);
        assert_eq!(
            s["reseed"].seed_params,
            vec![Some("RngStream::named".into())]
        );
    }

    #[test]
    fn t4_fires_on_drawn_seed_through_a_helper() {
        let src = format!(
            "{STREAM_DEF}fn mk(seed: u64) -> RngStream {{ RngStream::named(seed, \"aux\") }}\nfn entry(rng: &mut RngStream) {{\n    let v = rng.next_u64();\n    let _child = mk(v);\n}}\n"
        );
        let findings = run(&src, &cfg(&["entry"]));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].contains("[T4/seed-provenance]")
                && findings[0].contains("`RngStream::named`")
                && findings[0].contains("inside `mk`"),
            "{}",
            findings[0]
        );
    }

    #[test]
    fn t1_groups_collisions_across_the_reachable_set() {
        let src = format!(
            "{STREAM_DEF}fn entry(seed: u64) {{\n    let mut a = RngStream::named(seed, \"worker\");\n    let _b = a.fork(\"worker\");\n}}\n"
        );
        let findings = run(&src, &cfg(&["entry"]));
        assert_eq!(findings.len(), 2, "{findings:?}");
        for f in &findings {
            assert!(f.contains("[T1/rng-stream-aliasing]"), "{f}");
            assert!(f.contains("\"worker\""), "{f}");
        }
    }

    #[test]
    fn t3_loop_and_chain_forms_fire_only_with_float_evidence() {
        let src = "struct W { weights: HashMap }\nimpl W {\n    fn entry(&self) -> f64 {\n        let mut acc = 0.0;\n        for v in self.weights.values() { acc += v; }\n        let direct = self.weights.values().sum::<f64>();\n        let mut n = 0u64;\n        for v in self.weights.values() { n += 1; let _ = v; }\n        acc + direct + n as f64\n    }\n}\n";
        let findings = run(src, &cfg(&["W::entry"]));
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings
            .iter()
            .any(|f| f.contains("float accumulation inside iteration")));
        assert!(findings.iter().any(|f| f.contains(".sum(..)")));
    }

    #[test]
    fn t2_fires_when_a_draw_escapes_into_a_shared_sink() {
        let src = format!(
            "{STREAM_DEF}struct EventQueue {{}}\nimpl EventQueue {{ fn push(&mut self, t: u64) {{ let _ = t; }} }}\nstruct W {{ queue: EventQueue }}\nimpl W {{\n    fn entry(&mut self, rng: &mut RngStream) {{\n        let t = rng.next_u64();\n        self.queue.push(t);\n    }}\n}}\n"
        );
        let findings = run(&src, &cfg(&["W::entry"]));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].contains("[T2/rng-escape]") && findings[0].contains("`EventQueue::push`"),
            "{}",
            findings[0]
        );
    }

    #[test]
    fn stale_entries_and_malformed_arg_specs_are_t0_findings() {
        let mut c = cfg(&["Ghost::entry"]);
        c.seed_args.push("broken-spec".into());
        let findings = run(STREAM_DEF, &c);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings
            .iter()
            .any(|f| f.contains("entry `Ghost::entry` matches no function")));
        assert!(findings
            .iter()
            .any(|f| f.contains("seed_args `broken-spec` is malformed")));
    }

    #[test]
    fn empty_entry_list_disables_the_taint_rules() {
        let src = format!(
            "{STREAM_DEF}fn entry(rng: &mut RngStream) -> RngStream {{ let v = rng.next_u64(); RngStream::named(v, \"x\") }}\n"
        );
        let findings = run(&src, &cfg(&[]));
        assert_eq!(findings, Vec::<String>::new());
    }
}
