//! The workspace call graph: every call site resolved against the
//! [`crate::symbols::SymbolTable`], with receiver types inferred from
//! parameters, `let` bindings, struct fields and generic trait bounds.
//!
//! Resolution is *nominal and conservative in the direction the purity
//! rules need*: when a receiver's type cannot be inferred, the call
//! falls back to linking every same-named method in the workspace —
//! unless the name is on the [`UBIQUITOUS`] list (`push`, `iter`,
//! `clone`, …), where a union over `Vec::push` lookalikes would drown
//! the graph in false edges. A missed edge can hide a violation only if
//! the callee is *also* unreachable by name and type — the sink specs
//! in `simlint.toml` close that gap by matching resolved target
//! functions as well as receiver types and raw receiver names.
//!
//! Like the rest of simlint the graph is context-insensitive: a
//! function body is one node regardless of who calls it. Where that
//! over-approximates (e.g. the sequential `LiveSubstrate` path being
//! linked from worker code through the shared `PlanSubstrate` bound),
//! the exception is a named, reviewed `exempt` entry in `simlint.toml`
//! — never a weaker graph.

use std::collections::BTreeMap;

use crate::parser::{Callee, Receiver};
use crate::symbols::{FnId, SymbolTable};

/// Method names too common for unknown-receiver fallback resolution:
/// linking every `.push(..)` to `EventQueue::push` (etc.) would create
/// edges from nearly every function to nearly every collection-shaped
/// API. Typed receivers still resolve these precisely.
pub const UBIQUITOUS: &[&str] = &[
    "all",
    "and_then",
    "any",
    "as_mut",
    "as_ref",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "default",
    "drain",
    "entry",
    "enumerate",
    "eq",
    "extend",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "map",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "next",
    "parse",
    "partial_cmp",
    "pop",
    "push",
    "remove",
    "retain",
    "rev",
    "sort",
    "sort_by",
    "sort_by_key",
    "split",
    "sum",
    "take",
    "to_string",
    "to_vec",
    "trim",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "zip",
];

/// One call site with everything resolution could establish.
#[derive(Debug)]
pub struct ResolvedCall {
    /// 1-based line of the callee name token.
    pub line: u32,
    /// 1-based column of the callee name token.
    pub col: u32,
    /// The simple (last-segment) callee name.
    pub name: String,
    /// The identifier immediately before the `.` for method calls.
    pub prev_ident: Option<String>,
    /// Receiver / path types the call is known to go through — the
    /// receiver's inferred type head, or the `Type` of a `Type::method`
    /// path call. Empty when inference failed.
    pub recv_types: Vec<String>,
    /// Workspace functions this call can land in.
    pub targets: Vec<FnId>,
    /// Whether this is a method call (`recv.name(..)`).
    pub is_method: bool,
}

/// The resolved call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// The underlying symbol table.
    pub symbols: SymbolTable,
    /// Per-function resolved call sites (indexed by [`FnId`]).
    pub calls: Vec<Vec<ResolvedCall>>,
    /// Total number of edges (target links across all call sites).
    pub edges: usize,
}

impl CallGraph {
    /// Resolves every call site in `symbols` into a graph.
    pub fn build(symbols: SymbolTable) -> CallGraph {
        let mut calls: Vec<Vec<ResolvedCall>> = Vec::with_capacity(symbols.fns.len());
        let mut edges = 0usize;
        for id in 0..symbols.fns.len() {
            let resolved: Vec<ResolvedCall> = symbols.fns[id]
                .def
                .calls
                .iter()
                .map(|site| resolve_call(&symbols, id, site))
                .collect();
            edges += resolved.iter().map(|c| c.targets.len()).sum::<usize>();
            calls.push(resolved);
        }
        CallGraph {
            symbols,
            calls,
            edges,
        }
    }

    /// Successor functions of `id` (deduplicated, in call order).
    pub fn successors(&self, id: FnId) -> Vec<FnId> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for call in &self.calls[id] {
            for &t in &call.targets {
                if seen.insert(t) {
                    out.push(t);
                }
            }
        }
        out
    }
}

/// Resolves one call site from within function `caller`.
fn resolve_call(
    symbols: &SymbolTable,
    caller: FnId,
    site: &crate::parser::CallSite,
) -> ResolvedCall {
    let entry = &symbols.fns[caller];
    let def = &entry.def;
    let mut rc = ResolvedCall {
        line: site.line,
        col: site.col,
        name: site.name().to_string(),
        prev_ident: site.prev_ident().map(str::to_string),
        recv_types: Vec::new(),
        targets: Vec::new(),
        is_method: matches!(site.callee, Callee::Method { .. }),
    };
    match &site.callee {
        Callee::Free(name) => {
            rc.targets = symbols.resolve_free(name, &entry.file);
        }
        Callee::Path(segs) => {
            let name = match segs.last() {
                Some(n) => n.clone(),
                None => return rc,
            };
            if segs.len() >= 2 {
                let qualifier = &segs[segs.len() - 2];
                let qualifier = if qualifier == "Self" {
                    def.owner.clone().unwrap_or_else(|| qualifier.clone())
                } else {
                    qualifier.clone()
                };
                let methods = symbols.resolve_method(&qualifier, &name);
                if !methods.is_empty() {
                    rc.recv_types.push(qualifier);
                    rc.targets = methods;
                } else if symbols.trait_impls.contains_key(&qualifier) {
                    rc.recv_types.push(qualifier.clone());
                    rc.targets = symbols.resolve_trait_method(&qualifier, &name);
                } else if qualifier.chars().next().is_some_and(char::is_uppercase) {
                    // A type qualifier we know nothing about (std or
                    // vendored): record it for sink matching, no edges.
                    rc.recv_types.push(qualifier);
                } else {
                    // Module-path call (`crate::dispatch::prepare`).
                    rc.targets = symbols.resolve_free(&name, &entry.file);
                }
            }
        }
        Callee::Method { name, recv } => {
            resolve_method_call(symbols, caller, name, recv, &mut rc);
        }
    }
    rc
}

/// Resolves a method call's receiver type and targets.
fn resolve_method_call(
    symbols: &SymbolTable,
    caller: FnId,
    name: &str,
    recv: &Receiver,
    rc: &mut ResolvedCall,
) {
    let entry = &symbols.fns[caller];
    let def = &entry.def;
    let bounds: BTreeMap<&str, &Vec<String>> =
        def.bounds.iter().map(|(p, b)| (p.as_str(), b)).collect();
    let recv_type: Option<String> = match recv {
        Receiver::SelfValue => def.owner.clone(),
        Receiver::SelfField(field) => def
            .owner
            .as_deref()
            .and_then(|o| symbols.field_type(o, field))
            .map(str::to_string),
        Receiver::Ident(ident) => def.locals.get(ident).cloned(),
        Receiver::Opaque(_) => None,
    };
    match recv_type {
        Some(ty) => {
            rc.recv_types.push(ty.clone());
            let direct = symbols.resolve_method(&ty, name);
            if !direct.is_empty() {
                rc.targets = direct;
                return;
            }
            // The "type" may be a generic parameter with trait bounds,
            // or a trait used as an object — resolve through impls.
            let mut traits: Vec<&str> = Vec::new();
            if let Some(tb) = bounds.get(ty.as_str()) {
                traits.extend(tb.iter().map(String::as_str));
            }
            if symbols.trait_impls.contains_key(ty.as_str()) {
                traits.push(ty.as_str());
            }
            for tr in traits {
                if symbols
                    .trait_methods
                    .get(tr)
                    .is_some_and(|m| m.contains(name))
                {
                    rc.recv_types.push(tr.to_string());
                    rc.targets.extend(symbols.resolve_trait_method(tr, name));
                }
            }
            rc.targets.sort_unstable();
            rc.targets.dedup();
        }
        None => {
            // Unknown receiver: union over same-named methods, except
            // for ubiquitous collection/iterator names.
            if !UBIQUITOUS.contains(&name) {
                rc.targets = symbols.resolve_any_method(name, &entry.file);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;
    use crate::symbols::SymbolTable;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        CallGraph::build(SymbolTable::build(
            files
                .iter()
                .map(|(path, src)| parse_file(path, src))
                .collect(),
        ))
    }

    fn id(g: &CallGraph, display: &str) -> FnId {
        (0..g.symbols.fns.len())
            .find(|&i| g.symbols.fns[i].def.display() == display)
            .unwrap_or_else(|| panic!("no fn `{display}`"))
    }

    fn succ_names(g: &CallGraph, display: &str) -> Vec<String> {
        g.successors(id(g, display))
            .into_iter()
            .map(|s| g.symbols.fns[s].def.display())
            .collect()
    }

    #[test]
    fn typed_receivers_link_exactly_one_target() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "struct Q {}\nimpl Q { fn push_back(&mut self, x: u64) { let _ = x; } }\nstruct W { q: Q }\nimpl W { fn f(&mut self) { self.q.push_back(1); } }\nfn free(q: &mut Q) { q.push_back(2); }\nfn ctor() { let q = Q::new(); q.push_back(3); }\nimpl Q { fn new() -> Q { Q {} } }",
        )]);
        for caller in ["W::f", "free", "ctor"] {
            let succ = succ_names(&g, caller);
            assert!(
                succ.contains(&"Q::push_back".to_string()),
                "{caller}: {succ:?}"
            );
        }
    }

    #[test]
    fn generic_bound_links_every_impl_and_the_default() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "trait Plan { fn go(&self) {} }\nstruct A {}\nstruct B {}\nimpl Plan for A { fn go(&self) {} }\nimpl Plan for B { fn go(&self) {} }\nfn drive<S: Plan>(s: &S) { s.go(); }",
        )]);
        let succ = succ_names(&g, "drive");
        for target in ["Plan::go", "A::go", "B::go"] {
            assert!(succ.contains(&target.to_string()), "{succ:?}");
        }
    }

    #[test]
    fn unknown_receiver_unions_unless_ubiquitous() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "struct Rm {}\nimpl Rm { fn release(&mut self) {}\n    fn push(&mut self) {} }\nfn f() { x.release(); x.push(); }",
        )]);
        let succ = succ_names(&g, "f");
        // `release` is rare: the union fallback links it. `push` is
        // ubiquitous: no speculative edge.
        assert_eq!(succ, vec!["Rm::release"]);
        assert!(UBIQUITOUS.contains(&"push"));
    }

    #[test]
    fn self_paths_resolve_within_the_impl() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "struct W {}\nimpl W { fn new() -> W { W {} }\n    fn make() -> W { Self::new() } }",
        )]);
        assert_eq!(succ_names(&g, "W::make"), vec!["W::new"]);
    }
}
